package workflow

import (
	"context"
	"encoding/json"
	"fmt"

	"emgo/internal/block"
	"emgo/internal/fault"
	"emgo/internal/feature"
	"emgo/internal/ml"
	"emgo/internal/retry"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// This file implements workflow packaging — the Section 12 "Next Steps"
// requirement: "the UMETRICS team wanted us to package the matcher so
// that they could move it into the UMETRICS repository to do matching for
// other data slices ... the EM workflow is rather complex. It has rules
// at multiple places and a machine-learning-based matcher. So we need to
// find out how to represent it effectively."
//
// A Spec is that representation: a declarative, JSON-serializable
// description of an entire workflow — blockers, positive and negative
// rules, the feature set, the fitted imputer, and the trained matcher.
// String transforms (key extraction, normalization) are code, so they
// travel by name through a Transforms registry supplied at build time.

// Transforms maps transform names to implementations; the deploying
// application registers the same names the spec references.
type Transforms map[string]func(string) string

// BlockerSpec describes one blocker.
type BlockerSpec struct {
	// Type is "attr_equiv", "overlap", or "overlap_coeff".
	Type     string `json:"type"`
	LeftCol  string `json:"left_col"`
	RightCol string `json:"right_col"`
	// LeftTransform / RightTransform are Transforms registry names
	// (attr_equiv only; empty = identity).
	LeftTransform  string `json:"left_transform,omitempty"`
	RightTransform string `json:"right_transform,omitempty"`
	// Tokenizer is "word" or "qgram3" (overlap blockers).
	Tokenizer string `json:"tokenizer,omitempty"`
	// Threshold is the integer K for "overlap".
	Threshold int `json:"threshold,omitempty"`
	// Coefficient is the [0,1] threshold for "overlap_coeff".
	Coefficient float64 `json:"coefficient,omitempty"`
	Normalize   bool    `json:"normalize,omitempty"`
}

// RuleSpec describes one declarative rule.
type RuleSpec struct {
	// Type is "equal" or "comparable_mismatch".
	Type     string `json:"type"`
	Name     string `json:"name"`
	LeftCol  string `json:"left_col"`
	RightCol string `json:"right_col"`
	// LeftTransform / RightTransform are Transforms registry names.
	LeftTransform  string `json:"left_transform,omitempty"`
	RightTransform string `json:"right_transform,omitempty"`
	// Verdict is "match" or "non_match" ("equal" rules only).
	Verdict string `json:"verdict,omitempty"`
	// Patterns is the identifier pattern set ("comparable_mismatch").
	Patterns []string `json:"patterns,omitempty"`
}

// Spec is a complete serialized workflow.
type Spec struct {
	Name          string               `json:"name"`
	Blockers      []BlockerSpec        `json:"blockers"`
	SureRules     []RuleSpec           `json:"sure_rules,omitempty"`
	NegativeRules []RuleSpec           `json:"negative_rules,omitempty"`
	Features      []feature.Descriptor `json:"features,omitempty"`
	ImputerMeans  []float64            `json:"imputer_means,omitempty"`
	Matcher       *ml.MatcherSpec      `json:"matcher,omitempty"`
}

// Marshal renders the spec as JSON.
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSpec parses a JSON workflow spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workflow: parse spec: %w", err)
	}
	return &s, nil
}

// transformResolver resolves transform names under the hardened runtime:
// each lookup passes the "workflow.spec.transform" fault-injection site
// and transient failures are retried on the resolver's policy — the shape
// of a deployment whose transform registry is a remote service. An
// unknown name is permanent and never retried.
type transformResolver struct {
	ctx        context.Context
	transforms Transforms
	policy     retry.Policy
}

// lookup resolves a transform name ("" is the identity transform, nil).
func (r transformResolver) lookup(name string) (func(string) string, error) {
	if name == "" {
		return nil, nil
	}
	var fn func(string) string
	err := retry.Do(r.ctx, r.policy, func() error {
		if err := fault.Inject("workflow.spec.transform"); err != nil {
			return err
		}
		var ok bool
		fn, ok = r.transforms[name]
		if !ok {
			return retry.Permanent(fmt.Errorf("workflow: unknown transform %q", name))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fn, nil
}

// lookupTokenizer resolves a tokenizer name.
func lookupTokenizer(name string) (tokenize.Tokenizer, error) {
	switch name {
	case "", "word":
		return tokenize.Word{}, nil
	case "ws":
		return tokenize.Whitespace{}, nil
	case "qgram3":
		return tokenize.QGram{Q: 3}, nil
	case "qgram2":
		return tokenize.QGram{Q: 2}, nil
	default:
		return nil, fmt.Errorf("workflow: unknown tokenizer %q", name)
	}
}

// buildBlocker constructs the blocker a spec describes.
func buildBlocker(bs BlockerSpec, resolver transformResolver) (block.Blocker, error) {
	switch bs.Type {
	case "attr_equiv":
		lt, err := resolver.lookup(bs.LeftTransform)
		if err != nil {
			return nil, err
		}
		rt, err := resolver.lookup(bs.RightTransform)
		if err != nil {
			return nil, err
		}
		return block.AttrEquiv{
			LeftCol: bs.LeftCol, RightCol: bs.RightCol,
			LeftTransform: lt, RightTransform: rt,
		}, nil
	case "overlap":
		tok, err := lookupTokenizer(bs.Tokenizer)
		if err != nil {
			return nil, err
		}
		return block.Overlap{
			LeftCol: bs.LeftCol, RightCol: bs.RightCol,
			Tokenizer: tok, Threshold: bs.Threshold, Normalize: bs.Normalize,
		}, nil
	case "overlap_coeff":
		tok, err := lookupTokenizer(bs.Tokenizer)
		if err != nil {
			return nil, err
		}
		return block.OverlapCoefficient{
			LeftCol: bs.LeftCol, RightCol: bs.RightCol,
			Tokenizer: tok, Threshold: bs.Coefficient, Normalize: bs.Normalize,
		}, nil
	default:
		return nil, fmt.Errorf("workflow: unknown blocker type %q", bs.Type)
	}
}

// buildRule constructs the rule a spec describes, bound to the tables.
func buildRule(rs RuleSpec, left, right *table.Table, resolver transformResolver) (rules.Rule, error) {
	lt, err := resolver.lookup(rs.LeftTransform)
	if err != nil {
		return nil, err
	}
	rt, err := resolver.lookup(rs.RightTransform)
	if err != nil {
		return nil, err
	}
	switch rs.Type {
	case "equal":
		var verdict rules.Verdict
		switch rs.Verdict {
		case "match":
			verdict = rules.Match
		case "non_match":
			verdict = rules.NonMatch
		default:
			return nil, fmt.Errorf("workflow: rule %q has unknown verdict %q", rs.Name, rs.Verdict)
		}
		return rules.NewEqual(rs.Name, left, rs.LeftCol, lt, right, rs.RightCol, rt, verdict)
	case "comparable_mismatch":
		patterns := make(rules.Set, len(rs.Patterns))
		for i, p := range rs.Patterns {
			patterns[i] = rules.Pattern(p)
		}
		return rules.NewComparableMismatch(rs.Name, left, rs.LeftCol, lt, right, rs.RightCol, rt, patterns)
	default:
		return nil, fmt.Errorf("workflow: unknown rule type %q", rs.Type)
	}
}

// Build instantiates the workflow a spec describes, binding its rules to
// the given table pair. transforms must supply every transform name the
// spec references.
func (s *Spec) Build(left, right *table.Table, transforms Transforms) (*Workflow, error) {
	return s.BuildCtx(context.Background(), left, right, transforms, retry.Policy{})
}

// BuildCtx is Build under the hardened runtime: transform registry
// lookups honour ctx and are retried on the given policy when they fail
// transiently (unknown names stay permanent errors).
func (s *Spec) BuildCtx(ctx context.Context, left, right *table.Table, transforms Transforms, policy retry.Policy) (*Workflow, error) {
	resolver := transformResolver{ctx: ctx, transforms: transforms, policy: policy}
	w := &Workflow{
		Name:          s.Name,
		SureRules:     rules.NewEngine(),
		NegativeRules: rules.NewEngine(),
	}
	for _, bs := range s.Blockers {
		b, err := buildBlocker(bs, resolver)
		if err != nil {
			return nil, err
		}
		w.Blockers = append(w.Blockers, b)
	}
	for _, rs := range s.SureRules {
		r, err := buildRule(rs, left, right, resolver)
		if err != nil {
			return nil, err
		}
		w.SureRules.Add(r)
	}
	for _, rs := range s.NegativeRules {
		r, err := buildRule(rs, left, right, resolver)
		if err != nil {
			return nil, err
		}
		w.NegativeRules.Add(r)
	}
	if s.Matcher != nil {
		if len(s.Features) == 0 {
			return nil, fmt.Errorf("workflow: spec has a matcher but no features")
		}
		if len(s.ImputerMeans) != len(s.Features) {
			return nil, fmt.Errorf("workflow: spec has %d imputer means for %d features",
				len(s.ImputerMeans), len(s.Features))
		}
		fs, err := feature.FromDescriptors(s.Features)
		if err != nil {
			return nil, err
		}
		m, err := ml.ImportMatcher(s.Matcher)
		if err != nil {
			return nil, err
		}
		w.Features = fs
		w.Imputer = feature.ImputerFromMeans(s.ImputerMeans)
		w.Matcher = m
	}
	return w, nil
}
