package workflow

import (
	"context"
	"fmt"
	"math/rand"

	"emgo/internal/block"
	"emgo/internal/estimate"
	"emgo/internal/fault"
	"emgo/internal/label"
	"emgo/internal/retry"
)

// Monitor implements production accuracy monitoring — footnote 11 of the
// paper: "this is typically done by taking a random sample of the
// predicted matches at regular intervals, manually labeling it, then
// using the labeled sample to estimate the accuracy". Each Check draws a
// sample of the latest predicted matches, asks the labeler for labels,
// estimates precision, and raises an alarm when the interval's upper
// bound falls below the threshold — the signal to "move back to the
// development stage and update the EM workflow".
type Monitor struct {
	// SampleSize is how many predicted matches each check labels
	// (default 50).
	SampleSize int
	// MinPrecision is the alarm threshold: a check alarms when even the
	// optimistic end of the precision interval is below it.
	MinPrecision float64
	// Rng drives sampling; required.
	Rng *rand.Rand

	history []CheckResult
}

// CheckResult is one monitoring check.
type CheckResult struct {
	// Batch labels which data slice was checked (caller-supplied).
	Batch string
	// Labeled is how many matches were labeled (Unsure excluded from the
	// estimate as usual).
	Labeled int
	// Precision is the estimated precision of the predicted matches.
	Precision estimate.Interval
	// Alarm is set when Precision.Hi < MinPrecision.
	Alarm bool
}

// Check samples the predicted matches of one production batch, labels the
// sample with labelFn (the human in the loop), and records the estimated
// precision. Note that sampling predicted matches estimates precision
// only — recall needs a sample of the full candidate set, which
// production does not label.
func (m *Monitor) Check(batch string, predicted *block.CandidateSet, labelFn func(block.Pair) label.Label) (CheckResult, error) {
	if labelFn == nil {
		return CheckResult{}, fmt.Errorf("workflow: monitor needs a labeler")
	}
	return m.CheckErr(batch, predicted, func(p block.Pair) (label.Label, error) {
		return labelFn(p), nil
	})
}

// CheckErr is Check with a labeler that can fail — the shape of a real
// human-in-the-loop or networked labeling backend. A labeler error aborts
// the check without recording anything, leaving the caller free to retry
// the whole check (see CheckCtx). Each invocation passes the
// "workflow.monitor" fault-injection site.
func (m *Monitor) CheckErr(batch string, predicted *block.CandidateSet, labelFn func(block.Pair) (label.Label, error)) (CheckResult, error) {
	if m.Rng == nil {
		return CheckResult{}, fmt.Errorf("workflow: monitor needs an Rng")
	}
	if labelFn == nil {
		return CheckResult{}, fmt.Errorf("workflow: monitor needs a labeler")
	}
	if predicted == nil {
		return CheckResult{}, fmt.Errorf("workflow: batch %q has no candidate set to monitor", batch)
	}
	if err := fault.Inject("workflow.monitor"); err != nil {
		return CheckResult{}, err
	}
	n := m.SampleSize
	if n <= 0 {
		n = 50
	}
	if n > predicted.Len() {
		n = predicted.Len()
	}
	if n == 0 {
		return CheckResult{}, fmt.Errorf("workflow: batch %q has no predicted matches to monitor", batch)
	}
	sample, err := predicted.Sample(n, m.Rng)
	if err != nil {
		return CheckResult{}, err
	}
	yes, no := 0, 0
	for _, p := range sample {
		l, err := labelFn(p)
		if err != nil {
			return CheckResult{}, fmt.Errorf("workflow: batch %q labeler: %w", batch, err)
		}
		switch l {
		case label.Yes:
			yes++
		case label.No:
			no++
		}
	}
	pred := make([]bool, yes+no)
	labels := make([]label.Label, yes+no)
	for i := range pred {
		pred[i] = true
		if i < yes {
			labels[i] = label.Yes
		} else {
			labels[i] = label.No
		}
	}
	est, err := estimate.FromLabels(pred, labels)
	if err != nil {
		return CheckResult{}, err
	}
	res := CheckResult{
		Batch:     batch,
		Labeled:   yes + no,
		Precision: est.Precision,
		Alarm:     est.Precision.Hi < m.MinPrecision,
	}
	m.history = append(m.history, res)
	return res, nil
}

// CheckCtx runs CheckErr under a retry policy: transient labeler faults
// are retried on the policy's deterministic backoff schedule until ctx is
// done or the schedule is exhausted. It reports how many attempts ran so
// provenance logs can record retried checks.
func (m *Monitor) CheckCtx(ctx context.Context, policy retry.Policy, batch string, predicted *block.CandidateSet, labelFn func(block.Pair) (label.Label, error)) (CheckResult, int, error) {
	var res CheckResult
	attempts, err := retry.DoCount(ctx, policy, func() error {
		var cerr error
		res, cerr = m.CheckErr(batch, predicted, labelFn)
		return cerr
	})
	if err != nil {
		return CheckResult{}, attempts, err
	}
	return res, attempts, nil
}

// History returns all checks in order.
func (m *Monitor) History() []CheckResult {
	out := make([]CheckResult, len(m.history))
	copy(out, m.history)
	return out
}

// Alarms returns the checks that alarmed.
func (m *Monitor) Alarms() []CheckResult {
	var out []CheckResult
	for _, r := range m.history {
		if r.Alarm {
			out = append(out, r)
		}
	}
	return out
}
