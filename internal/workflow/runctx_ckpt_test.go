package workflow

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"emgo/internal/block"
	"emgo/internal/ckpt"
	"emgo/internal/fault"
	"emgo/internal/retry"
	"emgo/internal/table"
)

func openTestStore(t *testing.T, dir string) *ckpt.Store {
	t.Helper()
	store, err := ckpt.Open(dir, ckpt.Fingerprint("runctx-test"))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func outcomeOf(t *testing.T, res *Result, step string) string {
	t.Helper()
	for _, e := range res.Log.Entries() {
		if e.Step == step {
			return e.Outcome
		}
	}
	t.Fatalf("no %q entry in log:\n%s", step, res.Log)
	return ""
}

func sameFinal(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Final.Len() != b.Final.Len() || a.Vetoed != b.Vetoed {
		t.Fatalf("runs diverge: final %d vs %d, vetoed %d vs %d",
			a.Final.Len(), b.Final.Len(), a.Vetoed, b.Vetoed)
	}
	for _, p := range a.Final.Pairs() {
		if !b.Final.Contains(p) {
			t.Fatalf("final missing %v", p)
		}
	}
}

func TestRunCtxCheckpointResume(t *testing.T) {
	w, tp := hardenedFixture(t)
	dir := t.TempDir()

	fresh, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Checkpoints: openTestStore(t, dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []string{"blocked", "learned"} {
		if out := outcomeOf(t, fresh, step); out != "" && out != OutcomeOK {
			t.Fatalf("fresh run %s outcome = %q", step, out)
		}
	}

	// Both stage artifacts must exist on disk after the fresh run.
	store := openTestStore(t, dir)
	for _, name := range []string{ckptBlocked, ckptLearned} {
		if !store.Has(name) {
			t.Fatalf("artifact %s not persisted (have %v)", name, store.Names())
		}
	}

	resumed, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []string{"blocked", "learned"} {
		if out := outcomeOf(t, resumed, step); out != OutcomeResumed {
			t.Fatalf("resumed run %s outcome = %q, want %q", step, out, OutcomeResumed)
		}
	}
	sameFinal(t, fresh, resumed)

	// Resume decisions show up in the machine-readable report too.
	var sawResumed bool
	for _, e := range resumed.Report.Provenance {
		if e.Outcome == OutcomeResumed {
			sawResumed = true
		}
	}
	if !sawResumed {
		t.Fatal("no provenance entry with outcome=resumed in the run report")
	}
}

func TestRunCtxCheckpointCorruptionRecomputes(t *testing.T) {
	w, tp := hardenedFixture(t)
	dir := t.TempDir()

	fresh, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Checkpoints: openTestStore(t, dir),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Flip bytes in the blocked artifact on disk: the checksum no longer
	// matches the manifest, so resume must quarantine and recompute.
	path := filepath.Join(dir, ckptBlocked)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	store := openTestStore(t, dir)
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{Checkpoints: store})
	if err != nil {
		t.Fatalf("corrupt checkpoint must fall back to recomputing, not fail: %v", err)
	}
	if out := outcomeOf(t, res, "blocked"); out == OutcomeResumed {
		t.Fatal("corrupt blocked checkpoint was trusted")
	}
	// The learned artifact was untouched and still restores.
	if out := outcomeOf(t, res, "learned"); out != OutcomeResumed {
		t.Fatalf("learned outcome = %q, want resumed", out)
	}
	sameFinal(t, fresh, res)

	// The corrupt artifact is preserved as evidence, not deleted.
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("corrupt artifact not quarantined: %v (%d entries)", err, len(entries))
	}
}

func TestRunCtxCheckpointValidationRejectsForeignTables(t *testing.T) {
	w, tp := hardenedFixture(t)
	dir := t.TempDir()
	if _, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Checkpoints: openTestStore(t, dir),
	}); err != nil {
		t.Fatal(err)
	}

	// Same store, but the right table lost its last row: shapes no longer
	// match, so the checksum-valid artifacts must fail semantic
	// validation and both stages recompute.
	keep, want := 0, tp.r.Len()-1
	shorter := tp.r.Select(tp.r.Name(), func(table.Row) bool {
		keep++
		return keep <= want
	})
	res, err := w.RunCtx(context.Background(), tp.l, shorter, RunOptions{
		Checkpoints: openTestStore(t, dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []string{"blocked", "learned"} {
		if out := outcomeOf(t, res, step); out == OutcomeResumed {
			t.Fatalf("%s checkpoint for different tables was trusted", step)
		}
	}
}

func TestRunCtxCheckpointRestoresQuarantineList(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	dir := t.TempDir()

	// First run quarantines one pair under the error budget.
	fault.Enable("ml.predict", fault.Plan{Mode: fault.ModePanic, FailFirst: 1})
	fresh, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Checkpoints: openTestStore(t, dir),
		ErrorBudget: 2,
		Retry:       retry.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Quarantined) == 0 {
		t.Fatal("fixture did not quarantine any pair; test needs a poison pair")
	}
	fault.Reset()

	// The resumed run must carry the quarantine list forward — a resume
	// must not silently pretend the poison pairs were matched or clean.
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Checkpoints: openTestStore(t, dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := outcomeOf(t, res, "learned"); out != OutcomeResumed {
		t.Fatalf("learned outcome = %q, want resumed", out)
	}
	if len(res.Quarantined) != len(fresh.Quarantined) {
		t.Fatalf("quarantine list not restored: %d vs %d", len(res.Quarantined), len(fresh.Quarantined))
	}
	for i, p := range fresh.Quarantined {
		if res.Quarantined[i] != p {
			t.Fatalf("quarantined[%d] = %v, want %v", i, res.Quarantined[i], p)
		}
	}
	sameFinal(t, fresh, res)
}

func TestRunCtxNilCheckpointsUnchanged(t *testing.T) {
	w, tp := hardenedFixture(t)
	plain, err := w.Run(tp.l, tp.r)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hard.Final.Len() != plain.Final.Len() {
		t.Fatalf("no-checkpoint run diverges: %d vs %d", hard.Final.Len(), plain.Final.Len())
	}
	var _ *block.CandidateSet = hard.Final
}
