package workflow

import (
	"strings"
	"testing"

	"emgo/internal/block"
	"emgo/internal/feature"
	"emgo/internal/ml"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// fixture builds small left/right tables with one sure match (equal
// number), one similar-title pair, and one similar-title false positive
// that a negative rule should veto.
func fixture(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	schema := func() *table.Schema {
		return table.MustSchema(
			table.Field{Name: "ID", Kind: table.String},
			table.Field{Name: "Num", Kind: table.String},
			table.Field{Name: "Title", Kind: table.String},
		)
	}
	l := table.New("L", schema())
	l.MustAppend(table.Row{table.S("l0"), table.S("2008-11111-11111"), table.S("corn fungicide guidelines north central")})
	l.MustAppend(table.Row{table.S("l1"), table.Null(table.String), table.S("swamp dodder ecology management carrot")})
	l.MustAppend(table.Row{table.S("l2"), table.S("WIS00001"), table.S("dairy cattle genetics study wisconsin")})

	r := table.New("R", schema())
	r.MustAppend(table.Row{table.S("r0"), table.S("2008-11111-11111"), table.S("corn fungicide guidelines north central")})
	r.MustAppend(table.Row{table.S("r1"), table.Null(table.String), table.S("swamp dodder ecology management carrot")})
	r.MustAppend(table.Row{table.S("r2"), table.S("WIS99999"), table.S("dairy cattle genetics study wisconsin")})
	return l, r
}

// trained builds a feature set, imputer, and decision tree fitted to
// prefer high title similarity.
func trained(t *testing.T, l, r *table.Table) (*feature.Set, *feature.Imputer, ml.Matcher) {
	t.Helper()
	corr := map[string]string{"Title": "Title"}
	fs, err := feature.Generate(l, r, corr, []string{"Title"})
	if err != nil {
		t.Fatal(err)
	}
	// Train on synthetic labeled pairs: same titles match.
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 0, B: 1}, {A: 1, B: 0}, {A: 2, B: 0}, {A: 2, B: 2}}
	y := []int{1, 1, 0, 0, 0, 1}
	x, err := fs.Vectorize(l, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	x, err = im.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	m := &ml.DecisionTree{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return fs, im, m
}

func TestWorkflowFullShape(t *testing.T) {
	l, r := fixture(t)
	m1, err := rules.NewEqual("M1", l, "Num", nil, r, "Num", nil, rules.Match)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := rules.NewComparableMismatch("neg", l, "Num", nil, r, "Num", nil, rules.Set{"XXX#####"})
	if err != nil {
		t.Fatal(err)
	}
	fs, im, matcher := trained(t, l, r)

	w := &Workflow{
		Name:      "test",
		SureRules: rules.NewEngine(m1),
		Blockers: []block.Blocker{
			block.Overlap{LeftCol: "Title", RightCol: "Title", Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true},
		},
		Features: fs, Imputer: im, Matcher: matcher,
		NegativeRules: rules.NewEngine(neg),
	}
	res, err := w.Run(l, r)
	if err != nil {
		t.Fatal(err)
	}
	// Sure: the equal-number pair (0,0).
	if res.Sure.Len() != 1 || !res.Sure.Contains(block.Pair{A: 0, B: 0}) {
		t.Fatalf("sure: %v", res.Sure.Pairs())
	}
	// Candidates exclude the sure match.
	if res.Candidates.Contains(block.Pair{A: 0, B: 0}) {
		t.Fatal("candidates must exclude sure matches")
	}
	// Learner should find the identical-title pairs (1,1) and (2,2).
	if !res.Learned.Contains(block.Pair{A: 1, B: 1}) {
		t.Fatalf("learner missed (1,1): %v", res.Learned.Pairs())
	}
	// Negative rule: (2,2) has comparable WIS numbers that differ → veto.
	if res.Vetoed != 1 {
		t.Fatalf("vetoed = %d, learned = %v", res.Vetoed, res.Learned.Pairs())
	}
	if res.Final.Contains(block.Pair{A: 2, B: 2}) {
		t.Fatal("vetoed pair must not be in final")
	}
	// Final = sure + surviving learned.
	if !res.Final.Contains(block.Pair{A: 0, B: 0}) || !res.Final.Contains(block.Pair{A: 1, B: 1}) {
		t.Fatalf("final: %v", res.Final.Pairs())
	}
	// Log must record all six steps.
	logStr := res.Log.String()
	for _, step := range []string{"sure_matches", "blocked", "candidates", "learned", "vetoed", "final"} {
		if !strings.Contains(logStr, step) {
			t.Errorf("log missing step %s:\n%s", step, logStr)
		}
	}
	if len(res.Log.Entries()) != 6 {
		t.Fatalf("log entries = %d", len(res.Log.Entries()))
	}
}

func TestWorkflowRulesOnly(t *testing.T) {
	l, r := fixture(t)
	m1, _ := rules.NewEqual("M1", l, "Num", nil, r, "Num", nil, rules.Match)
	w := &Workflow{Name: "iris-like", SureRules: rules.NewEngine(m1)}
	res, err := w.Run(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() != 1 || res.Learned.Len() != 0 {
		t.Fatalf("rules-only: final=%d learned=%d", res.Final.Len(), res.Learned.Len())
	}
}

func TestWorkflowMatcherWithoutFeaturesErrors(t *testing.T) {
	l, r := fixture(t)
	_, _, matcher := trained(t, l, r)
	w := &Workflow{
		Name:    "bad",
		Matcher: matcher,
		Blockers: []block.Blocker{
			block.Overlap{LeftCol: "Title", RightCol: "Title", Tokenizer: tokenize.Word{}, Threshold: 1, Normalize: true},
		},
	}
	if _, err := w.Run(l, r); err == nil {
		t.Fatal("matcher without features/imputer should error")
	}
}

func TestWorkflowBlockerErrorPropagates(t *testing.T) {
	l, r := fixture(t)
	w := &Workflow{
		Name:     "bad-blocker",
		Blockers: []block.Blocker{block.Overlap{LeftCol: "Nope", RightCol: "Title", Tokenizer: tokenize.Word{}, Threshold: 1}},
	}
	if _, err := w.Run(l, r); err == nil {
		t.Fatal("blocker error should propagate")
	}
}

func TestMatchIDs(t *testing.T) {
	l, r := fixture(t)
	m1, _ := rules.NewEqual("M1", l, "Num", nil, r, "Num", nil, rules.Match)
	w := &Workflow{Name: "ids", SureRules: rules.NewEngine(m1)}
	res, err := w.Run(l, r)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := res.MatchIDs("ID", "ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != (IDPair{Left: "l0", Right: "r0"}) {
		t.Fatalf("ids: %v", ids)
	}
	if _, err := res.MatchIDs("Nope", "ID"); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := res.MatchIDs("ID", "Nope"); err == nil {
		t.Fatal("unknown right column should error")
	}
}

func TestMergeIDs(t *testing.T) {
	a := []IDPair{{Left: "1", Right: "x"}, {Left: "2", Right: "y"}}
	b := []IDPair{{Left: "2", Right: "y"}, {Left: "3", Right: "z"}}
	got := MergeIDs(a, b)
	if len(got) != 3 {
		t.Fatalf("merged: %v", got)
	}
	if got[0].Left != "1" || got[2].Left != "3" {
		t.Fatal("merge order wrong")
	}
	if len(MergeIDs()) != 0 {
		t.Fatal("empty merge")
	}
}
