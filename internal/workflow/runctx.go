package workflow

import (
	"context"
	"fmt"
	"time"

	"emgo/internal/block"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/parallel"
	"emgo/internal/retry"
	"emgo/internal/table"
)

// This file is the hardened execution runtime for workflows — the
// operational layer the paper's Section 12 production move demands:
// bounded stage execution (per-stage deadlines on top of the caller's
// context), failure isolation (worker panics surface as indexed errors;
// a bounded error budget quarantines poison pairs instead of aborting
// the batch), deterministic retries for the human/labeler boundary, and
// a provenance log that records how each stage ended (ok / retried /
// degraded / aborted) so an operator can reconstruct a bad run.

// CheckStage asks RunCtx to finish with a production monitoring check
// over the final matches (footnote 11's sample-label-estimate loop).
type CheckStage struct {
	// Monitor performs the check; required.
	Monitor *Monitor
	// Batch names the data slice in the monitor's history.
	Batch string
	// Label is the human (or service) in the loop; transient failures
	// are retried on the run's retry policy.
	Label func(block.Pair) (label.Label, error)
}

// RunOptions configures the hardened runtime. The zero value behaves
// like Run with cancellation: no per-stage deadlines, no retries, an
// empty error budget.
type RunOptions struct {
	// StageTimeout bounds every cancellable stage (blocking, matching,
	// monitoring); 0 means no per-stage deadline. The caller's context
	// still bounds the whole run.
	StageTimeout time.Duration
	// StageTimeouts overrides StageTimeout for individual stages by log
	// step name ("blocked", "learned", "monitor").
	StageTimeouts map[string]time.Duration
	// Retry is the deterministic backoff policy for retryable stages
	// (the monitoring check's labeler). The zero policy tries once.
	Retry retry.Policy
	// ErrorBudget is how many candidate pairs the matching stage may
	// quarantine (vectorization or prediction failed on them) before the
	// run aborts. 0 aborts on the first failing pair.
	ErrorBudget int
	// Check, when set, runs a production monitoring check as the final
	// stage and stores its result on the Result.
	Check *CheckStage
}

// stageCtx derives the context for one named stage.
func (o RunOptions) stageCtx(ctx context.Context, stage string) (context.Context, context.CancelFunc) {
	d := o.StageTimeout
	if override, ok := o.StageTimeouts[stage]; ok {
		d = override
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// RunCtx executes the workflow on one (left, right) table pair under the
// hardened runtime. Unlike Run, the returned Result is non-nil even on
// failure: it carries the provenance log up to and including the aborted
// stage, which is the record an operator needs. Pairs quarantined under
// the error budget are listed in Result.Quarantined and excluded from
// Learned (and therefore Final).
func (w *Workflow) RunCtx(ctx context.Context, left, right *table.Table, opts RunOptions) (*Result, error) {
	log := &Log{}
	res := &Result{Log: log}
	abort := func(stage string, err error) (*Result, error) {
		log.AddOutcome(stage, err.Error(), 0, OutcomeAborted)
		return res, fmt.Errorf("workflow %s: %s: %w", w.Name, stage, err)
	}

	// Step 1: sure matches straight from the tables.
	if err := ctx.Err(); err != nil {
		return abort("sure_matches", err)
	}
	if w.SureRules != nil && w.SureRules.Len() > 0 {
		res.Sure = w.SureRules.SureMatches(left, right)
	} else {
		res.Sure = block.NewCandidateSet(left, right)
	}
	log.Add("sure_matches", "positive rules over input tables", res.Sure.Len())

	// Step 2: blocking, under its stage deadline.
	bctx, cancel := opts.stageCtx(ctx, "blocked")
	blocked, err := block.UnionBlockCtx(bctx, left, right, w.Blockers...)
	cancel()
	if err != nil {
		return abort("blocked", err)
	}
	log.Add("blocked", "union of blockers", blocked.Len())

	// Step 3: remove sure matches from the candidate set.
	res.Candidates, err = blocked.Minus(res.Sure)
	if err != nil {
		return abort("candidates", err)
	}
	log.Add("candidates", "blocked minus sure matches", res.Candidates.Len())

	// Step 4: learned predictions, with the error budget. A pair whose
	// vectorization or prediction fails (panic or error) is quarantined
	// and the stage re-run without it, until the budget is spent.
	res.Learned = block.NewCandidateSet(left, right)
	if w.Matcher != nil && res.Candidates.Len() > 0 {
		if w.Features == nil || w.Imputer == nil {
			return abort("learned", fmt.Errorf("matcher set but features/imputer missing"))
		}
		pairs := res.Candidates.Pairs()
		budget := opts.ErrorBudget
		var preds []int
		for {
			preds, err = w.predictPairs(ctx, opts, left, right, pairs)
			if err == nil {
				break
			}
			idx, indexed := parallel.FailingIndex(err)
			if !indexed || budget <= 0 || ctx.Err() != nil {
				return abort("learned", err)
			}
			budget--
			bad := pairs[idx]
			res.Quarantined = append(res.Quarantined, bad)
			log.AddOutcome("learned",
				fmt.Sprintf("quarantined pair (%d,%d) after failure: %v", bad.A, bad.B, unwrapIndexed(err)),
				len(pairs)-1, OutcomeDegraded)
			trimmed := make([]block.Pair, 0, len(pairs)-1)
			trimmed = append(trimmed, pairs[:idx]...)
			trimmed = append(trimmed, pairs[idx+1:]...)
			pairs = trimmed
		}
		for i, p := range pairs {
			if preds[i] == 1 {
				res.Learned.Add(p)
			}
		}
	}
	if len(res.Quarantined) > 0 {
		log.AddOutcome("learned",
			fmt.Sprintf("matcher predictions on candidates (%d pairs quarantined)", len(res.Quarantined)),
			res.Learned.Len(), OutcomeDegraded)
	} else {
		log.Add("learned", "matcher predictions on candidates", res.Learned.Len())
	}

	// Step 5: negative rules veto learned matches.
	kept := res.Learned
	if w.NegativeRules != nil && w.NegativeRules.Len() > 0 {
		kept, res.Vetoed = w.NegativeRules.FilterMatches(res.Learned)
	}
	log.Add("vetoed", "negative rules flipped", res.Vetoed)

	// Step 6: final = sure ∪ kept.
	res.Final, err = res.Sure.Union(kept)
	if err != nil {
		return abort("final", err)
	}
	log.Add("final", "sure matches plus surviving predictions", res.Final.Len())

	// Step 7 (optional): production monitoring check, retried on the
	// run's policy when the labeler fails transiently.
	if opts.Check != nil {
		if opts.Check.Monitor == nil {
			return abort("monitor", fmt.Errorf("check stage needs a monitor"))
		}
		mctx, cancel := opts.stageCtx(ctx, "monitor")
		cr, attempts, err := opts.Check.Monitor.CheckCtx(mctx, opts.Retry, opts.Check.Batch, res.Final, opts.Check.Label)
		cancel()
		if err != nil {
			return abort("monitor", err)
		}
		res.Check = &cr
		detail := fmt.Sprintf("precision [%.2f,%.2f] alarm=%v", cr.Precision.Lo, cr.Precision.Hi, cr.Alarm)
		if attempts > 1 {
			log.AddOutcome("monitor", fmt.Sprintf("%s after %d attempts", detail, attempts), cr.Labeled, OutcomeRetried)
		} else {
			log.Add("monitor", detail, cr.Labeled)
		}
	}
	return res, nil
}

// predictPairs runs the vectorize → impute → predict chain for one set
// of candidate pairs under the "learned" stage deadline.
func (w *Workflow) predictPairs(ctx context.Context, opts RunOptions, left, right *table.Table, pairs []block.Pair) ([]int, error) {
	sctx, cancel := opts.stageCtx(ctx, "learned")
	defer cancel()
	x, err := w.Features.VectorizeCtx(sctx, left, right, pairs)
	if err != nil {
		return nil, err
	}
	x, err = w.Imputer.Transform(x)
	if err != nil {
		return nil, err
	}
	return ml.PredictAllCtx(sctx, w.Matcher, x)
}

// unwrapIndexed strips the parallel index wrapper for log detail text,
// keeping the underlying cause.
func unwrapIndexed(err error) error {
	var target error = err
	for {
		switch e := target.(type) {
		case *parallel.IndexError:
			return e.Err
		case *parallel.PanicError:
			return fmt.Errorf("panic: %v", e.Value)
		}
		u, ok := target.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		target = u.Unwrap()
	}
}
