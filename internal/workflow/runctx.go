package workflow

import (
	"context"
	"fmt"
	"time"

	"emgo/internal/block"
	"emgo/internal/ckpt"
	"emgo/internal/drift"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/obs"
	"emgo/internal/parallel"
	"emgo/internal/retry"
	"emgo/internal/table"
)

// This file is the hardened execution runtime for workflows — the
// operational layer the paper's Section 12 production move demands:
// bounded stage execution (per-stage deadlines on top of the caller's
// context), failure isolation (worker panics surface as indexed errors;
// a bounded error budget quarantines poison pairs instead of aborting
// the batch), deterministic retries for the human/labeler boundary, and
// a provenance log that records how each stage ended (ok / retried /
// degraded / aborted) so an operator can reconstruct a bad run.
//
// RunCtx is also the observability anchor: every stage runs under an
// obs span recording wall time, item count, and outcome, and every run
// finishes with a machine-readable obs.Report on the Result (spans +
// metrics snapshot + provenance log + quarantine decisions) — the
// document -report flags write and perf work diffs against.

// CheckStage asks RunCtx to finish with a production monitoring check
// over the final matches (footnote 11's sample-label-estimate loop).
type CheckStage struct {
	// Monitor performs the check; required.
	Monitor *Monitor
	// Batch names the data slice in the monitor's history.
	Batch string
	// Label is the human (or service) in the loop; transient failures
	// are retried on the run's retry policy.
	Label func(block.Pair) (label.Label, error)
}

// DriftStage asks RunCtx to run the quality-observability layer
// (internal/drift): a collector rides along the run profiling feature
// vectors, prediction scores, input-table attributes, and blocking
// coverage, and a final "quality" stage assembles the profile. With a
// Baseline the stage is a drift check — the live profile is scored
// against the baseline and a breach surfaces as the degraded_quality
// stage outcome; without one the stage is a baseline capture, optionally
// persisted to BaselinePath with the crash-safe write protocol.
type DriftStage struct {
	// Baseline, when non-nil, switches the stage from capture to check:
	// the live profile is evaluated against it under Thresholds.
	Baseline *drift.Profile
	// BaselinePath, in capture mode, is where the snapshot is persisted
	// (temp file + fsync + atomic rename); empty keeps it in memory only
	// (Result.DriftProfile).
	BaselinePath string
	// Thresholds are the warn/fail cut points for a check; the zero value
	// selects drift.DefaultThresholds.
	Thresholds drift.Thresholds
	// SampleCap is the reservoir capacity per profiled distribution
	// (<= 0 selects drift.DefaultSampleCap); Seed makes subsampling
	// reproducible.
	SampleCap int
	Seed      int64
	// EstimatedPrecision optionally embeds a capture-time labeled
	// accuracy estimate ([lo, point, hi], Section 11) in the baseline so
	// later checks can report a drift-discounted version of it.
	EstimatedPrecision []float64
}

// RunOptions configures the hardened runtime. The zero value behaves
// like Run with cancellation: no per-stage deadlines, no retries, an
// empty error budget.
type RunOptions struct {
	// StageTimeout bounds every cancellable stage (blocking, matching,
	// monitoring); 0 means no per-stage deadline. The caller's context
	// still bounds the whole run.
	StageTimeout time.Duration
	// StageTimeouts overrides StageTimeout for individual stages by log
	// step name ("blocked", "learned", "monitor").
	StageTimeouts map[string]time.Duration
	// Retry is the deterministic backoff policy for retryable stages
	// (the monitoring check's labeler). The zero policy tries once.
	Retry retry.Policy
	// ErrorBudget is how many candidate pairs the matching stage may
	// quarantine (vectorization or prediction failed on them) before the
	// run aborts. 0 aborts on the first failing pair.
	ErrorBudget int
	// Check, when set, runs a production monitoring check as the final
	// stage and stores its result on the Result.
	Check *CheckStage
	// Drift, when non-nil, arms quality observability: the run is
	// profiled and finishes with a "quality" stage that captures a
	// baseline snapshot or checks the live profile against one (see
	// DriftStage).
	Drift *DriftStage
	// Checkpoints, when non-nil, makes the run durable: the blocked
	// candidate set and the learned predictions are written to the
	// store after their stages complete (temp file + fsync + atomic
	// rename, checksummed in the store's manifest), and a later run
	// over the same inputs restores them instead of recomputing —
	// recorded in provenance and spans as OutcomeResumed. Corrupt or
	// stale artifacts are quarantined and the stage recomputed; the
	// store never makes a run fail.
	Checkpoints *ckpt.Store
}

// stageCtx derives the context for one named stage.
func (o RunOptions) stageCtx(ctx context.Context, stage string) (context.Context, context.CancelFunc) {
	d := o.StageTimeout
	if override, ok := o.StageTimeouts[stage]; ok {
		d = override
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// stageMSBuckets are the upper bounds (milliseconds) of the per-stage
// duration histogram "workflow.stage_ms".
var stageMSBuckets = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}

// stageObs tracks one RunCtx stage's span and duration sample.
type stageObs struct {
	ctx   context.Context
	span  *obs.Span
	hist  *obs.Histogram
	start time.Time
}

// startStage opens the "stage.<name>" span under ctx.
func startStage(ctx context.Context, name string, hist *obs.Histogram) stageObs {
	sctx, sp := obs.StartSpan(ctx, "stage."+name)
	return stageObs{ctx: sctx, span: sp, hist: hist, start: time.Now()}
}

// finish closes the stage span with its outcome and item count and
// feeds the duration histogram.
func (s stageObs) finish(outcome string, items int) {
	s.span.SetItems(items)
	s.span.SetOutcome(outcome)
	s.span.End()
	s.hist.Observe(float64(time.Since(s.start)) / float64(time.Millisecond))
}

// RunCtx executes the workflow on one (left, right) table pair under the
// hardened runtime. Unlike Run, the returned Result is non-nil even on
// failure: it carries the provenance log up to and including the aborted
// stage, which is the record an operator needs, plus the run report
// (Result.Report). Pairs quarantined under the error budget are listed
// in Result.Quarantined and excluded from Learned (and therefore Final).
//
// When the caller's context already carries an obs trace (a CLI opened
// one for the whole process), stage spans nest under it; otherwise
// RunCtx roots its own trace so the report always has a span tree.
func (w *Workflow) RunCtx(ctx context.Context, left, right *table.Table, opts RunOptions) (res *Result, err error) {
	log := &Log{}
	res = &Result{Log: log}
	started := time.Now()

	root := obs.SpanFromContext(ctx)
	ownRoot := root == nil
	if ownRoot {
		ctx, root = obs.NewTrace(ctx, "workflow."+w.Name)
	}
	// Arm the quality-profile collector before any stage runs, so the
	// vectorize and predict hot loops (which fetch it from the context
	// once per stage) see it.
	var prof *drift.Collector
	if opts.Drift != nil {
		prof = drift.NewCollector(opts.Drift.SampleCap, opts.Drift.Seed)
		if w.Features != nil {
			prof.SetFeatureNames(w.Features.Names())
		}
		ctx = drift.WithCollector(ctx, prof)
	}
	stageMS := obs.H("workflow.stage_ms", stageMSBuckets)
	defer func() {
		if ownRoot {
			outcome := OutcomeOK
			switch {
			case err != nil:
				outcome = OutcomeAborted
			case len(res.Quarantined) > 0:
				outcome = OutcomeDegraded
			}
			root.SetOutcome(outcome)
			root.End()
		}
		res.Report = buildReport("workflow."+w.Name, started, root, res, err)
	}()

	abort := func(st stageObs, stage string, aerr error) (*Result, error) {
		st.finish(OutcomeAborted, 0)
		log.AddOutcome(stage, aerr.Error(), 0, OutcomeAborted)
		return res, fmt.Errorf("workflow %s: %s: %w", w.Name, stage, aerr)
	}

	// Step 1: sure matches straight from the tables.
	st := startStage(ctx, "sure_matches", stageMS)
	if cerr := ctx.Err(); cerr != nil {
		return abort(st, "sure_matches", cerr)
	}
	if w.SureRules != nil && w.SureRules.Len() > 0 {
		res.Sure = w.SureRules.SureMatches(left, right)
	} else {
		res.Sure = block.NewCandidateSet(left, right)
	}
	st.finish(OutcomeOK, res.Sure.Len())
	log.Add("sure_matches", "positive rules over input tables", res.Sure.Len())

	// Step 2: blocking, under its stage deadline — or restored from a
	// checkpoint written by a previous run over the same inputs.
	st = startStage(ctx, "blocked", stageMS)
	var blocked *block.CandidateSet
	var blockedArt pairsArtifact
	if loadStageCkpt(opts.Checkpoints, ckptBlocked, st.span, &blockedArt, func() error {
		return blockedArt.validate(left, right)
	}) {
		blocked = blockedArt.toSet(left, right)
		st.finish(OutcomeResumed, blocked.Len())
		log.AddOutcome("blocked", "union of blockers (restored from checkpoint)", blocked.Len(), OutcomeResumed)
	} else {
		bctx, cancel := opts.stageCtx(st.ctx, "blocked")
		var berr error
		blocked, berr = block.UnionBlockCtx(bctx, left, right, w.Blockers...)
		cancel()
		if berr != nil {
			return abort(st, "blocked", berr)
		}
		saveStageCkpt(opts.Checkpoints, ckptBlocked, st.span, newPairsArtifact(blocked))
		st.finish(OutcomeOK, blocked.Len())
		log.Add("blocked", "union of blockers", blocked.Len())
	}

	// Step 3: remove sure matches from the candidate set.
	st = startStage(ctx, "candidates", stageMS)
	res.Candidates, err = blocked.Minus(res.Sure)
	if err != nil {
		return abort(st, "candidates", err)
	}
	st.finish(OutcomeOK, res.Candidates.Len())
	log.Add("candidates", "blocked minus sure matches", res.Candidates.Len())

	// Step 4: learned predictions, with the error budget. A pair whose
	// vectorization or prediction fails (panic or error) is quarantined
	// and the stage re-run without it, until the budget is spent. A
	// checkpoint from a previous run restores both the predictions and
	// the quarantine list, so a resumed run neither re-pays the
	// prediction cost nor re-admits poison pairs.
	st = startStage(ctx, "learned", stageMS)
	var learnedArt learnedArtifact
	if loadStageCkpt(opts.Checkpoints, ckptLearned, st.span, &learnedArt, func() error {
		if err := learnedArt.validate(left, right); err != nil {
			return err
		}
		return validPairs(learnedArt.Quarantined, left.Len(), right.Len())
	}) {
		res.Learned = learnedArt.toSet(left, right)
		res.Quarantined = toPairs(learnedArt.Quarantined)
		st.finish(OutcomeResumed, res.Learned.Len())
		detail := "matcher predictions on candidates (restored from checkpoint)"
		if n := len(res.Quarantined); n > 0 {
			detail = fmt.Sprintf("%s; %d pairs quarantined by the checkpointed run", detail, n)
		}
		log.AddOutcome("learned", detail, res.Learned.Len(), OutcomeResumed)
	} else {
		res.Learned = block.NewCandidateSet(left, right)
		if w.Matcher != nil && res.Candidates.Len() > 0 {
			if w.Features == nil || w.Imputer == nil {
				return abort(st, "learned", fmt.Errorf("matcher set but features/imputer missing"))
			}
			pairs := res.Candidates.Pairs()
			budget := opts.ErrorBudget
			quarantined := obs.C("workflow.quarantined")
			var preds []int
			for {
				var perr error
				preds, perr = w.predictPairs(st.ctx, opts, left, right, pairs)
				if perr == nil {
					break
				}
				idx, indexed := parallel.FailingIndex(perr)
				if !indexed || budget <= 0 || ctx.Err() != nil {
					return abort(st, "learned", perr)
				}
				budget--
				bad := pairs[idx]
				res.Quarantined = append(res.Quarantined, bad)
				quarantined.Inc()
				detail := fmt.Sprintf("quarantined pair (%d,%d) after failure: %v", bad.A, bad.B, unwrapIndexed(perr))
				st.span.Event("quarantine", detail)
				log.AddOutcome("learned", detail, len(pairs)-1, OutcomeDegraded)
				trimmed := make([]block.Pair, 0, len(pairs)-1)
				trimmed = append(trimmed, pairs[:idx]...)
				trimmed = append(trimmed, pairs[idx+1:]...)
				pairs = trimmed
			}
			for i, p := range pairs {
				if preds[i] == 1 {
					res.Learned.Add(p)
				}
			}
		}
		art := learnedArtifact{pairsArtifact: newPairsArtifact(res.Learned)}
		for _, p := range res.Quarantined {
			art.Quarantined = append(art.Quarantined, [2]int{p.A, p.B})
		}
		saveStageCkpt(opts.Checkpoints, ckptLearned, st.span, art)
		if len(res.Quarantined) > 0 {
			st.finish(OutcomeDegraded, res.Learned.Len())
			log.AddOutcome("learned",
				fmt.Sprintf("matcher predictions on candidates (%d pairs quarantined)", len(res.Quarantined)),
				res.Learned.Len(), OutcomeDegraded)
		} else {
			st.finish(OutcomeOK, res.Learned.Len())
			log.Add("learned", "matcher predictions on candidates", res.Learned.Len())
		}
	}

	// Step 5: negative rules veto learned matches.
	st = startStage(ctx, "vetoed", stageMS)
	kept := res.Learned
	if w.NegativeRules != nil && w.NegativeRules.Len() > 0 {
		kept, res.Vetoed = w.NegativeRules.FilterMatches(res.Learned)
	}
	st.finish(OutcomeOK, res.Vetoed)
	log.Add("vetoed", "negative rules flipped", res.Vetoed)

	// Step 6: final = sure ∪ kept.
	st = startStage(ctx, "final", stageMS)
	res.Final, err = res.Sure.Union(kept)
	if err != nil {
		return abort(st, "final", err)
	}
	st.finish(OutcomeOK, res.Final.Len())
	log.Add("final", "sure matches plus surviving predictions", res.Final.Len())

	// Step 7 (optional): production monitoring check, retried on the
	// run's policy when the labeler fails transiently.
	if opts.Check != nil {
		st = startStage(ctx, "monitor", stageMS)
		if opts.Check.Monitor == nil {
			return abort(st, "monitor", fmt.Errorf("check stage needs a monitor"))
		}
		mctx, cancel := opts.stageCtx(st.ctx, "monitor")
		cr, attempts, merr := opts.Check.Monitor.CheckCtx(mctx, opts.Retry, opts.Check.Batch, res.Final, opts.Check.Label)
		cancel()
		if merr != nil {
			return abort(st, "monitor", merr)
		}
		res.Check = &cr
		detail := fmt.Sprintf("precision [%.2f,%.2f] alarm=%v", cr.Precision.Lo, cr.Precision.Hi, cr.Alarm)
		if attempts > 1 {
			st.finish(OutcomeRetried, cr.Labeled)
			log.AddOutcome("monitor", fmt.Sprintf("%s after %d attempts", detail, attempts), cr.Labeled, OutcomeRetried)
		} else {
			st.finish(OutcomeOK, cr.Labeled)
			log.Add("monitor", detail, cr.Labeled)
		}
	}

	// Step 8 (optional): quality stage — assemble the statistical profile
	// the collector gathered and either snapshot it as the baseline or
	// check it against one. A breach is not an error: the run completed;
	// the degraded_quality outcome in spans and provenance (and the
	// report's quality section) is the signal operators and emmonitor
	// act on.
	if opts.Drift != nil {
		st = startStage(ctx, "quality", stageMS)
		cols := append(prof.ObserveTable("left", left), prof.ObserveTable("right", right)...)
		res.DriftProfile = prof.Profile("workflow."+w.Name, left.Len(), right.Len(), blocked.PerLeftCounts(), cols)
		if d := opts.Drift; d.Baseline == nil {
			res.DriftProfile.EstimatedPrecision = d.EstimatedPrecision
			if d.BaselinePath != "" {
				if werr := res.DriftProfile.WriteFile(d.BaselinePath); werr != nil {
					return abort(st, "quality", werr)
				}
			}
			st.finish(OutcomeOK, len(res.DriftProfile.Features))
			log.Add("quality", "captured baseline quality profile", len(res.DriftProfile.Features))
		} else {
			asmt, aerr := drift.Evaluate(d.Baseline, res.DriftProfile, d.Thresholds)
			if aerr != nil {
				return abort(st, "quality", aerr)
			}
			res.Quality = asmt
			asmt.Gauges()
			detail := fmt.Sprintf("drift verdict %s vs baseline %q", asmt.Verdict, d.Baseline.Name)
			if asmt.EstimatedPrecision != nil {
				detail += " est precision " + asmt.EstimatedPrecision.String()
			}
			if asmt.Verdict == drift.StatusOK {
				st.finish(OutcomeOK, len(asmt.Signals))
				log.Add("quality", detail, len(asmt.Signals))
			} else {
				st.finish(OutcomeDegradedQuality, len(asmt.Signals))
				log.AddOutcome("quality", detail, len(asmt.Signals), OutcomeDegradedQuality)
			}
		}
	}
	return res, nil
}

// buildReport assembles the machine-readable run report: the span tree,
// the global metrics snapshot (when enabled), the provenance log, and
// the quarantine list, in one JSON-serializable document.
func buildReport(name string, started time.Time, root *obs.Span, res *Result, runErr error) *obs.Report {
	rep := &obs.Report{
		Name:       name,
		StartedAt:  started,
		FinishedAt: time.Now(),
	}
	switch {
	case runErr != nil:
		rep.Outcome = OutcomeAborted
		rep.Error = runErr.Error()
	case len(res.Quarantined) > 0:
		rep.Outcome = OutcomeDegraded
	default:
		rep.Outcome = OutcomeOK
	}
	rep.Trace = root.Snapshot()
	if obs.Enabled() {
		snap := obs.Default().Snapshot()
		rep.Metrics = &snap
	}
	if res.Log != nil {
		for _, e := range res.Log.Entries() {
			rep.Provenance = append(rep.Provenance, obs.ProvEntry{
				Step: e.Step, Detail: e.Detail, Count: e.Count, Outcome: e.Outcome,
			})
		}
	}
	for _, p := range res.Quarantined {
		rep.Quarantined = append(rep.Quarantined, fmt.Sprintf("%d,%d", p.A, p.B))
	}
	switch {
	case res.Quality != nil:
		rep.Quality = res.Quality.QualityData(res.DriftProfile)
	case res.DriftProfile != nil:
		rep.Quality = drift.CaptureQuality(res.DriftProfile)
	}
	return rep
}

// predictPairs runs the vectorize → impute → predict chain for one set
// of candidate pairs under the "learned" stage deadline.
func (w *Workflow) predictPairs(ctx context.Context, opts RunOptions, left, right *table.Table, pairs []block.Pair) ([]int, error) {
	sctx, cancel := opts.stageCtx(ctx, "learned")
	defer cancel()
	x, err := w.Features.VectorizeCtx(sctx, left, right, pairs)
	if err != nil {
		return nil, err
	}
	x, err = w.Imputer.Transform(x)
	if err != nil {
		return nil, err
	}
	return ml.PredictAllCtx(sctx, w.Matcher, x)
}

// unwrapIndexed strips the parallel index wrapper for log detail text,
// keeping the underlying cause.
func unwrapIndexed(err error) error {
	var target error = err
	for {
		switch e := target.(type) {
		case *parallel.IndexError:
			return e.Err
		case *parallel.PanicError:
			return fmt.Errorf("panic: %v", e.Value)
		}
		u, ok := target.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		target = u.Unwrap()
	}
}
