package workflow

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"emgo/internal/block"
	"emgo/internal/fault"
	"emgo/internal/label"
	"emgo/internal/leakcheck"
	"emgo/internal/retry"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// hardenedFixture assembles the full test workflow (rules + blocking +
// matcher + veto rules) reused from workflow_test.go's fixtures.
func hardenedFixture(t *testing.T) (*Workflow, *tableTablePair) {
	t.Helper()
	l, r := fixture(t)
	m1, err := rules.NewEqual("M1", l, "Num", nil, r, "Num", nil, rules.Match)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := rules.NewComparableMismatch("neg", l, "Num", nil, r, "Num", nil, rules.Set{"XXX#####"})
	if err != nil {
		t.Fatal(err)
	}
	fs, im, matcher := trained(t, l, r)
	w := &Workflow{
		Name:      "hardened",
		SureRules: rules.NewEngine(m1),
		Blockers: []block.Blocker{
			block.Overlap{LeftCol: "Title", RightCol: "Title", Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true},
		},
		Features: fs, Imputer: im, Matcher: matcher,
		NegativeRules: rules.NewEngine(neg),
	}
	return w, &tableTablePair{l: l, r: r}
}

type tableTablePair struct{ l, r *table.Table }

func TestRunCtxMatchesRun(t *testing.T) {
	leakcheck.Check(t)
	w, tp := hardenedFixture(t)
	plain, err := w.Run(tp.l, tp.r)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hard.Final.Len() != plain.Final.Len() || hard.Vetoed != plain.Vetoed {
		t.Fatalf("hardened run diverges: final %d vs %d, vetoed %d vs %d",
			hard.Final.Len(), plain.Final.Len(), hard.Vetoed, plain.Vetoed)
	}
	for _, p := range plain.Final.Pairs() {
		if !hard.Final.Contains(p) {
			t.Fatalf("hardened final missing %v", p)
		}
	}
	if len(hard.Quarantined) != 0 {
		t.Fatalf("quarantined without faults: %v", hard.Quarantined)
	}
}

func TestRunCtxTransientLabelerFaultRetried(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	mon := &Monitor{SampleSize: 2, MinPrecision: 0.5, Rng: rand.New(rand.NewSource(7))}
	// The labeler's first call fails (flaky human-in-the-loop backend);
	// the retry policy must recover and the log must say so.
	fault.Enable("label.judge", fault.Plan{FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		Retry: retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Check: &CheckStage{
			Monitor: mon,
			Batch:   "batch-1",
			Label: func(p block.Pair) (label.Label, error) {
				if ferr := fault.Inject("label.judge"); ferr != nil {
					return 0, ferr
				}
				return label.Yes, nil
			},
		},
	})
	if err != nil {
		t.Fatalf("run with transient labeler fault should succeed after retry: %v", err)
	}
	if res.Check == nil || res.Check.Batch != "batch-1" {
		t.Fatalf("check result missing: %+v", res.Check)
	}
	var entry *Entry
	for _, e := range res.Log.Entries() {
		if e.Step == "monitor" {
			entry = &e
			break
		}
	}
	if entry == nil {
		t.Fatalf("no monitor entry:\n%s", res.Log)
	}
	if entry.Outcome != OutcomeRetried || !strings.Contains(entry.Detail, "2 attempts") {
		t.Fatalf("retry not recorded: %+v", entry)
	}
	if len(mon.History()) != 1 {
		t.Fatalf("monitor history = %d", len(mon.History()))
	}
}

func TestRunCtxErrorBudgetQuarantinesFailingPair(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	// One vectorization call panics; with budget the run degrades
	// instead of dying.
	fault.Enable("feature.vectorize", fault.Plan{Mode: fault.ModePanic, FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{ErrorBudget: 2})
	if err != nil {
		t.Fatalf("budgeted run should survive a poison pair: %v", err)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v", res.Quarantined)
	}
	logStr := res.Log.String()
	if !strings.Contains(logStr, "[degraded]") || !strings.Contains(logStr, "quarantined pair") {
		t.Fatalf("degraded outcome not logged:\n%s", logStr)
	}
	// The quarantined pair must not appear among learned matches.
	for _, p := range res.Quarantined {
		if res.Learned.Contains(p) {
			t.Fatalf("quarantined pair %v predicted anyway", p)
		}
	}
}

func TestRunCtxZeroBudgetAborts(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	fault.Enable("feature.vectorize", fault.Plan{Mode: fault.ModePanic, FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err == nil {
		t.Fatal("zero budget must abort on a failing pair")
	}
	if res == nil || res.Log == nil {
		t.Fatal("failed run must still return its provenance log")
	}
	if !strings.Contains(res.Log.String(), "[aborted]") {
		t.Fatalf("abort not logged:\n%s", res.Log)
	}
}

func TestRunCtxPredictionFaultQuarantined(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	fault.Enable("ml.predict", fault.Plan{Mode: fault.ModePanic, FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{ErrorBudget: 1})
	if err != nil {
		t.Fatalf("prediction fault should be quarantined: %v", err)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %v", res.Quarantined)
	}
}

func TestRunCtxStageDeadlineAborts(t *testing.T) {
	leakcheck.Check(t)
	w, tp := hardenedFixture(t)
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{
		StageTimeouts: map[string]time.Duration{"blocked": time.Nanosecond},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err: %v", err)
	}
	if !strings.Contains(res.Log.String(), "[aborted]") {
		t.Fatalf("abort not logged:\n%s", res.Log)
	}
}

func TestRunCtxCancelledBeforeStart(t *testing.T) {
	leakcheck.Check(t)
	w, tp := hardenedFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := w.RunCtx(ctx, tp.l, tp.r, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
}

func TestRunCtxBlockJoinFaultAborts(t *testing.T) {
	defer fault.Reset()
	w, tp := hardenedFixture(t)
	fault.Enable("block.join", fault.Plan{FailFirst: 1})
	res, err := w.RunCtx(context.Background(), tp.l, tp.r, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("err: %v", err)
	}
	if !strings.Contains(res.Log.String(), "[aborted]") {
		t.Fatalf("abort not logged:\n%s", res.Log)
	}
}

func TestMonitorNilGuards(t *testing.T) {
	mon := &Monitor{}
	_, err := mon.Check("b", nil, func(block.Pair) label.Label { return label.Yes })
	if err == nil || !strings.Contains(err.Error(), "Rng") {
		t.Fatalf("nil Rng: %v", err)
	}
	mon.Rng = rand.New(rand.NewSource(1))
	// nil candidate set must be a descriptive error, not a panic.
	_, err = mon.Check("b", nil, func(block.Pair) label.Label { return label.Yes })
	if err == nil || !strings.Contains(err.Error(), "no candidate set") {
		t.Fatalf("nil predicted: %v", err)
	}
	_, err = mon.Check("b", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "labeler") {
		t.Fatalf("nil labeler: %v", err)
	}
}
