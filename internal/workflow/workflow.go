// Package workflow composes the EM building blocks into executable
// matching workflows with provenance logging. The central type models the
// shape the case study converged on (Figures 8-10): positive "sure-match"
// rules applied directly to the input tables, a blocking pipeline, a
// trained learning-based matcher over the remaining candidates, and
// negative rules vetoing the learner's predictions. Workflows are patched
// (Section 10) by running the same workflow over additional data slices
// and unioning results at the record-ID level.
package workflow

import (
	"fmt"
	"strings"
	"sync"

	"emgo/internal/block"
	"emgo/internal/drift"
	"emgo/internal/feature"
	"emgo/internal/ml"
	"emgo/internal/obs"
	"emgo/internal/rules"
	"emgo/internal/table"
)

// Stage outcomes recorded by the hardened runtime (RunCtx). An empty
// Outcome on an Entry means the same as OutcomeOK.
const (
	// OutcomeOK marks a stage that completed normally.
	OutcomeOK = "ok"
	// OutcomeRetried marks a stage that succeeded only after one or more
	// retries of a transient fault.
	OutcomeRetried = "retried"
	// OutcomeAborted marks the stage a failed run stopped at.
	OutcomeAborted = "aborted"
	// OutcomeDegraded marks a stage that completed by quarantining
	// failing pairs under the error budget.
	OutcomeDegraded = "degraded"
	// OutcomeResumed marks a stage whose result was restored from a
	// crash-safe checkpoint instead of recomputed — the record that
	// distinguishes "this run did the work" from "a previous run did".
	OutcomeResumed = "resumed"
	// OutcomeDegradedQuality marks the quality stage of a monitored run
	// whose live profile drifted past the configured warn/fail thresholds
	// relative to its training baseline: the run completed, but its
	// training-time accuracy claim should be re-examined for this slice.
	OutcomeDegradedQuality = "degraded_quality"
)

// Entry is one provenance record.
type Entry struct {
	Step   string
	Detail string
	Count  int
	// Outcome is how the stage ended ("" or OutcomeOK for normal
	// completion; see the Outcome* constants). Only RunCtx records
	// non-ok outcomes.
	Outcome string
}

// Log collects the steps a workflow executed, in order — the record the
// two teams shared when discussing results. Appends and reads are safe
// from concurrent goroutines: parallel stage workers may log while an
// operator (or the debug endpoint) renders the log mid-run.
type Log struct {
	mu      sync.Mutex
	entries []Entry
}

// Add appends an entry with the default ok outcome.
func (l *Log) Add(step, detail string, count int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Entry{Step: step, Detail: detail, Count: count})
}

// AddOutcome appends an entry with an explicit stage outcome — the
// hardened runtime's record of retries, quarantines, and aborts.
func (l *Log) AddOutcome(step, detail string, count int, outcome string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Entry{Step: step, Detail: detail, Count: count, Outcome: outcome})
}

// Entries returns a copy of the log: later appends do not grow the
// returned slice, and mutating the returned entries does not touch the
// log.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// String renders the log one step per line; non-ok outcomes are flagged
// in brackets.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Entries() {
		if e.Outcome != "" && e.Outcome != OutcomeOK {
			fmt.Fprintf(&b, "%-24s %6d  [%s] %s\n", e.Step, e.Count, e.Outcome, e.Detail)
			continue
		}
		fmt.Fprintf(&b, "%-24s %6d  %s\n", e.Step, e.Count, e.Detail)
	}
	return b.String()
}

// Workflow is a complete EM workflow: rules + blocking + learner + veto
// rules. SureRules and NegativeRules may be nil engines; Matcher may be
// nil for a rules-only workflow (the IRIS shape).
type Workflow struct {
	// Name identifies the workflow in logs.
	Name string
	// SureRules are positive rules pulling sure matches straight from the
	// input tables (bypassing blocking, so a rule can never be lost to a
	// blocking mistake).
	SureRules *rules.Engine
	// Blockers build the candidate set; they are unioned.
	Blockers []block.Blocker
	// Features, Imputer and Matcher form the trained learning-based
	// matcher applied to candidates that no rule decided.
	Features *feature.Set
	Imputer  *feature.Imputer
	Matcher  ml.Matcher
	// NegativeRules veto predicted matches (Figure 10).
	NegativeRules *rules.Engine
}

// Result is the outcome of running a workflow over one pair of tables.
type Result struct {
	// Sure are the matches the positive rules declared (C1/D1 in the
	// paper's notation).
	Sure *block.CandidateSet
	// Candidates is the blocked candidate set minus the sure matches
	// (C = C2 - C1).
	Candidates *block.CandidateSet
	// Learned are the matcher's predicted matches on Candidates before
	// negative rules (R1/R2).
	Learned *block.CandidateSet
	// Vetoed is how many learned matches the negative rules flipped.
	Vetoed int
	// Final is Sure ∪ (Learned minus vetoed) (S1/S2 unioned with sure
	// matches).
	Final *block.CandidateSet
	// Quarantined are candidate pairs the hardened runtime (RunCtx)
	// dropped under the error budget because vectorization or prediction
	// failed on them; always empty for plain Run.
	Quarantined []block.Pair
	// Check is the production monitoring check RunCtx ran when its
	// options asked for one (nil otherwise).
	Check *CheckResult
	// DriftProfile is the statistical profile the quality stage captured
	// when RunOptions.Drift armed a collector (nil otherwise). In capture
	// mode it is the baseline snapshot; in check mode it is the live
	// profile that was scored against the baseline.
	DriftProfile *drift.Profile
	// Quality is the drift assessment of a checked run against its
	// baseline (nil unless RunOptions.Drift supplied one).
	Quality *drift.Assessment
	// Log records each step.
	Log *Log
	// Report is the machine-readable run record (spans, metrics,
	// provenance, quarantines) the hardened runtime builds on every
	// RunCtx run, success or failure; nil for plain Run.
	Report *obs.Report
}

// Run executes the workflow on one (left, right) table pair.
func (w *Workflow) Run(left, right *table.Table) (*Result, error) {
	log := &Log{}
	res := &Result{Log: log}

	// Step 1: sure matches straight from the tables.
	if w.SureRules != nil && w.SureRules.Len() > 0 {
		res.Sure = w.SureRules.SureMatches(left, right)
	} else {
		res.Sure = block.NewCandidateSet(left, right)
	}
	log.Add("sure_matches", "positive rules over input tables", res.Sure.Len())

	// Step 2: blocking.
	blocked, err := block.UnionBlock(left, right, w.Blockers...)
	if err != nil {
		return nil, fmt.Errorf("workflow %s: blocking: %w", w.Name, err)
	}
	log.Add("blocked", "union of blockers", blocked.Len())

	// Step 3: remove sure matches from the candidate set.
	res.Candidates, err = blocked.Minus(res.Sure)
	if err != nil {
		return nil, fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	log.Add("candidates", "blocked minus sure matches", res.Candidates.Len())

	// Step 4: learned predictions.
	res.Learned = block.NewCandidateSet(left, right)
	if w.Matcher != nil && res.Candidates.Len() > 0 {
		if w.Features == nil || w.Imputer == nil {
			return nil, fmt.Errorf("workflow %s: matcher set but features/imputer missing", w.Name)
		}
		x, err := w.Features.Vectorize(left, right, res.Candidates.Pairs())
		if err != nil {
			return nil, fmt.Errorf("workflow %s: vectorize: %w", w.Name, err)
		}
		x, err = w.Imputer.Transform(x)
		if err != nil {
			return nil, fmt.Errorf("workflow %s: impute: %w", w.Name, err)
		}
		for i, p := range res.Candidates.Pairs() {
			if w.Matcher.Predict(x[i]) == 1 {
				res.Learned.Add(p)
			}
		}
	}
	log.Add("learned", "matcher predictions on candidates", res.Learned.Len())

	// Step 5: negative rules veto learned matches.
	kept := res.Learned
	if w.NegativeRules != nil && w.NegativeRules.Len() > 0 {
		kept, res.Vetoed = w.NegativeRules.FilterMatches(res.Learned)
	}
	log.Add("vetoed", "negative rules flipped", res.Vetoed)

	// Step 6: final = sure ∪ kept.
	res.Final, err = res.Sure.Union(kept)
	if err != nil {
		return nil, fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	log.Add("final", "sure matches plus surviving predictions", res.Final.Len())
	return res, nil
}

// IDPair is a match expressed as record identifiers — the "pairs of
// UniqueAwardNumber and AccessionNumber" deliverable format.
type IDPair struct {
	Left, Right string
}

// MatchIDs extracts the final matches of a result as record-ID pairs using
// the given ID columns.
func (r *Result) MatchIDs(leftIDCol, rightIDCol string) ([]IDPair, error) {
	lj, err := r.Final.Left.Col(leftIDCol)
	if err != nil {
		return nil, err
	}
	rj, err := r.Final.Right.Col(rightIDCol)
	if err != nil {
		return nil, err
	}
	out := make([]IDPair, 0, r.Final.Len())
	for _, p := range r.Final.Sorted() {
		out = append(out, IDPair{
			Left:  r.Final.Left.Row(p.A)[lj].Str(),
			Right: r.Final.Right.Row(p.B)[rj].Str(),
		})
	}
	return out, nil
}

// MergeIDs unions match-ID lists from multiple workflow runs (the
// patching step of Section 10), deduplicating exact pairs while keeping
// first-seen order.
func MergeIDs(lists ...[]IDPair) []IDPair {
	seen := make(map[IDPair]struct{})
	var out []IDPair
	for _, list := range lists {
		for _, p := range list {
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}
