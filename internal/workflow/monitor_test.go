package workflow

import (
	"math/rand"
	"testing"

	"emgo/internal/block"
	"emgo/internal/label"
	"emgo/internal/table"
)

func monitorFixture(n int) *block.CandidateSet {
	schema := table.MustSchema(table.Field{Name: "X", Kind: table.Int})
	l := table.New("L", schema)
	r := table.New("R", schema)
	for i := 0; i < n; i++ {
		l.MustAppend(table.Row{table.I(int64(i))})
		r.MustAppend(table.Row{table.I(int64(i))})
	}
	c := block.NewCandidateSet(l, r)
	for i := 0; i < n; i++ {
		c.Add(block.Pair{A: i, B: i})
	}
	return c
}

func TestMonitorHealthyBatch(t *testing.T) {
	pred := monitorFixture(500)
	m := &Monitor{SampleSize: 100, MinPrecision: 0.9, Rng: rand.New(rand.NewSource(1))}
	// 97% of predictions are correct.
	rng := rand.New(rand.NewSource(2))
	res, err := m.Check("2016-Q1", pred, func(p block.Pair) label.Label {
		if rng.Float64() < 0.97 {
			return label.Yes
		}
		return label.No
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarm {
		t.Fatalf("healthy batch should not alarm: %+v", res)
	}
	if res.Labeled == 0 || res.Precision.Point < 0.85 {
		t.Fatalf("check result off: %+v", res)
	}
	if len(m.History()) != 1 || len(m.Alarms()) != 0 {
		t.Fatal("history bookkeeping wrong")
	}
}

func TestMonitorDriftAlarms(t *testing.T) {
	pred := monitorFixture(500)
	m := &Monitor{SampleSize: 100, MinPrecision: 0.9, Rng: rand.New(rand.NewSource(3))}
	// The new data slice is dirty: precision collapses to ~50%.
	rng := rand.New(rand.NewSource(4))
	res, err := m.Check("2016-Q2", pred, func(p block.Pair) label.Label {
		if rng.Float64() < 0.5 {
			return label.Yes
		}
		return label.No
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Alarm {
		t.Fatalf("drifted batch should alarm: %+v", res)
	}
	if len(m.Alarms()) != 1 {
		t.Fatal("alarm not recorded")
	}
}

func TestMonitorUnsureIgnored(t *testing.T) {
	pred := monitorFixture(100)
	m := &Monitor{SampleSize: 50, MinPrecision: 0.5, Rng: rand.New(rand.NewSource(5))}
	i := 0
	res, err := m.Check("batch", pred, func(p block.Pair) label.Label {
		i++
		if i%2 == 0 {
			return label.Unsure
		}
		return label.Yes
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labeled != 25 {
		t.Fatalf("unsures should be excluded: labeled=%d", res.Labeled)
	}
	if res.Precision.Point != 1 {
		t.Fatalf("all decided labels are Yes: %+v", res.Precision)
	}
}

func TestMonitorValidation(t *testing.T) {
	pred := monitorFixture(10)
	m := &Monitor{}
	if _, err := m.Check("b", pred, nil); err == nil {
		t.Fatal("missing rng should error")
	}
	m.Rng = rand.New(rand.NewSource(1))
	if _, err := m.Check("b", pred, nil); err == nil {
		t.Fatal("missing labeler should error")
	}
	empty := block.NewCandidateSet(pred.Left, pred.Right)
	if _, err := m.Check("b", empty, func(block.Pair) label.Label { return label.Yes }); err == nil {
		t.Fatal("empty prediction set should error")
	}
}

func TestMonitorSampleLargerThanPredictions(t *testing.T) {
	pred := monitorFixture(5)
	m := &Monitor{SampleSize: 100, MinPrecision: 0.5, Rng: rand.New(rand.NewSource(6))}
	res, err := m.Check("b", pred, func(block.Pair) label.Label { return label.Yes })
	if err != nil {
		t.Fatal(err)
	}
	if res.Labeled != 5 {
		t.Fatalf("sample should clamp to prediction count: %d", res.Labeled)
	}
}
