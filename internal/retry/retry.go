// Package retry implements capped exponential backoff with deterministic
// schedules for the pipeline's transient-fault boundaries: the labeling
// tool, transform-registry lookups, and production monitoring checks.
//
// Determinism is the point. A Policy's Schedule is a pure function of its
// fields — no global randomness — so tests can assert the exact delays a
// retried stage will sleep, and two replicas retrying the same failure
// back off identically. When spreading load matters, Seed adds
// deterministic pseudo-jitter: still reproducible, but distinct per seed.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"emgo/internal/obs"
)

// Policy describes a capped exponential backoff schedule. The zero value
// means "try once, never sleep" — safe to embed in option structs where
// retrying is opt-in.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (<= 1 means a single attempt).
	MaxAttempts int
	// BaseDelay is the sleep before the first retry (default 10ms when
	// retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay between retries (default 2).
	Multiplier float64
	// Seed, when non-zero, scales each delay by a deterministic
	// pseudo-jitter factor in [0.5, 1.5) drawn from a rand stream seeded
	// with it. Zero means jitter-free.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// Schedule returns the exact delays Do will sleep between attempts —
// MaxAttempts-1 entries. It is what tests assert against.
func (p Policy) Schedule() []time.Duration {
	p = p.withDefaults()
	if p.MaxAttempts <= 1 {
		return nil
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	out := make([]time.Duration, p.MaxAttempts-1)
	d := float64(p.BaseDelay)
	for i := range out {
		v := d
		if v > float64(p.MaxDelay) {
			v = float64(p.MaxDelay)
		}
		if rng != nil {
			v *= 0.5 + rng.Float64()
		}
		out[i] = time.Duration(v)
		d *= p.Multiplier
	}
	return out
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately instead of burning the
// remaining attempts (e.g. "unknown transform" is never transient).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was wrapped by Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs fn under the policy: on a transient error it sleeps the next
// scheduled delay (abandoning the wait if ctx is done) and tries again.
// It returns nil on the first success, the unwrapped error behind a
// Permanent marker, ctx's error when cancelled mid-backoff, or the last
// attempt's error once the schedule is exhausted.
func Do(ctx context.Context, p Policy, fn func() error) error {
	_, err := DoCount(ctx, p, fn)
	return err
}

// DoCount is Do, additionally reporting how many attempts ran — the
// number provenance logs record for retried stages.
func DoCount(ctx context.Context, p Policy, fn func() error) (attempts int, err error) {
	p = p.withDefaults()
	schedule := p.Schedule()
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return attempts, fmt.Errorf("retry: cancelled after %d attempts: %w (last error: %v)", attempts, cerr, err)
			}
			return attempts, cerr
		}
		attempts++
		obs.C("retry.attempts").Inc()
		if attempt > 0 {
			// A retry beyond the first attempt is the signal operators
			// count; it also lands on the active trace span so a run
			// report shows where the backoff time went.
			obs.C("retry.retries").Inc()
			obs.AddEvent(ctx, "retry", fmt.Sprintf("attempt %d after %v", attempts, err))
		}
		err = fn()
		if err == nil {
			return attempts, nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return attempts, pe.err
		}
		if attempt >= len(schedule) {
			if attempts > 1 {
				return attempts, fmt.Errorf("retry: %d attempts exhausted: %w", attempts, err)
			}
			return attempts, err
		}
		timer := time.NewTimer(schedule[attempt])
		select {
		case <-ctx.Done():
			timer.Stop()
			return attempts, fmt.Errorf("retry: cancelled after %d attempts: %w (last error: %v)", attempts, ctx.Err(), err)
		case <-timer.C:
		}
	}
}
