package retry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	sentinel := errors.New("boom")
	n, err := DoCount(context.Background(), Policy{}, func() error {
		calls++
		return sentinel
	})
	if n != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d", n, calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err: %v", err)
	}
}

func TestScheduleDeterministicAndCapped(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 40}
	got := p.Schedule()
	if len(got) != len(want) {
		t.Fatalf("schedule: %v", got)
	}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("delay %d = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
	// Identical policies produce identical schedules.
	if fmt.Sprint(p.Schedule()) != fmt.Sprint(got) {
		t.Fatal("schedule not reproducible")
	}
}

func TestSeededJitterDeterministicPerSeed(t *testing.T) {
	base := Policy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	a := base
	a.Seed = 1
	b := base
	b.Seed = 2
	if fmt.Sprint(a.Schedule()) != fmt.Sprint(a.Schedule()) {
		t.Fatal("seeded schedule not reproducible")
	}
	if fmt.Sprint(a.Schedule()) == fmt.Sprint(b.Schedule()) {
		t.Fatal("different seeds should jitter differently")
	}
	for i, d := range a.Schedule() {
		lo := base.Schedule()[i] / 2
		hi := base.Schedule()[i] * 3 / 2
		if d < lo || d >= hi {
			t.Fatalf("jittered delay %d = %v outside [%v,%v)", i, d, lo, hi)
		}
	}
}

func TestTransientThenSuccess(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond}
	n, err := DoCount(context.Background(), p, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("attempts=%d err=%v", n, err)
	}
}

func TestExhaustedReportsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	n, err := DoCount(context.Background(), p, func() error { return errors.New("always") })
	if n != 3 {
		t.Fatalf("attempts = %d", n)
	}
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err: %v", err)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	sentinel := errors.New("bad spec")
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	err := Do(context.Background(), p, func() error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err: %v", err)
	}
	if IsPermanent(err) {
		t.Fatal("Do should unwrap the permanent marker")
	}
	if !IsPermanent(Permanent(sentinel)) {
		t.Fatal("IsPermanent")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil)")
	}
}

func TestCancelledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 3, BaseDelay: time.Hour} // would sleep forever
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	n, err := DoCount(ctx, p, func() error { return errors.New("transient") })
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not interrupt backoff")
	}
	if n != 1 {
		t.Fatalf("attempts = %d", n)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	n, err := DoCount(ctx, Policy{MaxAttempts: 3}, func() error { calls++; return nil })
	if calls != 0 || n != 0 {
		t.Fatalf("calls=%d attempts=%d", calls, n)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
}
