package core

import (
	"strings"
	"testing"

	"emgo/internal/block"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// figure1Tables builds the paper's Figure 1 example plus enough synthetic
// rows to train on.
func figure1Tables(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	schema := func() *table.Schema {
		return table.MustSchema(
			table.Field{Name: "Name", Kind: table.String},
			table.Field{Name: "City", Kind: table.String},
			table.Field{Name: "State", Kind: table.String},
		)
	}
	a := table.New("A", schema())
	a.MustAppend(table.Row{table.S("Dave Smith"), table.S("Madison"), table.S("WI")})
	a.MustAppend(table.Row{table.S("Joe Wilson"), table.S("San Jose"), table.S("CA")})
	a.MustAppend(table.Row{table.S("Dan Smith"), table.S("Middleton"), table.S("WI")})

	b := table.New("B", schema())
	b.MustAppend(table.Row{table.S("David D. Smith"), table.S("Madison"), table.S("WI")})
	b.MustAppend(table.Row{table.S("Daniel W. Smith"), table.S("Middleton"), table.S("WI")})
	return a, b
}

// richTables builds a larger two-table fixture with known matches for the
// end-to-end flow.
func richTables(t *testing.T) (*table.Table, *table.Table, map[block.Pair]bool) {
	t.Helper()
	schema := func() *table.Schema {
		return table.MustSchema(
			table.Field{Name: "ID", Kind: table.String},
			table.Field{Name: "Title", Kind: table.String},
			table.Field{Name: "Code", Kind: table.String},
		)
	}
	base := []string{
		"corn fungicide guidelines north central states",
		"swamp dodder ecology management carrot production",
		"dairy cattle genetics improvement wisconsin herds",
		"soil nitrogen runoff watershed modeling study",
		"cranberry pest management integrated program",
		"wheat rust resistance breeding markers",
		"maple syrup production economics analysis",
		"soybean aphid biocontrol field trials",
	}
	l := table.New("L", schema())
	r := table.New("R", schema())
	truth := map[block.Pair]bool{}
	for i, title := range base {
		code := "C" + string(rune('0'+i))
		l.MustAppend(table.Row{
			table.S(string(rune('a' + i))),
			table.S(strings.ToUpper(title)),
			table.S(code),
		})
		// Matching right record: same title, title case. Half the right
		// records are missing the code, so only titles can match them
		// (the learner's job).
		rightCode := table.S(code)
		if i%2 == 1 {
			rightCode = table.Null(table.String)
		}
		r.MustAppend(table.Row{
			table.S(string(rune('A' + i))),
			table.S(title),
			rightCode,
		})
		truth[block.Pair{A: i, B: i}] = true
	}
	// Non-matching extra right rows sharing a couple of title tokens with
	// real grants (the blocking collisions the learner must reject).
	for i, title := range []string{
		"corn rootworm management field study",
		"dairy herds nutrition economics survey",
		"watershed runoff phosphorus monitoring",
		"wheat breeding winter trials",
	} {
		r.MustAppend(table.Row{
			table.S("X" + string(rune('0'+i))),
			table.S(title),
			table.Null(table.String),
		})
	}
	return l, r, truth
}

func TestNewProjectValidation(t *testing.T) {
	if _, err := NewProject("x", nil, nil, 1); err == nil {
		t.Fatal("nil tables should error")
	}
}

func TestProjectProfile(t *testing.T) {
	a, b := figure1Tables(t)
	p, err := NewProject("fig1", a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "fig1" || p.Left() != a || p.Right() != b {
		t.Fatal("accessors")
	}
	lr, rr := p.Profile()
	if lr.Rows != 3 || rr.Rows != 2 {
		t.Fatal("profiles wrong")
	}
}

func TestProjectGuardRails(t *testing.T) {
	a, b := figure1Tables(t)
	p, _ := NewProject("fig1", a, b, 1)
	if _, err := p.Block(); err == nil {
		t.Fatal("Block without blockers should error")
	}
	if _, err := p.SamplePairs(5); err == nil {
		t.Fatal("SamplePairs before Block should error")
	}
	if _, err := p.DebugBlocking(map[string]string{"Name": "Name"}, 5); err == nil {
		t.Fatal("DebugBlocking before Block should error")
	}
	if _, err := p.SelectMatcher(2); err == nil {
		t.Fatal("SelectMatcher without features should error")
	}
	if err := p.Train("decision_tree"); err == nil {
		t.Fatal("Train without features should error")
	}
	if _, err := p.Match(); err == nil {
		t.Fatal("Match without blockers should error")
	}
}

func TestProjectEndToEnd(t *testing.T) {
	l, r, truth := richTables(t)
	p, err := NewProject("rich", l, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Rules: exact code equality is a sure match; same-prefix-different
	// code is a veto.
	sure, err := rules.NewEqual("code", l, "Code", nil, r, "Code", nil, rules.Match)
	if err != nil {
		t.Fatal(err)
	}
	p.AddSureRule(sure)

	p.AddBlocker(block.Overlap{
		LeftCol: "Title", RightCol: "Title",
		Tokenizer: tokenize.Word{}, Threshold: 2, Normalize: true,
	})
	cand, err := p.Block()
	if err != nil {
		t.Fatal(err)
	}
	if cand.Len() == 0 {
		t.Fatal("no candidates")
	}
	if p.Candidates() != cand {
		t.Fatal("candidates accessor")
	}

	// Debug blocking.
	top, err := p.DebugBlocking(map[string]string{"Title": "Title"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, dp := range top {
		if truth[dp.Pair] {
			t.Fatal("blocking dropped a true match")
		}
	}

	// Label everything (small fixture; oracle labels).
	pairs, err := p.SamplePairs(cand.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		lab := label.No
		if truth[pr] {
			lab = label.Yes
		}
		if err := p.SetLabel(pr, lab); err != nil {
			t.Fatal(err)
		}
	}
	if p.Labels().Len() != len(pairs) {
		t.Fatal("labels lost")
	}

	// Features: auto plus the case-insensitive extension.
	corr := map[string]string{"Title": "Title"}
	if err := p.GenerateFeatures(corr, []string{"Title"}); err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(p.Features(), l, corr, []string{"Title"}); err != nil {
		t.Fatal(err)
	}

	cv, err := p.SelectMatcher(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv) != 6 {
		t.Fatalf("cv results = %d", len(cv))
	}
	if err := p.Train(cv[0].Name); err != nil {
		t.Fatal(err)
	}
	if err := p.Train("no_such_matcher"); err == nil {
		t.Fatal("unknown matcher should error")
	}
	// Re-train with the winner (the failed call must not clobber it).
	if err := p.Train(cv[0].Name); err != nil {
		t.Fatal(err)
	}

	res, err := p.Match()
	if err != nil {
		t.Fatal(err)
	}
	// All true matches found (codes make them sure anyway).
	for pr := range truth {
		if !res.Final.Contains(pr) {
			t.Fatalf("missed true match %v", pr)
		}
	}

	// Estimate accuracy from the (fully labeled) sample.
	est, err := p.EstimateAccuracy(res.Final, p.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if est.Recall.Point < 0.99 {
		t.Fatalf("estimated recall = %v", est.Recall.Point)
	}
}

func TestProjectLabelDebugging(t *testing.T) {
	l, r, truth := richTables(t)
	p, _ := NewProject("dbg", l, r, 5)
	p.AddBlocker(block.Overlap{
		LeftCol: "Title", RightCol: "Title",
		Tokenizer: tokenize.Word{}, Threshold: 1, Normalize: true,
	})
	if _, err := p.Block(); err != nil {
		t.Fatal(err)
	}
	pairs, _ := p.SamplePairs(p.Candidates().Len())
	var flipped block.Pair
	haveFlip := false
	for _, pr := range pairs {
		lab := label.No
		if truth[pr] {
			lab = label.Yes
			if !haveFlip {
				lab = label.No // corrupt one true match's label
				flipped = pr
				haveFlip = true
			}
		}
		p.SetLabel(pr, lab)
	}
	if !haveFlip {
		t.Skip("no true match sampled")
	}
	if err := p.GenerateFeatures(map[string]string{"Title": "Title"}, []string{"Title"}); err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(p.Features(), l, map[string]string{"Title": "Title"}, []string{"Title"}); err != nil {
		t.Fatal(err)
	}
	suspects, err := p.DebugLabels()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pr := range suspects {
		if pr == flipped {
			found = true
		}
	}
	if !found {
		t.Fatalf("label debugging missed the corrupted pair %v (got %v)", flipped, suspects)
	}
}

func TestProjectDebugViews(t *testing.T) {
	l, r, truth := richTables(t)
	p, _ := NewProject("views", l, r, 13)
	sure, err := rules.NewEqual("code", l, "Code", nil, r, "Code", nil, rules.Match)
	if err != nil {
		t.Fatal(err)
	}
	p.AddSureRule(sure)
	p.AddBlocker(block.Overlap{
		LeftCol: "Title", RightCol: "Title",
		Tokenizer: tokenize.Word{}, Threshold: 2, Normalize: true,
	})
	if _, _, err := p.RuleCoverage(); err == nil {
		t.Fatal("RuleCoverage before Block should error")
	}
	cand, err := p.Block()
	if err != nil {
		t.Fatal(err)
	}
	sureCov, negCov, err := p.RuleCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if sureCov["code"] == 0 {
		t.Fatalf("sure rule should cover pairs: %v", sureCov)
	}
	if negCov[""] != cand.Len() {
		t.Fatalf("no negative rules: everything should be undecided: %v", negCov)
	}

	// Train, then check importance and PR curve.
	pairs, _ := p.SamplePairs(cand.Len())
	for _, pr := range pairs {
		lab := label.No
		if truth[pr] {
			lab = label.Yes
		}
		p.SetLabel(pr, lab)
	}
	corr := map[string]string{"Title": "Title"}
	if err := p.GenerateFeatures(corr, []string{"Title"}); err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(p.Features(), l, corr, []string{"Title"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FeatureImportance(); err == nil {
		t.Fatal("importance before training should error")
	}
	if err := p.Train("decision_tree"); err != nil {
		t.Fatal(err)
	}
	imp, err := p.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != p.Features().Len() {
		t.Fatalf("importance entries = %d", len(imp))
	}
	curve, err := p.PRCurve()
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("empty PR curve")
	}
	// A non-probabilistic matcher rejects the curve.
	if err := p.Train("svm"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PRCurve(); err == nil {
		t.Fatal("svm has no probabilities; PRCurve should error")
	}
	if _, err := p.FeatureImportance(); err == nil {
		t.Fatal("svm has no importance; should error")
	}
}

func TestProjectCustomFeatureAndMatcher(t *testing.T) {
	l, r, _ := richTables(t)
	p, _ := NewProject("custom", l, r, 9)
	if err := p.AddFeature(feature.Feature{
		Name: "always1", LeftCol: "Title", RightCol: "Title",
		Compute: func(a, b table.Value) float64 { return 1 },
	}); err != nil {
		t.Fatal(err)
	}
	if p.Features().Len() != 1 {
		t.Fatal("custom feature not added")
	}
}
