// Package core is emgo's public API: a Project type that walks the
// PyMatcher how-to guide end to end — load and explore tables, block,
// sample and label, generate features, select and train a matcher, layer
// rules around it, predict, and estimate accuracy. It composes the
// substrate packages (table, profile, block, feature, ml, rules, label,
// estimate, workflow) behind one coherent surface; everything it returns
// is an ordinary value from those packages, so advanced users can drop a
// level whenever the guide runs out (the "open-world" architecture the
// paper argues for in Section 13).
package core

import (
	"fmt"
	"math/rand"

	"emgo/internal/block"
	"emgo/internal/estimate"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/profile"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/workflow"
)

// Project is one EM project over a fixed pair of tables. The zero value
// is not usable; create with NewProject. Methods are meant to be called
// roughly in guide order, but the zig-zag the paper describes is fully
// supported: blockers, rules, labels, and features can be revised at any
// point and later stages re-run.
type Project struct {
	name  string
	left  *table.Table
	right *table.Table

	blockers  []block.Blocker
	sureRules *rules.Engine
	negRules  *rules.Engine

	candidates *block.CandidateSet
	labels     *label.Store
	features   *feature.Set
	imputer    *feature.Imputer
	matcher    ml.Matcher

	seed int64
	rng  *rand.Rand
}

// NewProject starts an EM project matching left against right. seed makes
// every stochastic step (sampling, cross-validation folds, forests)
// reproducible.
func NewProject(name string, left, right *table.Table, seed int64) (*Project, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("core: project %q needs two tables", name)
	}
	return &Project{
		name:      name,
		left:      left,
		right:     right,
		sureRules: rules.NewEngine(),
		negRules:  rules.NewEngine(),
		labels:    label.NewStore(),
		seed:      seed,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// Name returns the project name.
func (p *Project) Name() string { return p.name }

// Left and Right return the input tables.
func (p *Project) Left() *table.Table  { return p.left }
func (p *Project) Right() *table.Table { return p.right }

// Profile returns column profiles of both tables — the "understanding the
// data" step (Section 4 of the paper).
func (p *Project) Profile() (left, right *profile.Report) {
	return profile.Profile(p.left), profile.Profile(p.right)
}

// AddBlocker appends a blocker; Block unions all of them.
func (p *Project) AddBlocker(b block.Blocker) { p.blockers = append(p.blockers, b) }

// AddSureRule appends a positive rule applied directly to the input
// tables; its matches bypass blocking and the learner.
func (p *Project) AddSureRule(r rules.Rule) { p.sureRules.Add(r) }

// AddNegativeRule appends a veto rule applied to the learner's predicted
// matches.
func (p *Project) AddNegativeRule(r rules.Rule) { p.negRules.Add(r) }

// Block runs the blocking pipeline and stores (and returns) the candidate
// set.
func (p *Project) Block() (*block.CandidateSet, error) {
	if len(p.blockers) == 0 {
		return nil, fmt.Errorf("core: project %q has no blockers", p.name)
	}
	cand, err := block.UnionBlock(p.left, p.right, p.blockers...)
	if err != nil {
		return nil, err
	}
	p.candidates = cand
	return cand, nil
}

// Candidates returns the current candidate set (nil before Block).
func (p *Project) Candidates() *block.CandidateSet { return p.candidates }

// DebugBlocking ranks the likeliest matches NOT in the candidate set, for
// eyeballing whether blocking killed true matches. cols maps left columns
// to the right columns they are compared with.
func (p *Project) DebugBlocking(cols map[string]string, k int) ([]block.DebugPair, error) {
	if p.candidates == nil {
		return nil, fmt.Errorf("core: run Block before DebugBlocking")
	}
	return block.Debugger{Cols: cols, K: k}.Run(p.candidates)
}

// SamplePairs draws n unlabeled candidate pairs for labeling.
func (p *Project) SamplePairs(n int) ([]block.Pair, error) {
	if p.candidates == nil {
		return nil, fmt.Errorf("core: run Block before SamplePairs")
	}
	fresh := p.candidates.Filter(func(pr block.Pair) bool { return !p.labels.Has(pr) })
	if n > fresh.Len() {
		n = fresh.Len()
	}
	return fresh.Sample(n, p.rng)
}

// SetLabel records a human label for a pair.
func (p *Project) SetLabel(pair block.Pair, l label.Label) error {
	return p.labels.Set(pair, l)
}

// Labels returns the label store (callers may label through a
// label.Tool bound to it).
func (p *Project) Labels() *label.Store { return p.labels }

// GenerateFeatures builds the automatic feature set for the given column
// correspondence (left column → right column) in the given order.
func (p *Project) GenerateFeatures(corr map[string]string, order []string) error {
	fs, err := feature.Generate(p.left, p.right, corr, order)
	if err != nil {
		return err
	}
	p.features = fs
	return nil
}

// AddFeature appends a custom feature (the "patching" escape hatch).
func (p *Project) AddFeature(f feature.Feature) error {
	if p.features == nil {
		p.features = &feature.Set{}
	}
	return p.features.Add(f)
}

// Features returns the current feature set (nil before GenerateFeatures).
func (p *Project) Features() *feature.Set { return p.features }

// trainingData vectorizes the decided (Yes/No) labeled pairs, excluding
// any pair the sure rules already decide, and fits the imputer.
func (p *Project) trainingData() (*ml.Dataset, error) {
	if p.features == nil {
		return nil, fmt.Errorf("core: generate features before training")
	}
	decided, y := p.labels.Decided()
	var pairs []block.Pair
	var labels []int
	for i, pr := range decided {
		if p.sureRules.Len() > 0 &&
			p.sureRules.Judge(p.left.Row(pr.A), p.right.Row(pr.B)) == rules.Match {
			continue
		}
		pairs = append(pairs, pr)
		labels = append(labels, y[i])
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: no decided labels to train on")
	}
	x, err := p.features.Vectorize(p.left, p.right, pairs)
	if err != nil {
		return nil, err
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		return nil, err
	}
	if x, err = im.Transform(x); err != nil {
		return nil, err
	}
	p.imputer = im
	return ml.NewDataset(p.features.Names(), x, labels)
}

// SelectMatcher cross-validates the standard matcher suite on the labeled
// data and returns the ranked results; the first entry wins.
func (p *Project) SelectMatcher(folds int) ([]ml.CVResult, error) {
	ds, err := p.trainingData()
	if err != nil {
		return nil, err
	}
	return ml.SelectMatcher(ml.DefaultFactories(p.seed), ds, folds, p.seed)
}

// Train fits a fresh matcher of the named kind ("decision_tree",
// "random_forest", ...) on the labeled data and installs it as the
// project's matcher.
func (p *Project) Train(matcherName string) error {
	ds, err := p.trainingData()
	if err != nil {
		return err
	}
	for _, f := range ml.DefaultFactories(p.seed) {
		if f.Name == matcherName {
			m := f.New()
			if err := m.Fit(ds); err != nil {
				return err
			}
			p.matcher = m
			return nil
		}
	}
	return fmt.Errorf("core: unknown matcher %q", matcherName)
}

// TrainMatcher installs a caller-supplied fitted matcher instead.
func (p *Project) TrainMatcher(m ml.Matcher) { p.matcher = m }

// DebugLabels runs leave-one-out label debugging and returns the pairs
// whose labels disagree with the model's prediction (Section 8's
// label-debugging step).
func (p *Project) DebugLabels() ([]block.Pair, error) {
	ds, err := p.trainingData()
	if err != nil {
		return nil, err
	}
	decided, _ := p.labels.Decided()
	var kept []block.Pair
	for _, pr := range decided {
		if p.sureRules.Len() > 0 &&
			p.sureRules.Judge(p.left.Row(pr.A), p.right.Row(pr.B)) == rules.Match {
			continue
		}
		kept = append(kept, pr)
	}
	flagged, err := ml.LeaveOneOutDebug(ml.Factory{
		Name: "random_forest",
		New:  func() ml.Matcher { return &ml.RandomForest{Seed: p.seed} },
	}, ds)
	if err != nil {
		return nil, err
	}
	out := make([]block.Pair, 0, len(flagged))
	for _, m := range flagged {
		out = append(out, kept[m.Index])
	}
	return out, nil
}

// Match runs the full workflow — sure rules, blocking, the trained
// matcher, negative rules — and returns the result.
func (p *Project) Match() (*workflow.Result, error) {
	if len(p.blockers) == 0 {
		return nil, fmt.Errorf("core: project %q has no blockers", p.name)
	}
	w := &workflow.Workflow{
		Name:          p.name,
		SureRules:     p.sureRules,
		Blockers:      p.blockers,
		NegativeRules: p.negRules,
	}
	if p.matcher != nil {
		if p.features == nil || p.imputer == nil {
			return nil, fmt.Errorf("core: train before Match")
		}
		w.Features = p.features
		w.Imputer = p.imputer
		w.Matcher = p.matcher
	}
	return w.Run(p.left, p.right)
}

// EstimateAccuracy estimates precision and recall of a predicted match
// set from a labeled random sample of the candidate set (the Corleone
// procedure of Section 11).
func (p *Project) EstimateAccuracy(pred *block.CandidateSet, sample *label.Store) (estimate.Estimate, error) {
	return estimate.PrecisionRecall(pred, sample)
}

// FeatureImportance reports which features the trained matcher actually
// relies on (tree-based matchers only) — the debugging view that exposed
// the letter-case problem in Section 9.
func (p *Project) FeatureImportance() ([]ml.Importance, error) {
	switch m := p.matcher.(type) {
	case *ml.DecisionTree:
		return m.FeatureImportance()
	case *ml.RandomForest:
		return m.FeatureImportance()
	case nil:
		return nil, fmt.Errorf("core: train before FeatureImportance")
	default:
		return nil, fmt.Errorf("core: %s does not expose feature importance", m.Name())
	}
}

// PRCurve sweeps the trained matcher's decision threshold over the
// labeled data, returning the precision/recall operating points.
func (p *Project) PRCurve() ([]ml.PRPoint, error) {
	pm, ok := p.matcher.(ml.ProbabilisticMatcher)
	if !ok {
		return nil, fmt.Errorf("core: the trained matcher does not expose probabilities")
	}
	ds, err := p.trainingData()
	if err != nil {
		return nil, err
	}
	return ml.PRCurve(pm, ds)
}

// RuleCoverage reports, over the current candidate set, how many pairs
// each sure and negative rule decides (and how many no rule touches, key
// "") — the provenance view for rule-heavy workflows.
func (p *Project) RuleCoverage() (sure, negative map[string]int, err error) {
	if p.candidates == nil {
		return nil, nil, fmt.Errorf("core: run Block before RuleCoverage")
	}
	return p.sureRules.Coverage(p.candidates), p.negRules.Coverage(p.candidates), nil
}
