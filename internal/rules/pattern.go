// Package rules implements the hand-crafted rule layer of the case study:
// an award-number pattern language (Section 12's "##-XX-########-###",
// "YYYY-#####-#####", "WIS#####" patterns), the "comparable" test between
// identifiers, and positive (sure-match) and negative (veto) rules that
// combine with the learning-based matcher (Figures 9 and 10).
package rules

import (
	"strings"
	"unicode"
)

// Pattern is a shape for identifier strings:
//
//	'#'  matches any digit (or a literal '#', so that a generalized
//	     string always matches its own generalization)
//	'X'  matches any letter
//	'Y'  matches a digit; a run of four Ys must form a year 1900-2099
//	any other rune matches itself
//
// Patterns are the vocabulary the UMETRICS team used to define when two
// award/project numbers are "comparable" (Section 12).
type Pattern string

// Matches reports whether s has the shape of p.
func (p Pattern) Matches(s string) bool {
	pr := []rune(string(p))
	sr := []rune(s)
	if len(pr) != len(sr) {
		return false
	}
	for i := 0; i < len(pr); i++ {
		switch pr[i] {
		case '#':
			if !unicode.IsDigit(sr[i]) && sr[i] != '#' {
				return false
			}
		case 'X':
			if !unicode.IsLetter(sr[i]) {
				return false
			}
		case 'Y':
			if !unicode.IsDigit(sr[i]) {
				return false
			}
		default:
			if pr[i] != sr[i] {
				return false
			}
		}
	}
	// Year constraint: every maximal run of 4+ Y maps to digits that must
	// start with 19 or 20.
	for i := 0; i < len(pr); {
		if pr[i] != 'Y' {
			i++
			continue
		}
		j := i
		for j < len(pr) && pr[j] == 'Y' {
			j++
		}
		if j-i >= 4 {
			prefix := string(sr[i : i+2])
			if prefix != "19" && prefix != "20" {
				return false
			}
		}
		i = j
	}
	return true
}

// Generalize converts a concrete identifier into a pattern: digits become
// '#', letters become 'X', and 4-digit runs that look like years (19xx or
// 20xx at a run boundary) become "YYYY". Other runes are kept literally.
// It is the pattern-discovery helper used when profiling identifier
// columns.
func Generalize(s string) Pattern {
	sr := []rune(s)
	out := make([]rune, 0, len(sr))
	for i := 0; i < len(sr); {
		if unicode.IsDigit(sr[i]) {
			j := i
			for j < len(sr) && unicode.IsDigit(sr[j]) {
				j++
			}
			run := j - i
			if run == 4 && (strings.HasPrefix(string(sr[i:j]), "19") || strings.HasPrefix(string(sr[i:j]), "20")) {
				out = append(out, 'Y', 'Y', 'Y', 'Y')
			} else {
				for k := 0; k < run; k++ {
					out = append(out, '#')
				}
			}
			i = j
			continue
		}
		if unicode.IsLetter(sr[i]) {
			out = append(out, 'X')
		} else {
			out = append(out, sr[i])
		}
		i++
	}
	return Pattern(string(out))
}

// Set is a list of known identifier patterns.
type Set []Pattern

// Find returns the first pattern in the set matching s, and whether one
// was found.
func (ps Set) Find(s string) (Pattern, bool) {
	for _, p := range ps {
		if p.Matches(s) {
			return p, true
		}
	}
	return "", false
}

// Comparable reports whether a and b match the same known pattern — the
// Section 12 definition: identifiers are compared by the negative rule
// "only if they have the same pattern".
func (ps Set) Comparable(a, b string) bool {
	pa, ok := ps.Find(a)
	if !ok {
		return false
	}
	pb, ok := ps.Find(b)
	if !ok {
		return false
	}
	return pa == pb
}
