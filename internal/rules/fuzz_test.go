package rules

import "testing"

// FuzzPatternMatches checks the pattern matcher never panics and that
// Generalize's output always matches its input.
func FuzzPatternMatches(f *testing.F) {
	f.Add("YYYY-#####-#####", "2008-34103-19449")
	f.Add("XXX#####", "WIS01040")
	f.Add("##-XX-#########-###", "03-CS-112313000-031")
	f.Add("", "")
	f.Add("YYYY", "1999")
	f.Fuzz(func(t *testing.T, pattern, s string) {
		_ = Pattern(pattern).Matches(s) // must not panic
		g := Generalize(s)
		if !g.Matches(s) {
			t.Fatalf("Generalize(%q) = %q does not match its input", s, g)
		}
	})
}
