package rules

import (
	"emgo/internal/block"
	"emgo/internal/parallel"
	"emgo/internal/table"
)

// Engine evaluates an ordered rule list; the first rule with an opinion
// decides a pair.
type Engine struct {
	rules []Rule
}

// NewEngine builds an engine over the given rules (evaluated in order).
func NewEngine(rs ...Rule) *Engine {
	return &Engine{rules: rs}
}

// Add appends a rule.
func (e *Engine) Add(r Rule) { e.rules = append(e.rules, r) }

// Len returns the rule count.
func (e *Engine) Len() int { return len(e.rules) }

// Judge returns the engine's verdict for one row pair.
func (e *Engine) Judge(left, right table.Row) Verdict {
	for _, r := range e.rules {
		if v := r.Apply(left, right); v != NoOpinion {
			return v
		}
	}
	return NoOpinion
}

// JudgeWithRule is Judge but also reports which rule fired ("" when none).
func (e *Engine) JudgeWithRule(left, right table.Row) (Verdict, string) {
	for _, r := range e.rules {
		if v := r.Apply(left, right); v != NoOpinion {
			return v, r.Name()
		}
	}
	return NoOpinion, ""
}

// SureMatches scans the full Cartesian product of left × right and returns
// the pairs the engine declares Match — how the Figure 9 workflow pulls
// sure matches directly from the input tables, bypassing blocking. The
// scan parallelizes over left rows; rules must therefore be pure
// functions of the row pair (every rule in this package is).
func (e *Engine) SureMatches(left, right *table.Table) *block.CandidateSet {
	perRow := make([][]int, left.Len())
	parallel.For(left.Len(), func(i int) {
		var hits []int
		for j := 0; j < right.Len(); j++ {
			if e.Judge(left.Row(i), right.Row(j)) == Match {
				hits = append(hits, j)
			}
		}
		perRow[i] = hits
	})
	out := block.NewCandidateSet(left, right)
	for i, hits := range perRow {
		for _, j := range hits {
			out.Add(block.Pair{A: i, B: j})
		}
	}
	return out
}

// FilterMatches applies the engine's negative rules to a predicted match
// set: pairs the engine judges NonMatch are removed (the Figure 10 step
// that flips learner false positives). It returns the surviving set and
// the number vetoed.
func (e *Engine) FilterMatches(pred *block.CandidateSet) (*block.CandidateSet, int) {
	vetoed := 0
	out := pred.Filter(func(p block.Pair) bool {
		if e.Judge(pred.Left.Row(p.A), pred.Right.Row(p.B)) == NonMatch {
			vetoed++
			return false
		}
		return true
	})
	return out, vetoed
}

// Coverage counts, for every pair in the candidate set, which rule fired
// (by name) and how often, plus how many pairs no rule decided
// (map key "") — the per-rule provenance view a complex rule-plus-learner
// workflow needs when the teams debate what each rule contributes.
func (e *Engine) Coverage(cand *block.CandidateSet) map[string]int {
	out := make(map[string]int, len(e.rules)+1)
	for _, p := range cand.Pairs() {
		_, name := e.JudgeWithRule(cand.Left.Row(p.A), cand.Right.Row(p.B))
		out[name]++
	}
	return out
}

// MarkPairs judges every pair in the candidate set and returns the pairs
// per verdict (NoOpinion pairs are those the learner must decide).
func (e *Engine) MarkPairs(cand *block.CandidateSet) (match, nonMatch, undecided *block.CandidateSet) {
	match = block.NewCandidateSet(cand.Left, cand.Right)
	nonMatch = block.NewCandidateSet(cand.Left, cand.Right)
	undecided = block.NewCandidateSet(cand.Left, cand.Right)
	for _, p := range cand.Pairs() {
		switch e.Judge(cand.Left.Row(p.A), cand.Right.Row(p.B)) {
		case Match:
			match.Add(p)
		case NonMatch:
			nonMatch.Add(p)
		default:
			undecided.Add(p)
		}
	}
	return match, nonMatch, undecided
}
