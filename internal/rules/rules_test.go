package rules

import (
	"strings"
	"testing"
	"testing/quick"

	"emgo/internal/block"
	"emgo/internal/table"
)

func TestPatternMatches(t *testing.T) {
	cases := []struct {
		p    Pattern
		s    string
		want bool
	}{
		{"##-XX-#########-###", "03-CS-112313000-031", true},
		{"YYYY-#####-#####", "2001-34101-10526", true},
		{"YYYY-#####-#####", "2008-34103-19449", true},
		{"YYYY-#####-#####", "0301-34101-10526", false}, // not a year
		{"WIS#####", "WIS01560", true},
		{"WIS#####", "WIS04509", true},
		{"WIS#####", "WIX04509", false}, // literal mismatch
		{"WIS#####", "WIS0456", false},  // length mismatch
		{"###", "12a", false},
		{"XXX", "abc", true},
		{"XXX", "ab1", false},
		{"", "", true},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.s); got != c.want {
			t.Errorf("Pattern(%q).Matches(%q) = %v want %v", c.p, c.s, got, c.want)
		}
	}
}

func TestGeneralize(t *testing.T) {
	cases := []struct {
		in   string
		want Pattern
	}{
		{"03-CS-112313000-031", "##-XX-#########-###"},
		{"2001-34101-10526", "YYYY-#####-#####"},
		{"WIS01560", "XXX#####"},
		{"abc", "XXX"},
		{"", ""},
		{"1985", "YYYY"},
		{"3085", "####"}, // 4 digits but not 19xx/20xx
	}
	for _, c := range cases {
		if got := Generalize(c.in); got != c.want {
			t.Errorf("Generalize(%q) = %q want %q", c.in, got, c.want)
		}
	}
}

// Property: a string always matches its own generalization.
func TestGeneralizeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		return Generalize(s).Matches(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSetFindAndComparable(t *testing.T) {
	ps := Set{"YYYY-#####-#####", "XXX#####", "##-XX-#########-###"}
	if p, ok := ps.Find("2008-34103-19449"); !ok || p != "YYYY-#####-#####" {
		t.Fatalf("Find: %q %v", p, ok)
	}
	if _, ok := ps.Find("???"); ok {
		t.Fatal("unknown shape should not be found")
	}
	// The Section 12 examples.
	if ps.Comparable("03-CS-112313000-031", "2001-34101-10526") {
		t.Fatal("different patterns must not be comparable")
	}
	if !ps.Comparable("WIS01560", "WIS04509") {
		t.Fatal("same pattern must be comparable")
	}
	if ps.Comparable("WIS01560", "unknown-shape") {
		t.Fatal("unknown shape is never comparable")
	}
}

func grantRows(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	left := table.New("U", table.MustSchema(
		table.Field{Name: "AwardNumber", Kind: table.String},
		table.Field{Name: "Title", Kind: table.String},
	))
	left.MustAppend(table.Row{table.S("10.200 2008-34103-19449"), table.S("corn")})
	left.MustAppend(table.Row{table.S("10.203 WIS01040"), table.S("dodder")})
	left.MustAppend(table.Row{table.Null(table.String), table.S("lab")})

	right := table.New("S", table.MustSchema(
		table.Field{Name: "AwardNumber", Kind: table.String},
		table.Field{Name: "Title", Kind: table.String},
	))
	right.MustAppend(table.Row{table.S("2008-34103-19449"), table.S("corn!")})
	right.MustAppend(table.Row{table.S("WIS04509"), table.S("dodder2")})
	right.MustAppend(table.Row{table.Null(table.String), table.S("lab stuff")})
	return left, right
}

func suffix(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[i+1:]
	}
	return ""
}

func TestEqualRuleM1(t *testing.T) {
	l, r := grantRows(t)
	m1, err := NewEqual("M1", l, "AwardNumber", suffix, r, "AwardNumber", nil, Match)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Name() != "M1" {
		t.Fatal("name")
	}
	if v := m1.Apply(l.Row(0), r.Row(0)); v != Match {
		t.Fatalf("equal suffix should Match, got %v", v)
	}
	if v := m1.Apply(l.Row(1), r.Row(1)); v != NoOpinion {
		t.Fatalf("different numbers: %v", v)
	}
	if v := m1.Apply(l.Row(2), r.Row(0)); v != NoOpinion {
		t.Fatalf("null side should withhold opinion: %v", v)
	}
	if v := m1.Apply(l.Row(0), r.Row(2)); v != NoOpinion {
		t.Fatalf("null right should withhold opinion: %v", v)
	}
}

func TestNewEqualErrors(t *testing.T) {
	l, r := grantRows(t)
	if _, err := NewEqual("x", l, "Nope", nil, r, "AwardNumber", nil, Match); err == nil {
		t.Fatal("bad left column should error")
	}
	if _, err := NewEqual("x", l, "AwardNumber", nil, r, "Nope", nil, Match); err == nil {
		t.Fatal("bad right column should error")
	}
	if _, err := NewEqual("x", l, "AwardNumber", nil, r, "AwardNumber", nil, NoOpinion); err == nil {
		t.Fatal("NoOpinion verdict should error")
	}
}

func TestComparableMismatchRule(t *testing.T) {
	l, r := grantRows(t)
	ps := Set{"YYYY-#####-#####", "XXX#####"}
	neg, err := NewComparableMismatch("neg", l, "AwardNumber", suffix, r, "AwardNumber", nil, ps)
	if err != nil {
		t.Fatal(err)
	}
	// WIS01040 vs WIS04509: same pattern, different values -> NonMatch.
	if v := neg.Apply(l.Row(1), r.Row(1)); v != NonMatch {
		t.Fatalf("comparable mismatch should veto, got %v", v)
	}
	// Equal values -> NoOpinion (the positive rule handles equality).
	if v := neg.Apply(l.Row(0), r.Row(0)); v != NoOpinion {
		t.Fatalf("equal values: %v", v)
	}
	// Null -> NoOpinion.
	if v := neg.Apply(l.Row(2), r.Row(1)); v != NoOpinion {
		t.Fatalf("null: %v", v)
	}
	if _, err := NewComparableMismatch("x", l, "AwardNumber", nil, r, "AwardNumber", nil, nil); err == nil {
		t.Fatal("empty pattern set should error")
	}
	if _, err := NewComparableMismatch("x", l, "Nope", nil, r, "AwardNumber", nil, ps); err == nil {
		t.Fatal("bad column should error")
	}
	if _, err := NewComparableMismatch("x", l, "AwardNumber", nil, r, "Nope", nil, ps); err == nil {
		t.Fatal("bad right column should error")
	}
}

func TestFuncRule(t *testing.T) {
	f := Func{Label: "always", Verdict: Match, Fire: func(a, b table.Row) bool { return true }}
	if f.Name() != "always" || (Func{}).Name() != "func" {
		t.Fatal("names")
	}
	l, r := grantRows(t)
	if f.Apply(l.Row(0), r.Row(0)) != Match {
		t.Fatal("func rule should fire")
	}
	if (Func{Verdict: Match}).Apply(l.Row(0), r.Row(0)) != NoOpinion {
		t.Fatal("nil Fire should withhold opinion")
	}
}

func TestVerdictString(t *testing.T) {
	if Match.String() != "match" || NonMatch.String() != "non-match" || NoOpinion.String() != "no-opinion" {
		t.Fatal("verdict strings")
	}
}

func TestEngineOrderAndJudge(t *testing.T) {
	l, r := grantRows(t)
	m1, _ := NewEqual("M1", l, "AwardNumber", suffix, r, "AwardNumber", nil, Match)
	veto := Func{Label: "veto-all", Verdict: NonMatch, Fire: func(a, b table.Row) bool { return true }}

	// First-opinion-wins: M1 before veto lets the sure match through.
	e := NewEngine(m1, veto)
	if e.Len() != 2 {
		t.Fatal("len")
	}
	if v, name := e.JudgeWithRule(l.Row(0), r.Row(0)); v != Match || name != "M1" {
		t.Fatalf("judge: %v %q", v, name)
	}
	if v, name := e.JudgeWithRule(l.Row(1), r.Row(1)); v != NonMatch || name != "veto-all" {
		t.Fatalf("judge: %v %q", v, name)
	}
	empty := NewEngine()
	if v, name := empty.JudgeWithRule(l.Row(0), r.Row(0)); v != NoOpinion || name != "" {
		t.Fatal("empty engine should have no opinion")
	}
}

func TestEngineSureMatches(t *testing.T) {
	l, r := grantRows(t)
	m1, _ := NewEqual("M1", l, "AwardNumber", suffix, r, "AwardNumber", nil, Match)
	e := NewEngine(m1)
	sure := e.SureMatches(l, r)
	if sure.Len() != 1 || !sure.Contains(block.Pair{A: 0, B: 0}) {
		t.Fatalf("sure matches: %v", sure.Pairs())
	}
}

func TestEngineFilterMatches(t *testing.T) {
	l, r := grantRows(t)
	ps := Set{"XXX#####"}
	neg, _ := NewComparableMismatch("neg", l, "AwardNumber", suffix, r, "AwardNumber", nil, ps)
	e := NewEngine(neg)

	pred := block.NewCandidateSet(l, r)
	pred.Add(block.Pair{A: 0, B: 0}) // survives (patterns differ)
	pred.Add(block.Pair{A: 1, B: 1}) // vetoed (WIS vs WIS, different)
	out, vetoed := e.FilterMatches(pred)
	if vetoed != 1 || out.Len() != 1 || !out.Contains(block.Pair{A: 0, B: 0}) {
		t.Fatalf("filter: vetoed=%d out=%v", vetoed, out.Pairs())
	}
}

func TestEngineMarkPairs(t *testing.T) {
	l, r := grantRows(t)
	m1, _ := NewEqual("M1", l, "AwardNumber", suffix, r, "AwardNumber", nil, Match)
	ps := Set{"XXX#####"}
	neg, _ := NewComparableMismatch("neg", l, "AwardNumber", suffix, r, "AwardNumber", nil, ps)
	e := NewEngine(m1, neg)

	cand := block.NewCandidateSet(l, r)
	cand.Add(block.Pair{A: 0, B: 0}) // match via M1
	cand.Add(block.Pair{A: 1, B: 1}) // non-match via neg
	cand.Add(block.Pair{A: 2, B: 2}) // undecided
	match, non, und := e.MarkPairs(cand)
	if match.Len() != 1 || non.Len() != 1 || und.Len() != 1 {
		t.Fatalf("mark: %d/%d/%d", match.Len(), non.Len(), und.Len())
	}
}
