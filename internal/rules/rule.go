package rules

import (
	"fmt"

	"emgo/internal/table"
)

// Verdict is a rule's opinion about a record pair.
type Verdict int

const (
	// NoOpinion means the rule does not fire for this pair.
	NoOpinion Verdict = iota
	// Match declares the pair a sure match (positive rule).
	Match
	// NonMatch vetoes the pair (negative rule).
	NonMatch
)

// String returns a readable verdict name.
func (v Verdict) String() string {
	switch v {
	case Match:
		return "match"
	case NonMatch:
		return "non-match"
	default:
		return "no-opinion"
	}
}

// Rule inspects a record pair and renders a verdict.
type Rule interface {
	// Apply judges one pair of rows (from the tables the rule was bound
	// to at construction).
	Apply(left, right table.Row) Verdict
	// Name identifies the rule for provenance.
	Name() string
}

// equalRule fires a verdict when the (transformed) key texts of both sides
// are non-empty and equal.
type equalRule struct {
	name           string
	lj, rj         int
	leftTransform  func(string) string
	rightTransform func(string) string
	verdict        Verdict
}

// NewEqual binds an equality rule to the given tables and columns. A nil
// transform is the identity; a transform returning "" (or a null cell)
// withholds opinion. verdict is rendered when the keys are equal —
// Match gives the paper's positive rules M1 ("second part of
// UniqueAwardNumber equals Award Number") and the later award-number =
// project-number rule.
func NewEqual(name string, left *table.Table, leftCol string, lt func(string) string,
	right *table.Table, rightCol string, rt func(string) string, verdict Verdict) (Rule, error) {
	lj, err := left.Col(leftCol)
	if err != nil {
		return nil, err
	}
	rj, err := right.Col(rightCol)
	if err != nil {
		return nil, err
	}
	if verdict == NoOpinion {
		return nil, fmt.Errorf("rules: equality rule %q needs a verdict", name)
	}
	return &equalRule{name: name, lj: lj, rj: rj, leftTransform: lt, rightTransform: rt, verdict: verdict}, nil
}

func (r *equalRule) Name() string { return r.name }

func (r *equalRule) Apply(left, right table.Row) Verdict {
	a := keyText(left[r.lj], r.leftTransform)
	b := keyText(right[r.rj], r.rightTransform)
	if a == "" || b == "" {
		return NoOpinion
	}
	if a == b {
		return r.verdict
	}
	return NoOpinion
}

// comparableMismatchRule implements the Section 12 negative rule: when the
// two identifiers are "comparable" (match the same known pattern) and are
// NOT equal, the pair is a non-match.
type comparableMismatchRule struct {
	name           string
	lj, rj         int
	leftTransform  func(string) string
	rightTransform func(string) string
	patterns       Set
}

// NewComparableMismatch builds the negative pattern rule over the given
// columns and known pattern set.
func NewComparableMismatch(name string, left *table.Table, leftCol string, lt func(string) string,
	right *table.Table, rightCol string, rt func(string) string, patterns Set) (Rule, error) {
	lj, err := left.Col(leftCol)
	if err != nil {
		return nil, err
	}
	rj, err := right.Col(rightCol)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("rules: comparable-mismatch rule %q needs patterns", name)
	}
	return &comparableMismatchRule{name: name, lj: lj, rj: rj, leftTransform: lt, rightTransform: rt, patterns: patterns}, nil
}

func (r *comparableMismatchRule) Name() string { return r.name }

func (r *comparableMismatchRule) Apply(left, right table.Row) Verdict {
	a := keyText(left[r.lj], r.leftTransform)
	b := keyText(right[r.rj], r.rightTransform)
	if a == "" || b == "" {
		return NoOpinion
	}
	if a != b && r.patterns.Comparable(a, b) {
		return NonMatch
	}
	return NoOpinion
}

// Func wraps an arbitrary predicate as a rule — the scripting escape hatch.
type Func struct {
	Label   string
	Verdict Verdict
	// Fire reports whether the rule's verdict applies to the pair.
	Fire func(left, right table.Row) bool
}

// Name implements Rule.
func (r Func) Name() string {
	if r.Label != "" {
		return r.Label
	}
	return "func"
}

// Apply implements Rule.
func (r Func) Apply(left, right table.Row) Verdict {
	if r.Fire != nil && r.Fire(left, right) {
		return r.Verdict
	}
	return NoOpinion
}

func keyText(v table.Value, transform func(string) string) string {
	if v.IsNull() {
		return ""
	}
	s := v.Str()
	if transform != nil {
		s = transform(s)
	}
	return s
}
