package rules_test

import (
	"fmt"

	"emgo/internal/rules"
)

func ExampleGeneralize() {
	fmt.Println(rules.Generalize("2008-34103-19449"))
	fmt.Println(rules.Generalize("WIS01040"))
	fmt.Println(rules.Generalize("03-CS-112313000-031"))
	// Output:
	// YYYY-#####-#####
	// XXX#####
	// ##-XX-#########-###
}

func ExamplePattern_Matches() {
	p := rules.Pattern("YYYY-#####-#####")
	fmt.Println(p.Matches("2008-34103-19449"))
	fmt.Println(p.Matches("0301-34103-19449")) // not a plausible year
	// Output:
	// true
	// false
}

func ExampleSet_Comparable() {
	// The Section 12 "comparable" test: identifiers are compared only
	// when they share a known pattern.
	patterns := rules.Set{"YYYY-#####-#####", "XXX#####"}
	fmt.Println(patterns.Comparable("WIS01560", "WIS04509"))
	fmt.Println(patterns.Comparable("WIS01560", "2001-34101-10526"))
	// Output:
	// true
	// false
}
