package rules

import (
	"testing"

	"emgo/internal/block"
)

func TestEngineCoverage(t *testing.T) {
	l, r := grantRows(t)
	m1, err := NewEqual("M1", l, "AwardNumber", suffix, r, "AwardNumber", nil, Match)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := NewComparableMismatch("neg", l, "AwardNumber", suffix, r, "AwardNumber", nil, Set{"XXX#####"})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m1, neg)

	cand := block.NewCandidateSet(l, r)
	cand.Add(block.Pair{A: 0, B: 0}) // M1 fires
	cand.Add(block.Pair{A: 1, B: 1}) // neg fires (WIS vs WIS, different)
	cand.Add(block.Pair{A: 2, B: 2}) // nothing fires

	cov := e.Coverage(cand)
	if cov["M1"] != 1 || cov["neg"] != 1 || cov[""] != 1 {
		t.Fatalf("coverage = %v", cov)
	}
	// First-opinion-wins: a pair both rules could decide counts only for
	// the first rule.
	total := 0
	for _, n := range cov {
		total += n
	}
	if total != cand.Len() {
		t.Fatalf("coverage total %d != candidates %d", total, cand.Len())
	}
}

func TestEngineCoverageEmpty(t *testing.T) {
	l, r := grantRows(t)
	e := NewEngine()
	cand := block.NewCandidateSet(l, r)
	cand.Add(block.Pair{A: 0, B: 0})
	cov := e.Coverage(cand)
	if cov[""] != 1 || len(cov) != 1 {
		t.Fatalf("empty engine coverage = %v", cov)
	}
}
