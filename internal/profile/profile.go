// Package profile computes per-column statistics for exploring and
// understanding tables — the role pandas-profiling and ad-hoc scripts play
// in Section 4 of the case study ("number of unique values, number of
// missing values, mean, median, etc., for each column").
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"emgo/internal/table"
)

// TopValue is one frequently occurring value and its count.
type TopValue struct {
	Value string
	Count int
}

// Column summarizes one column.
type Column struct {
	Name    string
	Kind    table.Kind
	Rows    int
	Missing int
	Unique  int

	// Numeric stats; valid only when Numeric is true.
	Numeric bool
	Mean    float64
	Median  float64
	Min     float64
	Max     float64
	StdDev  float64

	// String stats; valid only for string columns with data.
	MinLen int
	MaxLen int
	AvgLen float64

	Top []TopValue
}

// MissingFrac returns the fraction of rows that are null.
func (c *Column) MissingFrac() float64 {
	if c.Rows == 0 {
		return 0
	}
	return float64(c.Missing) / float64(c.Rows)
}

// Report is a profile of a whole table.
type Report struct {
	Table   string
	Rows    int
	Cols    int
	Columns []Column
}

// Column returns the profile of the named column, or nil.
func (r *Report) Column(name string) *Column {
	for i := range r.Columns {
		if r.Columns[i].Name == name {
			return &r.Columns[i]
		}
	}
	return nil
}

// topK is how many frequent values each column profile records.
const topK = 5

// Profile computes a report for t.
func Profile(t *table.Table) *Report {
	r := &Report{Table: t.Name(), Rows: t.Len(), Cols: t.Schema().Len()}
	for j := 0; j < t.Schema().Len(); j++ {
		f := t.Schema().Field(j)
		r.Columns = append(r.Columns, profileColumn(t, j, f))
	}
	return r
}

func profileColumn(t *table.Table, j int, f table.Field) Column {
	c := Column{Name: f.Name, Kind: f.Kind, Rows: t.Len()}
	counts := make(map[string]int)
	var nums []float64
	var totalLen int
	c.MinLen = math.MaxInt

	for i := 0; i < t.Len(); i++ {
		v := t.Row(i)[j]
		if v.IsNull() {
			c.Missing++
			continue
		}
		s := v.Str()
		counts[s]++
		switch f.Kind {
		case table.Int, table.Float:
			nums = append(nums, v.Float())
		case table.Date:
			nums = append(nums, float64(v.Date().Year()))
		case table.String:
			n := len(s)
			totalLen += n
			if n < c.MinLen {
				c.MinLen = n
			}
			if n > c.MaxLen {
				c.MaxLen = n
			}
		}
	}
	c.Unique = len(counts)
	present := c.Rows - c.Missing
	if f.Kind == table.String {
		if present > 0 {
			c.AvgLen = float64(totalLen) / float64(present)
		} else {
			c.MinLen = 0
		}
	} else {
		c.MinLen = 0
	}
	if len(nums) > 0 {
		c.Numeric = true
		c.Mean, c.StdDev = meanStd(nums)
		c.Median = median(nums)
		c.Min, c.Max = minMax(nums)
	}
	c.Top = topValues(counts, topK)
	return c
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - mean
			ss += d * d
		}
		std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return mean, std
}

func median(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func topValues(counts map[string]int, k int) []TopValue {
	out := make([]TopValue, 0, len(counts))
	for v, n := range counts {
		out = append(out, TopValue{Value: v, Count: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ValueOverlap returns the number of distinct non-null values shared by
// column colA of a and colB of b, plus each side's distinct count. It is
// the Section 6 step-3 check ("we checked if the attributes with similar
// names have similar values ... checked for any overlap of values").
func ValueOverlap(a *table.Table, colA string, b *table.Table, colB string) (shared, uniqueA, uniqueB int, err error) {
	ja, err := a.Col(colA)
	if err != nil {
		return 0, 0, 0, err
	}
	jb, err := b.Col(colB)
	if err != nil {
		return 0, 0, 0, err
	}
	setA := make(map[string]struct{})
	for i := 0; i < a.Len(); i++ {
		if v := a.Row(i)[ja]; !v.IsNull() {
			setA[v.Str()] = struct{}{}
		}
	}
	setB := make(map[string]struct{})
	for i := 0; i < b.Len(); i++ {
		if v := b.Row(i)[jb]; !v.IsNull() {
			setB[v.Str()] = struct{}{}
		}
	}
	for v := range setA {
		if _, ok := setB[v]; ok {
			shared++
		}
	}
	return shared, len(setA), len(setB), nil
}

// PatternCount is one identifier shape and how many values exhibit it.
type PatternCount struct {
	Pattern string
	Count   int
}

// Patterns profiles the shapes of an identifier column: every non-null
// value is generalized (digits → '#', letters → 'X', 4-digit years →
// "YYYY") and the k most frequent shapes are returned — the analysis
// behind the UMETRICS team's "list of possible patterns for the award
// numbers" (Section 12).
func Patterns(t *table.Table, col string, k int, generalize func(string) string) ([]PatternCount, error) {
	j, err := t.Col(col)
	if err != nil {
		return nil, err
	}
	if generalize == nil {
		return nil, fmt.Errorf("profile: Patterns needs a generalize function")
	}
	counts := make(map[string]int)
	for i := 0; i < t.Len(); i++ {
		v := t.Row(i)[j]
		if v.IsNull() {
			continue
		}
		counts[generalize(v.Str())]++
	}
	out := make([]PatternCount, 0, len(counts))
	for p, n := range counts {
		out = append(out, PatternCount{Pattern: p, Count: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Pattern < out[b].Pattern
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// String renders the report as a text table, one line per column.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %s: %d rows x %d cols\n", r.Table, r.Rows, r.Cols)
	fmt.Fprintf(&b, "%-32s %-7s %8s %8s %10s %10s\n", "column", "kind", "missing", "unique", "mean", "median")
	for _, c := range r.Columns {
		mean, med := "-", "-"
		if c.Numeric {
			mean = fmt.Sprintf("%.2f", c.Mean)
			med = fmt.Sprintf("%.2f", c.Median)
		}
		fmt.Fprintf(&b, "%-32s %-7s %8d %8d %10s %10s\n", c.Name, c.Kind, c.Missing, c.Unique, mean, med)
	}
	return b.String()
}
