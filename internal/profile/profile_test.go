package profile

import (
	"math"
	"strings"
	"testing"

	"emgo/internal/table"
)

func buildTable(t *testing.T) *table.Table {
	t.Helper()
	schema := table.MustSchema(
		table.Field{Name: "Title", Kind: table.String},
		table.Field{Name: "Amount", Kind: table.Float},
		table.Field{Name: "Year", Kind: table.Int},
	)
	tab := table.New("grants", schema)
	tab.MustAppend(table.Row{table.S("corn"), table.F(10), table.I(2008)})
	tab.MustAppend(table.Row{table.S("swamp dodder"), table.F(20), table.I(2009)})
	tab.MustAppend(table.Row{table.S("corn"), table.Null(table.Float), table.I(2008)})
	tab.MustAppend(table.Row{table.Null(table.String), table.F(30), table.Null(table.Int)})
	return tab
}

func TestProfileBasics(t *testing.T) {
	r := Profile(buildTable(t))
	if r.Rows != 4 || r.Cols != 3 {
		t.Fatalf("report dims = %dx%d", r.Rows, r.Cols)
	}
	title := r.Column("Title")
	if title == nil {
		t.Fatal("Title column missing")
	}
	if title.Missing != 1 || title.Unique != 2 {
		t.Fatalf("Title missing=%d unique=%d", title.Missing, title.Unique)
	}
	if title.MissingFrac() != 0.25 {
		t.Fatalf("missing frac = %v", title.MissingFrac())
	}
	if title.MinLen != 4 || title.MaxLen != 12 {
		t.Fatalf("len stats = %d..%d", title.MinLen, title.MaxLen)
	}
	if math.Abs(title.AvgLen-(4+12+4)/3.0) > 1e-9 {
		t.Fatalf("avg len = %v", title.AvgLen)
	}
	if r.Column("Nope") != nil {
		t.Fatal("unknown column should be nil")
	}
}

func TestProfileNumericStats(t *testing.T) {
	r := Profile(buildTable(t))
	amt := r.Column("Amount")
	if !amt.Numeric {
		t.Fatal("Amount should be numeric")
	}
	if amt.Mean != 20 || amt.Median != 20 || amt.Min != 10 || amt.Max != 30 {
		t.Fatalf("numeric stats: %+v", amt)
	}
	if math.Abs(amt.StdDev-10) > 1e-9 {
		t.Fatalf("stddev = %v", amt.StdDev)
	}
	year := r.Column("Year")
	if year.Missing != 1 || year.Unique != 2 {
		t.Fatalf("year: %+v", year)
	}
	// Even-count median averages the middle pair.
	if year.Median != 2008 {
		t.Fatalf("year median = %v", year.Median)
	}
}

func TestTopValues(t *testing.T) {
	r := Profile(buildTable(t))
	title := r.Column("Title")
	if len(title.Top) == 0 || title.Top[0].Value != "corn" || title.Top[0].Count != 2 {
		t.Fatalf("top = %+v", title.Top)
	}
}

func TestProfileEmptyTable(t *testing.T) {
	tab := table.New("empty", table.MustSchema(table.Field{Name: "X", Kind: table.String}))
	r := Profile(tab)
	c := r.Column("X")
	if c.Rows != 0 || c.Missing != 0 || c.Unique != 0 || c.Numeric {
		t.Fatalf("empty col profile: %+v", c)
	}
	if c.MissingFrac() != 0 {
		t.Fatal("empty missing frac should be 0")
	}
}

func TestProfileDateColumn(t *testing.T) {
	schema := table.MustSchema(table.Field{Name: "D", Kind: table.Date})
	tab := table.New("d", schema)
	d1, _ := table.ParseDate("2008-10-01")
	d2, _ := table.ParseDate("2010-01-15")
	tab.MustAppend(table.Row{table.D(d1)})
	tab.MustAppend(table.Row{table.D(d2)})
	r := Profile(tab)
	c := r.Column("D")
	if !c.Numeric || c.Min != 2008 || c.Max != 2010 {
		t.Fatalf("date profile should use years: %+v", c)
	}
}

func TestValueOverlap(t *testing.T) {
	a := table.New("a", table.MustSchema(table.Field{Name: "OrgName", Kind: table.String}))
	a.MustAppend(table.Row{table.S("ACME")})
	a.MustAppend(table.Row{table.S("SAES")})
	a.MustAppend(table.Row{table.Null(table.String)})
	b := table.New("b", table.MustSchema(table.Field{Name: "Recipient", Kind: table.String}))
	b.MustAppend(table.Row{table.S("SAES")})
	b.MustAppend(table.Row{table.S("UWM")})

	shared, ua, ub, err := ValueOverlap(a, "OrgName", b, "Recipient")
	if err != nil {
		t.Fatal(err)
	}
	if shared != 1 || ua != 2 || ub != 2 {
		t.Fatalf("overlap = %d/%d/%d", shared, ua, ub)
	}
	if _, _, _, err := ValueOverlap(a, "Nope", b, "Recipient"); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, _, _, err := ValueOverlap(a, "OrgName", b, "Nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestReportString(t *testing.T) {
	s := Profile(buildTable(t)).String()
	if !strings.Contains(s, "grants") || !strings.Contains(s, "Title") || !strings.Contains(s, "Amount") {
		t.Fatalf("report rendering: %s", s)
	}
}
