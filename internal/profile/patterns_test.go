package profile

import (
	"testing"

	"emgo/internal/rules"
	"emgo/internal/table"
)

func TestPatterns(t *testing.T) {
	tab := table.New("ids", table.MustSchema(table.Field{Name: "Num", Kind: table.String}))
	for _, s := range []string{
		"2008-34103-19449",
		"2001-34101-10526",
		"WIS01040",
		"WIS04509",
		"WIS01560",
		"03-CS-112313000-031",
	} {
		tab.MustAppend(table.Row{table.S(s)})
	}
	tab.MustAppend(table.Row{table.Null(table.String)})

	gen := func(s string) string { return string(rules.Generalize(s)) }
	got, err := Patterns(tab, "Num", 2, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("top-k not applied: %+v", got)
	}
	if got[0].Pattern != "XXX#####" || got[0].Count != 3 {
		t.Fatalf("top pattern = %+v", got[0])
	}
	if got[1].Pattern != "YYYY-#####-#####" || got[1].Count != 2 {
		t.Fatalf("second pattern = %+v", got[1])
	}

	all, err := Patterns(tab, "Num", 0, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("all patterns = %+v", all)
	}
	if _, err := Patterns(tab, "Nope", 5, gen); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := Patterns(tab, "Num", 5, nil); err == nil {
		t.Fatal("nil generalize should error")
	}
}
