// Package label implements the labeling side of the EM process (Section
// 8): the Yes/No/Unsure label domain, a label store with CSV persistence,
// a simulation of the single-writer cloud labeling tool the EM team built,
// a simulated domain expert with a configurable disagreement model, and
// cross-checking of two labelers' work.
package label

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"emgo/internal/block"
)

// Label is a human judgment about a record pair.
type Label int

const (
	// Unknown means the pair has not been labeled.
	Unknown Label = iota
	// Yes marks a match.
	Yes
	// No marks a non-match.
	No
	// Unsure marks a pair even the domain expert cannot decide (dirty,
	// incomplete, or cryptic data — footnote 5 of the paper).
	Unsure
)

// String renders the label as the tool shows it.
func (l Label) String() string {
	switch l {
	case Yes:
		return "Yes"
	case No:
		return "No"
	case Unsure:
		return "Unsure"
	default:
		return "Unknown"
	}
}

// ParseLabel converts the textual form back to a Label.
func ParseLabel(s string) (Label, error) {
	switch s {
	case "Yes":
		return Yes, nil
	case "No":
		return No, nil
	case "Unsure":
		return Unsure, nil
	case "Unknown":
		return Unknown, nil
	}
	return Unknown, fmt.Errorf("label: unknown label %q", s)
}

// Counts tallies a label set.
type Counts struct {
	Yes, No, Unsure int
}

// Total returns the number of labeled pairs.
func (c Counts) Total() int { return c.Yes + c.No + c.Unsure }

// Revision is one change to a pair's label — the audit trail behind the
// Section 8 revision meetings (cross-check flips, the D1-D3 updates).
type Revision struct {
	Pair     block.Pair
	From, To Label
}

// Store holds labels for record pairs, preserving labeling order and a
// revision history.
type Store struct {
	labels    map[block.Pair]Label
	order     []block.Pair
	revisions []Revision
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{labels: make(map[block.Pair]Label)}
}

// Set records (or revises) the label of p. Unknown removes nothing but is
// rejected — use stores for decided labels.
func (s *Store) Set(p block.Pair, l Label) error {
	if l == Unknown {
		return fmt.Errorf("label: cannot store Unknown")
	}
	prev, seen := s.labels[p]
	if !seen {
		s.order = append(s.order, p)
	} else if prev != l {
		s.revisions = append(s.revisions, Revision{Pair: p, From: prev, To: l})
	}
	s.labels[p] = l
	return nil
}

// Revisions returns the label-change history, in order.
func (s *Store) Revisions() []Revision {
	out := make([]Revision, len(s.revisions))
	copy(out, s.revisions)
	return out
}

// Get returns the label of p (Unknown when absent).
func (s *Store) Get(p block.Pair) Label { return s.labels[p] }

// Has reports whether p is labeled.
func (s *Store) Has(p block.Pair) bool {
	_, ok := s.labels[p]
	return ok
}

// Len returns the number of labeled pairs.
func (s *Store) Len() int { return len(s.labels) }

// Pairs returns the labeled pairs in labeling order.
func (s *Store) Pairs() []block.Pair {
	out := make([]block.Pair, len(s.order))
	copy(out, s.order)
	return out
}

// Counts tallies the store.
func (s *Store) Counts() Counts {
	var c Counts
	for _, l := range s.labels {
		switch l {
		case Yes:
			c.Yes++
		case No:
			c.No++
		case Unsure:
			c.Unsure++
		}
	}
	return c
}

// Decided returns the pairs labeled Yes or No (Unsure pairs are excluded
// from training and evaluation per footnote 5), in labeling order, with
// their binary labels (1 for Yes).
func (s *Store) Decided() ([]block.Pair, []int) {
	var pairs []block.Pair
	var y []int
	for _, p := range s.order {
		switch s.labels[p] {
		case Yes:
			pairs = append(pairs, p)
			y = append(y, 1)
		case No:
			pairs = append(pairs, p)
			y = append(y, 0)
		}
	}
	return pairs, y
}

// Clone returns a deep copy of the store, including the revision history.
func (s *Store) Clone() *Store {
	out := NewStore()
	for _, p := range s.order {
		out.Set(p, s.labels[p])
	}
	out.revisions = make([]Revision, len(s.revisions))
	copy(out.revisions, s.revisions)
	return out
}

// WriteCSV persists the store as (left,right,label) rows sorted by pair
// for deterministic output.
func (s *Store) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"left", "right", "label"}); err != nil {
		return err
	}
	pairs := s.Pairs()
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, p := range pairs {
		rec := []string{strconv.Itoa(p.A), strconv.Itoa(p.B), s.labels[p].String()}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a store written by WriteCSV.
func ReadCSV(r io.Reader) (*Store, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("label: read header: %w", err)
	}
	if len(header) != 3 {
		return nil, fmt.Errorf("label: want 3 columns, got %d", len(header))
	}
	s := NewStore()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("label: line %d: %w", line, err)
		}
		a, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("label: line %d: %w", line, err)
		}
		b, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("label: line %d: %w", line, err)
		}
		l, err := ParseLabel(rec[2])
		if err != nil {
			return nil, fmt.Errorf("label: line %d: %w", line, err)
		}
		if err := s.Set(block.Pair{A: a, B: b}, l); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Conflict is one pair two labelers disagree on.
type Conflict struct {
	Pair block.Pair
	A, B Label
}

// Merge combines several labelers' stores into one — the collaboration
// primitive Section 13 asks for. Pairs labeled identically (or by only
// one labeler) merge cleanly; disagreements are returned as conflicts
// and left OUT of the merged store, to be resolved in a revision meeting
// and Set explicitly.
func Merge(stores ...*Store) (*Store, []Conflict) {
	merged := NewStore()
	conflicted := make(map[block.Pair]bool)
	var conflicts []Conflict
	for _, s := range stores {
		for _, p := range s.Pairs() {
			l := s.Get(p)
			if conflicted[p] {
				continue
			}
			if !merged.Has(p) {
				merged.Set(p, l)
				continue
			}
			if existing := merged.Get(p); existing != l {
				conflicts = append(conflicts, Conflict{Pair: p, A: existing, B: l})
				conflicted[p] = true
				// Remove from the merged view by rebuilding lazily:
				// mark and filter below.
			}
		}
	}
	if len(conflicted) == 0 {
		return merged, conflicts
	}
	clean := NewStore()
	for _, p := range merged.Pairs() {
		if !conflicted[p] {
			clean.Set(p, merged.Get(p))
		}
	}
	sort.Slice(conflicts, func(i, j int) bool {
		if conflicts[i].Pair.A != conflicts[j].Pair.A {
			return conflicts[i].Pair.A < conflicts[j].Pair.A
		}
		return conflicts[i].Pair.B < conflicts[j].Pair.B
	})
	return clean, conflicts
}

// CrossCheck compares two labelers' stores over the pairs both labeled
// and returns the disagreeing pairs (sorted) — the Section 8 step where
// the EM team's labels were checked against the UMETRICS team's and 22
// mismatches surfaced.
func CrossCheck(a, b *Store) []block.Pair {
	var out []block.Pair
	for _, p := range a.Pairs() {
		if b.Has(p) && a.Get(p) != b.Get(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
