package label

import (
	"testing"

	"emgo/internal/block"
)

func TestMergeCleanAndConflicted(t *testing.T) {
	a, b := NewStore(), NewStore()
	p1 := block.Pair{A: 0, B: 0} // both agree Yes
	p2 := block.Pair{A: 0, B: 1} // only a labeled
	p3 := block.Pair{A: 0, B: 2} // only b labeled
	p4 := block.Pair{A: 0, B: 3} // conflict
	a.Set(p1, Yes)
	b.Set(p1, Yes)
	a.Set(p2, No)
	b.Set(p3, Unsure)
	a.Set(p4, Yes)
	b.Set(p4, No)

	merged, conflicts := Merge(a, b)
	if merged.Len() != 3 {
		t.Fatalf("merged len = %d", merged.Len())
	}
	if merged.Get(p1) != Yes || merged.Get(p2) != No || merged.Get(p3) != Unsure {
		t.Fatal("clean labels wrong")
	}
	if merged.Has(p4) {
		t.Fatal("conflicted pair must be excluded")
	}
	if len(conflicts) != 1 || conflicts[0].Pair != p4 || conflicts[0].A != Yes || conflicts[0].B != No {
		t.Fatalf("conflicts = %+v", conflicts)
	}
}

func TestMergeThreeWay(t *testing.T) {
	a, b, c := NewStore(), NewStore(), NewStore()
	p := block.Pair{A: 1, B: 1}
	a.Set(p, Yes)
	b.Set(p, Yes)
	c.Set(p, No) // third labeler disagrees
	merged, conflicts := Merge(a, b, c)
	if merged.Has(p) {
		t.Fatal("three-way conflict must exclude the pair")
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	merged, conflicts := Merge()
	if merged.Len() != 0 || len(conflicts) != 0 {
		t.Fatal("empty merge")
	}
	s := NewStore()
	s.Set(block.Pair{A: 0, B: 0}, Yes)
	merged, conflicts = Merge(s)
	if merged.Len() != 1 || len(conflicts) != 0 {
		t.Fatal("single merge")
	}
}
