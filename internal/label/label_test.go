package label

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"emgo/internal/block"
)

func TestLabelStringParse(t *testing.T) {
	for _, l := range []Label{Unknown, Yes, No, Unsure} {
		got, err := ParseLabel(l.String())
		if err != nil || got != l {
			t.Errorf("round trip %v: %v %v", l, got, err)
		}
	}
	if _, err := ParseLabel("Maybe"); err == nil {
		t.Fatal("bad label should error")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	p1 := block.Pair{A: 1, B: 2}
	if err := s.Set(p1, Yes); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(p1, Unsure); err != nil { // revision
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Get(p1) != Unsure || !s.Has(p1) {
		t.Fatal("store state wrong")
	}
	if s.Get(block.Pair{A: 9, B: 9}) != Unknown {
		t.Fatal("absent pair should be Unknown")
	}
	if err := s.Set(p1, Unknown); err == nil {
		t.Fatal("storing Unknown should error")
	}
	if got := s.Pairs(); len(got) != 1 || got[0] != p1 {
		t.Fatal("pairs order")
	}
}

func TestStoreCountsAndDecided(t *testing.T) {
	s := NewStore()
	s.Set(block.Pair{A: 0, B: 0}, Yes)
	s.Set(block.Pair{A: 0, B: 1}, No)
	s.Set(block.Pair{A: 0, B: 2}, No)
	s.Set(block.Pair{A: 0, B: 3}, Unsure)
	c := s.Counts()
	if c.Yes != 1 || c.No != 2 || c.Unsure != 1 || c.Total() != 4 {
		t.Fatalf("counts: %+v", c)
	}
	pairs, y := s.Decided()
	if len(pairs) != 3 || len(y) != 3 {
		t.Fatalf("decided: %v %v", pairs, y)
	}
	if y[0] != 1 || y[1] != 0 || y[2] != 0 {
		t.Fatalf("decided labels: %v", y)
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore()
	s.Set(block.Pair{A: 0, B: 0}, Yes)
	c := s.Clone()
	c.Set(block.Pair{A: 1, B: 1}, No)
	if s.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone not independent")
	}
}

func TestStoreCSVRoundTrip(t *testing.T) {
	s := NewStore()
	s.Set(block.Pair{A: 3, B: 7}, Yes)
	s.Set(block.Pair{A: 1, B: 2}, Unsure)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Get(block.Pair{A: 3, B: 7}) != Yes || got.Get(block.Pair{A: 1, B: 2}) != Unsure {
		t.Fatal("round trip lost labels")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("wrong column count should error")
	}
	if _, err := ReadCSV(strings.NewReader("left,right,label\nx,2,Yes\n")); err == nil {
		t.Fatal("bad left index should error")
	}
	if _, err := ReadCSV(strings.NewReader("left,right,label\n1,y,Yes\n")); err == nil {
		t.Fatal("bad right index should error")
	}
	if _, err := ReadCSV(strings.NewReader("left,right,label\n1,2,Maybe\n")); err == nil {
		t.Fatal("bad label should error")
	}
}

func TestCrossCheck(t *testing.T) {
	a, b := NewStore(), NewStore()
	p1 := block.Pair{A: 0, B: 0}
	p2 := block.Pair{A: 0, B: 1}
	p3 := block.Pair{A: 0, B: 2}
	a.Set(p1, Yes)
	b.Set(p1, Yes)
	a.Set(p2, Yes)
	b.Set(p2, No) // disagreement
	a.Set(p3, No) // b never labeled it: not a mismatch
	got := CrossCheck(a, b)
	if len(got) != 1 || got[0] != p2 {
		t.Fatalf("cross check: %v", got)
	}
}

func TestToolSingleWriterProtocol(t *testing.T) {
	store := NewStore()
	tool := NewTool(store)
	p1 := block.Pair{A: 0, B: 0}
	p2 := block.Pair{A: 0, B: 1}

	if n := tool.Upload([]block.Pair{p1, p2, p1}); n != 2 {
		t.Fatalf("queued %d", n)
	}
	if err := tool.OpenSession(""); err == nil {
		t.Fatal("empty user should error")
	}
	if err := tool.OpenSession("student"); err != nil {
		t.Fatal(err)
	}
	if err := tool.OpenSession("professor"); err == nil {
		t.Fatal("second session must be rejected while first is active")
	}
	if tool.ActiveSession() != "student" {
		t.Fatal("active session")
	}
	if err := tool.Submit("professor", p1, Yes); err == nil {
		t.Fatal("non-holder submit should error")
	}
	if err := tool.Submit("student", block.Pair{A: 9, B: 9}, Yes); err == nil {
		t.Fatal("unqueued pair should error")
	}
	if err := tool.Submit("student", p1, Yes); err != nil {
		t.Fatal(err)
	}
	if len(tool.Pending()) != 1 {
		t.Fatal("queue should shrink")
	}
	if err := tool.CloseSession("professor"); err == nil {
		t.Fatal("non-holder close should error")
	}
	if err := tool.CloseSession("student"); err != nil {
		t.Fatal(err)
	}
	// Next labeler can now work.
	if err := tool.OpenSession("professor"); err != nil {
		t.Fatal(err)
	}
	if err := tool.Submit("professor", p2, Unsure); err != nil {
		t.Fatal(err)
	}
	if store.Get(p1) != Yes || store.Get(p2) != Unsure {
		t.Fatal("labels not stored")
	}
}

func TestToolUploadSkipsLabeled(t *testing.T) {
	store := NewStore()
	p := block.Pair{A: 0, B: 0}
	store.Set(p, Yes)
	tool := NewTool(store)
	if n := tool.Upload([]block.Pair{p}); n != 0 {
		t.Fatal("already-labeled pair should not queue")
	}
}

func TestToolLabelAll(t *testing.T) {
	store := NewStore()
	tool := NewTool(store)
	pairs := []block.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}}
	tool.Upload(pairs)
	if err := tool.LabelAll("x", func(p block.Pair) Label { return Yes }); err == nil {
		t.Fatal("LabelAll without session should error")
	}
	tool.OpenSession("expert")
	err := tool.LabelAll("expert", func(p block.Pair) Label {
		if p.A == 1 {
			return No
		}
		return Yes
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tool.Pending()) != 0 {
		t.Fatal("queue should drain")
	}
	c := store.Counts()
	if c.Yes != 2 || c.No != 1 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestExpertDeterministic(t *testing.T) {
	e := &Expert{Truth: func(p block.Pair) bool { return p.A == p.B }}
	if e.Label(block.Pair{A: 1, B: 1}) != Yes {
		t.Fatal("true match should be Yes")
	}
	if e.Label(block.Pair{A: 1, B: 2}) != No {
		t.Fatal("non-match should be No")
	}
	if e.TruthLabel(block.Pair{A: 1, B: 1}) != Yes || e.TruthLabel(block.Pair{A: 0, B: 2}) != No {
		t.Fatal("truth label")
	}
}

func TestExpertHardPairsAlwaysUnsure(t *testing.T) {
	e := &Expert{
		Truth: func(p block.Pair) bool { return true },
		Hard:  func(p block.Pair) bool { return p.A == 0 },
		Rng:   rand.New(rand.NewSource(1)),
	}
	if e.Label(block.Pair{A: 0, B: 5}) != Unsure {
		t.Fatal("hard pair should be Unsure")
	}
	if e.Revise(block.Pair{A: 0, B: 5}) != Unsure {
		t.Fatal("hard pair stays Unsure on revision")
	}
	if e.Revise(block.Pair{A: 1, B: 5}) != Yes {
		t.Fatal("revision should return truth for non-hard pairs")
	}
}

func TestExpertNoiseAndRevision(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := &Expert{
		Truth:        func(p block.Pair) bool { return p.A%2 == 0 },
		HesitateRate: 0.3,
		MistakeRate:  0.1,
		Rng:          rng,
	}
	hesitated, mistakes := 0, 0
	n := 2000
	for i := 0; i < n; i++ {
		p := block.Pair{A: i, B: i}
		truth := e.Truth(p)
		l := e.Label(p)
		if truth && l == Unsure {
			hesitated++
		}
		if (truth && l == No) || (!truth && l == Yes) {
			mistakes++
		}
		// Revision always restores truth.
		if r := e.Revise(p); (r == Yes) != truth {
			t.Fatal("revision must match truth")
		}
	}
	if hesitated == 0 {
		t.Fatal("expected some hesitation")
	}
	if mistakes == 0 {
		t.Fatal("expected some mistakes")
	}
	// Rates are loosely calibrated: hesitation only applies to the ~1000
	// true pairs.
	if hesitated < 150 || hesitated > 500 {
		t.Fatalf("hesitated = %d out of ~1000 true pairs", hesitated)
	}
}
