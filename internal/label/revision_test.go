package label

import (
	"testing"

	"emgo/internal/block"
)

func TestStoreRevisionHistory(t *testing.T) {
	s := NewStore()
	p := block.Pair{A: 1, B: 2}
	s.Set(p, Yes)
	if len(s.Revisions()) != 0 {
		t.Fatal("first label is not a revision")
	}
	s.Set(p, Yes) // no-op re-set
	if len(s.Revisions()) != 0 {
		t.Fatal("same-label re-set is not a revision")
	}
	s.Set(p, Unsure)
	s.Set(p, No)
	revs := s.Revisions()
	if len(revs) != 2 {
		t.Fatalf("revisions = %d", len(revs))
	}
	if revs[0] != (Revision{Pair: p, From: Yes, To: Unsure}) {
		t.Fatalf("rev 0 = %+v", revs[0])
	}
	if revs[1] != (Revision{Pair: p, From: Unsure, To: No}) {
		t.Fatalf("rev 1 = %+v", revs[1])
	}
	// Returned slice is a copy.
	revs[0].To = Yes
	if s.Revisions()[0].To != Unsure {
		t.Fatal("Revisions must return a copy")
	}
}

func TestCloneCopiesRevisions(t *testing.T) {
	s := NewStore()
	p := block.Pair{A: 0, B: 0}
	s.Set(p, Yes)
	s.Set(p, No)
	c := s.Clone()
	if len(c.Revisions()) != 1 {
		t.Fatalf("clone revisions = %d", len(c.Revisions()))
	}
	c.Set(p, Unsure)
	if len(s.Revisions()) != 1 || len(c.Revisions()) != 2 {
		t.Fatal("clone history not independent")
	}
}
