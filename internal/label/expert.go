package label

import (
	"math/rand"

	"emgo/internal/block"
)

// Expert simulates a domain-expert labeler over a ground-truth oracle.
// The disagreement model reproduces the labeling pathologies of Section 8:
// some truly matching pairs are labeled Unsure or No on first pass (titles
// "not unique enough"), some pairs are inherently undecidable (dirty or
// cryptic data) and stay Unsure, and revision sessions flip earlier calls.
type Expert struct {
	// Truth returns whether the pair is a true match.
	Truth func(block.Pair) bool
	// Hard reports whether the pair is inherently undecidable; hard pairs
	// are always labeled Unsure regardless of truth.
	Hard func(block.Pair) bool
	// Tricky reports whether the pair is a lookalike the expert initially
	// waffles on (the Section 8 "similar award titles ... labeled as a
	// mix of match, non-match, and primarily unsures" episode). On first
	// pass a tricky pair is labeled Unsure with TrickyUnsureRate, the
	// wrong label with TrickyWrongRate, and the truth otherwise; Revise
	// returns the truth (the D2 resolution).
	Tricky           func(block.Pair) bool
	TrickyUnsureRate float64
	TrickyWrongRate  float64
	// HesitateRate is the probability a true match is initially labeled
	// Unsure instead of Yes (first-pass conservatism).
	HesitateRate float64
	// MistakeRate is the probability a pair gets the opposite label on
	// first pass (plain labeling error).
	MistakeRate float64
	// Rng drives the noise; a nil Rng makes the expert deterministic
	// (truth plus Hard only).
	Rng *rand.Rand
}

// Label returns the expert's first-pass label for p.
func (e *Expert) Label(p block.Pair) Label {
	if e.Hard != nil && e.Hard(p) {
		return Unsure
	}
	truth := e.Truth(p)
	if e.Tricky != nil && e.Tricky(p) && e.Rng != nil {
		r := e.Rng.Float64()
		switch {
		case r < e.TrickyUnsureRate:
			return Unsure
		case r < e.TrickyUnsureRate+e.TrickyWrongRate:
			truth = !truth
		}
		if truth {
			return Yes
		}
		return No
	}
	if e.Rng != nil {
		if truth && e.HesitateRate > 0 && e.Rng.Float64() < e.HesitateRate {
			return Unsure
		}
		if e.MistakeRate > 0 && e.Rng.Float64() < e.MistakeRate {
			truth = !truth
		}
	}
	if truth {
		return Yes
	}
	return No
}

// Revise is the expert's second look at a disputed pair (the Section 8
// mismatch-resolution meetings): hard pairs stay Unsure, everything else
// gets the ground-truth label.
func (e *Expert) Revise(p block.Pair) Label {
	if e.Hard != nil && e.Hard(p) {
		return Unsure
	}
	if e.Truth(p) {
		return Yes
	}
	return No
}

// TruthLabel returns the noiseless label (for building gold evaluation
// sets).
func (e *Expert) TruthLabel(p block.Pair) Label {
	if e.Truth(p) {
		return Yes
	}
	return No
}
