package label

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"emgo/internal/block"
	"emgo/internal/fault"
	"emgo/internal/retry"
)

func queuedTool(t *testing.T, n int) *Tool {
	t.Helper()
	tool := NewTool(NewStore())
	pairs := make([]block.Pair, n)
	for i := range pairs {
		pairs[i] = block.Pair{A: i, B: i + 100}
	}
	if got := tool.Upload(pairs); got != n {
		t.Fatalf("queued %d of %d", got, n)
	}
	if err := tool.OpenSession("alice"); err != nil {
		t.Fatal(err)
	}
	return tool
}

func yesJudge(block.Pair) (Label, error) { return Yes, nil }

func TestLabelAllCtxDrainsQueue(t *testing.T) {
	tool := queuedTool(t, 4)
	if err := tool.LabelAllCtx(context.Background(), "alice", retry.Policy{}, yesJudge); err != nil {
		t.Fatal(err)
	}
	if n := len(tool.Pending()); n != 0 {
		t.Fatalf("pending after drain: %d", n)
	}
	if tool.store.Counts().Yes != 4 {
		t.Fatalf("labels: %+v", tool.store.Counts())
	}
}

func TestLabelAllCtxRetriesFlakySubmit(t *testing.T) {
	defer fault.Reset()
	tool := queuedTool(t, 3)
	// The cloud tool's write path drops the first two submits; retries
	// must drain the queue anyway, losing nothing.
	fault.Enable("label.submit", fault.Plan{FailFirst: 2})
	policy := retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	if err := tool.LabelAllCtx(context.Background(), "alice", policy, yesJudge); err != nil {
		t.Fatalf("flaky submit should be retried: %v", err)
	}
	if tool.store.Len() != 3 {
		t.Fatalf("labels stored: %d", tool.store.Len())
	}
}

func TestLabelAllCtxRetriesFlakyJudge(t *testing.T) {
	calls := 0
	tool := queuedTool(t, 2)
	judge := func(p block.Pair) (Label, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("labeler backend hiccup")
		}
		return No, nil
	}
	policy := retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	if err := tool.LabelAllCtx(context.Background(), "alice", policy, judge); err != nil {
		t.Fatalf("flaky judge should be retried: %v", err)
	}
	if tool.store.Counts().No != 2 {
		t.Fatalf("labels: %+v", tool.store.Counts())
	}
}

func TestLabelAllCtxExhaustedRetriesNamePair(t *testing.T) {
	defer fault.Reset()
	tool := queuedTool(t, 2)
	fault.Enable("label.submit", fault.Plan{FailFirst: 1 << 30})
	err := tool.LabelAllCtx(context.Background(), "alice",
		retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond}, yesJudge)
	if err == nil || !strings.Contains(err.Error(), "pair (0,100)") {
		t.Fatalf("err: %v", err)
	}
	// Nothing labeled, everything still queued — safe to retry the drain.
	if tool.store.Len() != 0 || len(tool.Pending()) != 2 {
		t.Fatalf("store %d, pending %d", tool.store.Len(), len(tool.Pending()))
	}
}

func TestLabelAllCtxCancelledStopsDrain(t *testing.T) {
	tool := queuedTool(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	labeled := 0
	judge := func(p block.Pair) (Label, error) {
		labeled++
		if labeled == 2 {
			cancel()
		}
		return Yes, nil
	}
	err := tool.LabelAllCtx(ctx, "alice", retry.Policy{}, judge)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
	if len(tool.Pending()) == 0 {
		t.Fatal("cancelled drain emptied the queue")
	}
	// Already-submitted labels stay.
	if tool.store.Len() == 0 {
		t.Fatal("labels before cancellation were lost")
	}
}

func TestLabelAllCtxGuards(t *testing.T) {
	tool := queuedTool(t, 1)
	if err := tool.LabelAllCtx(context.Background(), "bob", retry.Policy{}, yesJudge); err == nil {
		t.Fatal("wrong user must not drain")
	}
	if err := tool.LabelAllCtx(context.Background(), "alice", retry.Policy{}, nil); err == nil {
		t.Fatal("nil judge must error")
	}
}
