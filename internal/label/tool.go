package label

import (
	"context"
	"fmt"

	"emgo/internal/block"
	"emgo/internal/fault"
	"emgo/internal/obs"
	"emgo/internal/retry"
)

// Tool simulates the cloud-based labeling tool built for the UMETRICS
// team (Section 8 "Setting Up"): record pairs are uploaded in batches, a
// single labeler at a time holds the session ("the tool was limited in
// that only one person could label at any time"), and labels land in a
// shared store.
type Tool struct {
	store   *Store
	pending []block.Pair
	session string // active labeler, "" when free
}

// NewTool returns a tool writing into store.
func NewTool(store *Store) *Tool {
	return &Tool{store: store}
}

// Upload queues record pairs for labeling; already-labeled pairs are
// skipped (re-sampling across iterations must not re-ask the expert).
// It returns how many pairs were actually queued.
func (t *Tool) Upload(pairs []block.Pair) int {
	queued := 0
	inQueue := make(map[block.Pair]struct{}, len(t.pending))
	for _, p := range t.pending {
		inQueue[p] = struct{}{}
	}
	for _, p := range pairs {
		if t.store.Has(p) {
			continue
		}
		if _, dup := inQueue[p]; dup {
			continue
		}
		inQueue[p] = struct{}{}
		t.pending = append(t.pending, p)
		queued++
	}
	return queued
}

// Pending returns the pairs still awaiting labels, in queue order.
func (t *Tool) Pending() []block.Pair {
	out := make([]block.Pair, len(t.pending))
	copy(out, t.pending)
	return out
}

// OpenSession locks the tool for one labeler. It fails while another
// session is active — the single-writer limitation of the built tool.
func (t *Tool) OpenSession(user string) error {
	if user == "" {
		return fmt.Errorf("label: session needs a user name")
	}
	if t.session != "" {
		return fmt.Errorf("label: tool busy: %s is labeling", t.session)
	}
	t.session = user
	return nil
}

// CloseSession releases the lock held by user.
func (t *Tool) CloseSession(user string) error {
	if t.session != user {
		return fmt.Errorf("label: %s does not hold the session", user)
	}
	t.session = ""
	return nil
}

// ActiveSession returns the current labeler ("" when free).
func (t *Tool) ActiveSession() string { return t.session }

// Submit records user's label for p. The pair must be in the queue and
// the user must hold the session. The pair leaves the queue. Each submit
// passes the "label.submit" fault-injection site (the cloud tool's flaky
// write path); a failed submit leaves the pair queued, so retrying is
// safe.
func (t *Tool) Submit(user string, p block.Pair, l Label) error {
	if t.session != user {
		return fmt.Errorf("label: %s does not hold the session", user)
	}
	if err := fault.Inject("label.submit"); err != nil {
		return err
	}
	idx := -1
	for i, q := range t.pending {
		if q == p {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("label: pair (%d,%d) is not queued", p.A, p.B)
	}
	if err := t.store.Set(p, l); err != nil {
		return err
	}
	t.pending = append(t.pending[:idx], t.pending[idx+1:]...)
	return nil
}

// LabelAll drains the queue by asking judge for each pending pair —
// the programmatic path used when the simulated expert labels a batch.
// The caller must hold the session.
func (t *Tool) LabelAll(user string, judge func(block.Pair) Label) error {
	if t.session != user {
		return fmt.Errorf("label: %s does not hold the session", user)
	}
	pending := t.Pending()
	for _, p := range pending {
		if err := t.Submit(user, p, judge(p)); err != nil {
			return err
		}
	}
	return nil
}

// LabelAllCtx drains the queue under the hardened runtime: both the
// judge (the human or service producing labels) and the submit path are
// retried on the policy's deterministic backoff schedule, and the drain
// stops promptly when ctx is done. A pair that exhausts its retries
// aborts the drain with the pair identified; everything labeled so far
// stays labeled.
func (t *Tool) LabelAllCtx(ctx context.Context, user string, policy retry.Policy, judge func(block.Pair) (Label, error)) error {
	if t.session != user {
		return fmt.Errorf("label: %s does not hold the session", user)
	}
	if judge == nil {
		return fmt.Errorf("label: drain needs a judge")
	}
	pending := t.Pending()
	dctx, sp := obs.StartSpan(ctx, "label.drain")
	defer sp.End()
	sp.SetItems(len(pending))
	labeled := obs.C("label.labeled")
	queueGauge := obs.G("label.pending")
	queueGauge.Set(int64(len(pending)))
	for _, p := range pending {
		if err := dctx.Err(); err != nil {
			sp.SetOutcome("aborted")
			return err
		}
		var l Label
		err := retry.Do(dctx, policy, func() error {
			var jerr error
			l, jerr = judge(p)
			return jerr
		})
		if err != nil {
			sp.SetOutcome("aborted")
			return fmt.Errorf("label: judging pair (%d,%d): %w", p.A, p.B, err)
		}
		err = retry.Do(dctx, policy, func() error {
			return t.Submit(user, p, l)
		})
		if err != nil {
			sp.SetOutcome("aborted")
			return fmt.Errorf("label: submitting pair (%d,%d): %w", p.A, p.B, err)
		}
		labeled.Inc()
		queueGauge.Set(int64(len(t.pending)))
	}
	sp.SetOutcome("ok")
	return nil
}
