package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures what Check reports without failing the real test.
type recorder struct {
	cleanups []func()
	failures []string
}

func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }
func (r *recorder) Helper()          {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}

// runCleanups runs registered cleanups in reverse order, as testing does.
func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestNoLeakPasses(t *testing.T) {
	rec := &recorder{}
	Check(rec)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", rec.failures)
	}
}

func TestSlowExitWithinGracePasses(t *testing.T) {
	rec := &recorder{}
	Check(rec)
	go func() { time.Sleep(150 * time.Millisecond) }()
	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("goroutine exiting within the grace period flagged: %v", rec.failures)
	}
}

func TestLeakDetected(t *testing.T) {
	// Shrink the wait so the failing path does not stall the suite for
	// the full grace period times the retry loop.
	rec := &recorder{}
	base := snapshot()
	block := make(chan struct{})
	defer close(block)
	go func() { <-block }()
	// Poll leaked directly instead of going through Check's cleanup (the
	// cleanup's grace wait is deliberate production behavior; the unit
	// test only needs the detection primitive).
	deadline := time.Now().Add(2 * time.Second)
	var extra []string
	for time.Now().Before(deadline) {
		extra = leaked(base)
		if len(extra) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(extra) == 0 {
		t.Fatal("blocked goroutine not detected as leaked")
	}
	found := false
	for _, stanza := range extra {
		if strings.Contains(stanza, "TestLeakDetected") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report does not name the leaking site:\n%s", strings.Join(extra, "\n\n"))
	}
	_ = rec
}

func TestGoidParsing(t *testing.T) {
	if id := goid("goroutine 42 [chan receive, 3 minutes]:\nmain.main()"); id != "42" {
		t.Fatalf("goid = %q, want 42", id)
	}
	if id := goid("not a stanza"); id != "" {
		t.Fatalf("goid on garbage = %q, want empty", id)
	}
}
