// Package leakcheck is the shared goroutine-leak test helper: a test
// calls leakcheck.Check(t) at its top and, when the test finishes, the
// helper fails it if goroutines started during the test are still
// running. The concurrency-heavy packages (parallel fan-out, workflow
// runtime, debug server, matching service) use it so "cancellation
// stops the workers" and "shutdown drains the server" are verified
// claims, not hopes.
//
// Detection is stack-based, not count-based: the helper snapshots the
// stacks of the goroutines alive when Check is called, and at cleanup
// time waits (with backoff, up to a grace period) for every goroutine
// not in that snapshot — and not on the ignore list of runtime-managed
// stacks — to exit. Waiting matters: a goroutine legitimately winding
// down after its channel closed needs a scheduler turn or two, and
// failing the instant the test body returns would make the helper too
// noisy to keep enabled.
package leakcheck

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs; taking the
// interface keeps this package free of a testing import in its API and
// usable from TestMain-style callers.
type TB interface {
	Cleanup(func())
	Errorf(format string, args ...any)
	Helper()
}

// grace is how long cleanup waits for stragglers to exit before
// declaring them leaked. Long enough for deferred worker teardown under
// a loaded -race run, short enough not to stall the suite.
const grace = 2 * time.Second

// ignored reports whether a goroutine stack is runtime- or
// toolchain-managed and can never be a leak the test under check caused.
func ignored(stack string) bool {
	for _, frag := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.(*M).startAlarm",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime/pprof.readProfile",
		"runtime.ReadTrace",
		"runtime.MHeap_Scavenger",
		"created by runtime.gc",
		"net/http.(*persistConn)", // client keep-alive conns close lazily
		"net/http.setRequestCancel",
		"internal/poll.runtime_pollWait",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}

// stacks returns the stacks of all live goroutines, one stanza per
// goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		if stanza != "" {
			out = append(out, stanza)
		}
	}
	return out
}

// goid extracts the goroutine ID from a stanza header
// ("goroutine 42 [chan receive]: ..." -> "42"). Identity must be the ID,
// not the stanza text: a parked goroutine's stack text drifts over time
// (the header grows a wait duration, "[chan receive, 2 minutes]"), and
// the runtime never reuses IDs, so the ID is the one stable key.
func goid(stanza string) string {
	rest, ok := strings.CutPrefix(stanza, "goroutine ")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return ""
}

// snapshot returns the IDs of all live goroutines (ignored or not — a
// pre-existing goroutine is never a leak regardless of what it is doing
// now).
func snapshot() map[string]bool {
	out := make(map[string]bool)
	for _, stanza := range stacks() {
		if id := goid(stanza); id != "" {
			out[id] = true
		}
	}
	return out
}

// leaked returns the stanzas of goroutines alive now that were not
// alive in base and are not runtime-managed.
func leaked(base map[string]bool) []string {
	var out []string
	for _, stanza := range stacks() {
		if base[goid(stanza)] || ignored(stanza) {
			continue
		}
		out = append(out, stanza)
	}
	return out
}

// Check snapshots the live goroutines and registers a cleanup that
// fails t if, after a grace period, goroutines created during the test
// are still running. Call it first in the test so the snapshot precedes
// any goroutine the test starts.
func Check(t TB) {
	t.Helper()
	base := snapshot()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var extra []string
		for {
			extra = leaked(base)
			if len(extra) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n\n%s",
			len(extra), strings.Join(extra, "\n\n"))
	})
}
