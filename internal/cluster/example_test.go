package cluster_test

import (
	"fmt"

	"emgo/internal/block"
	"emgo/internal/cluster"
	"emgo/internal/table"
)

func ExampleDegrees() {
	schema := table.MustSchema(table.Field{Name: "X", Kind: table.Int})
	l, r := table.New("L", schema), table.New("R", schema)
	for i := 0; i < 4; i++ {
		l.MustAppend(table.Row{table.I(int64(i))})
		r.MustAppend(table.Row{table.I(int64(i))})
	}
	matches := block.NewCandidateSet(l, r)
	matches.Add(block.Pair{A: 0, B: 0}) // one-to-one
	matches.Add(block.Pair{A: 1, B: 1}) // left 1 matches two
	matches.Add(block.Pair{A: 1, B: 2}) // annual reports
	fmt.Println(cluster.Degrees(matches))
	// Output: 1:1=1 1:n=2 n:1=0 n:m=0 (max left fan-out 2, right 1)
}
