// Package cluster analyzes and post-processes match sets at the entity
// level — the Section 10 discussion of the case study ("Should We Match
// at the Cluster Level?"): counting one-to-one / one-to-many /
// many-to-one predictions (the analysis the EM team shared with the
// UMETRICS team), enforcing a one-to-one constraint when the domain
// demands it, and grouping matches into entity clusters via connected
// components (the sub-award clustering the UMETRICS team originally had
// in mind).
package cluster

import (
	"fmt"
	"sort"

	"emgo/internal/block"
)

// DegreeStats summarizes the multiplicity structure of a match set.
type DegreeStats struct {
	// OneToOne counts pairs whose left AND right records appear in
	// exactly one match.
	OneToOne int
	// OneToMany counts pairs whose left record matches several right
	// records (but the right record has only this match).
	OneToMany int
	// ManyToOne is the mirror image.
	ManyToOne int
	// ManyToMany counts pairs where both sides are shared.
	ManyToMany int
	// MaxLeftDegree / MaxRightDegree are the largest fan-outs observed.
	MaxLeftDegree  int
	MaxRightDegree int
}

// Total returns the number of pairs classified.
func (s DegreeStats) Total() int {
	return s.OneToOne + s.OneToMany + s.ManyToOne + s.ManyToMany
}

// String renders the stats the way the teams discussed them.
func (s DegreeStats) String() string {
	return fmt.Sprintf("1:1=%d 1:n=%d n:1=%d n:m=%d (max left fan-out %d, right %d)",
		s.OneToOne, s.OneToMany, s.ManyToOne, s.ManyToMany,
		s.MaxLeftDegree, s.MaxRightDegree)
}

// Degrees classifies every pair of a match set by the multiplicity of its
// endpoints — the analysis Section 10 reports ("we analyzed the
// one-to-one, one-to-many, and many-to-one match predictions ... to show
// examples of these and their frequency").
func Degrees(matches *block.CandidateSet) DegreeStats {
	leftDeg := make(map[int]int)
	rightDeg := make(map[int]int)
	for _, p := range matches.Pairs() {
		leftDeg[p.A]++
		rightDeg[p.B]++
	}
	var s DegreeStats
	for _, d := range leftDeg {
		if d > s.MaxLeftDegree {
			s.MaxLeftDegree = d
		}
	}
	for _, d := range rightDeg {
		if d > s.MaxRightDegree {
			s.MaxRightDegree = d
		}
	}
	for _, p := range matches.Pairs() {
		l, r := leftDeg[p.A], rightDeg[p.B]
		switch {
		case l == 1 && r == 1:
			s.OneToOne++
		case l > 1 && r == 1:
			s.OneToMany++
		case l == 1 && r > 1:
			s.ManyToOne++
		default:
			s.ManyToMany++
		}
	}
	return s
}

// Scored pairs drive the one-to-one reduction; higher scores win.
type Scored struct {
	Pair  block.Pair
	Score float64
}

// OneToOne reduces a match set to at most one match per left record and
// one per right record, keeping higher-scored pairs first (greedy maximum
// weight matching; ties broken by pair order for determinism). scores may
// be nil, in which case earlier pairs win. This is the constraint the
// UMETRICS team initially wanted ("a record in UMETRICSProjected should
// match at most one record in USDAProjected").
func OneToOne(matches *block.CandidateSet, scores map[block.Pair]float64) *block.CandidateSet {
	ranked := make([]Scored, 0, matches.Len())
	for _, p := range matches.Pairs() {
		ranked = append(ranked, Scored{Pair: p, Score: scores[p]})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		if ranked[i].Pair.A != ranked[j].Pair.A {
			return ranked[i].Pair.A < ranked[j].Pair.A
		}
		return ranked[i].Pair.B < ranked[j].Pair.B
	})
	usedLeft := make(map[int]bool)
	usedRight := make(map[int]bool)
	out := block.NewCandidateSet(matches.Left, matches.Right)
	for _, s := range ranked {
		if usedLeft[s.Pair.A] || usedRight[s.Pair.B] {
			continue
		}
		usedLeft[s.Pair.A] = true
		usedRight[s.Pair.B] = true
		out.Add(s.Pair)
	}
	return out
}

// Cluster is one entity cluster: the left and right record indices that
// the match set transitively connects (e.g. all annual sub-award records
// of the same grant).
type Cluster struct {
	Left  []int
	Right []int
}

// Size returns the number of records in the cluster.
func (c Cluster) Size() int { return len(c.Left) + len(c.Right) }

// ConnectedComponents groups a match set into entity clusters: two
// records are in the same cluster when a chain of matches connects them.
// Clusters are returned in deterministic order (by smallest left index,
// then smallest right index), with sorted member lists.
func ConnectedComponents(matches *block.CandidateSet) []Cluster {
	// Union-find over a combined id space: left i -> 2i, right j -> 2j+1.
	parent := make(map[int]int)
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Deterministic: smaller root wins.
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, p := range matches.Pairs() {
		union(2*p.A, 2*p.B+1)
	}

	members := make(map[int][]int)
	keys := make([]int, 0, len(parent))
	for x := range parent {
		keys = append(keys, x)
	}
	sort.Ints(keys)
	for _, x := range keys {
		root := find(x)
		members[root] = append(members[root], x)
	}
	roots := make([]int, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	out := make([]Cluster, 0, len(roots))
	for _, r := range roots {
		var c Cluster
		for _, x := range members[r] {
			if x%2 == 0 {
				c.Left = append(c.Left, x/2)
			} else {
				c.Right = append(c.Right, x/2)
			}
		}
		sort.Ints(c.Left)
		sort.Ints(c.Right)
		out = append(out, c)
	}
	return out
}

// ClusterMatches converts entity clusters back into a pair set containing
// the full bipartite product within each cluster — matching "at the
// cluster level" as the UMETRICS team wanted, where every sub-award
// record of a grant matches every record of its counterpart.
func ClusterMatches(matches *block.CandidateSet) *block.CandidateSet {
	out := block.NewCandidateSet(matches.Left, matches.Right)
	for _, c := range ConnectedComponents(matches) {
		for _, a := range c.Left {
			for _, b := range c.Right {
				out.Add(block.Pair{A: a, B: b})
			}
		}
	}
	return out
}
