package cluster

import (
	"testing"
	"testing/quick"

	"emgo/internal/block"
	"emgo/internal/table"
)

func tables(n, m int) (*table.Table, *table.Table) {
	schema := table.MustSchema(table.Field{Name: "X", Kind: table.Int})
	l := table.New("L", schema)
	for i := 0; i < n; i++ {
		l.MustAppend(table.Row{table.I(int64(i))})
	}
	r := table.New("R", schema)
	for i := 0; i < m; i++ {
		r.MustAppend(table.Row{table.I(int64(i))})
	}
	return l, r
}

func setOf(l, r *table.Table, pairs ...block.Pair) *block.CandidateSet {
	c := block.NewCandidateSet(l, r)
	for _, p := range pairs {
		c.Add(p)
	}
	return c
}

func TestDegrees(t *testing.T) {
	l, r := tables(10, 10)
	m := setOf(l, r,
		block.Pair{A: 0, B: 0},                         // 1:1
		block.Pair{A: 1, B: 1}, block.Pair{A: 1, B: 2}, // 1:n (left 1 fans out)
		block.Pair{A: 2, B: 3}, block.Pair{A: 3, B: 3}, // n:1 (right 3 shared)
		block.Pair{A: 4, B: 4}, block.Pair{A: 4, B: 5}, // mixed component
		block.Pair{A: 5, B: 5},
	)
	s := Degrees(m)
	if s.OneToOne != 1 {
		t.Errorf("1:1 = %d", s.OneToOne)
	}
	if s.OneToMany != 3 { // (1,1),(1,2),(4,4)
		t.Errorf("1:n = %d", s.OneToMany)
	}
	if s.ManyToOne != 3 { // (2,3),(3,3),(5,5)
		t.Errorf("n:1 = %d", s.ManyToOne)
	}
	if s.ManyToMany != 1 { // (4,5): left 4 deg 2, right 5 deg 2
		t.Errorf("n:m = %d", s.ManyToMany)
	}
	if s.Total() != m.Len() {
		t.Errorf("total %d != %d", s.Total(), m.Len())
	}
	if s.MaxLeftDegree != 2 || s.MaxRightDegree != 2 {
		t.Errorf("max degrees %d/%d", s.MaxLeftDegree, s.MaxRightDegree)
	}
	if s.String() == "" {
		t.Error("string rendering")
	}
}

func TestDegreesEmpty(t *testing.T) {
	l, r := tables(1, 1)
	s := Degrees(setOf(l, r))
	if s.Total() != 0 || s.MaxLeftDegree != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestOneToOneByScore(t *testing.T) {
	l, r := tables(5, 5)
	m := setOf(l, r,
		block.Pair{A: 0, B: 0},
		block.Pair{A: 0, B: 1},
		block.Pair{A: 1, B: 1},
	)
	scores := map[block.Pair]float64{
		{A: 0, B: 0}: 0.9,
		{A: 0, B: 1}: 0.95, // best, but consumes both 0 and 1's options
		{A: 1, B: 1}: 0.8,
	}
	out := OneToOne(m, scores)
	if out.Len() != 1 || !out.Contains(block.Pair{A: 0, B: 1}) {
		t.Fatalf("greedy by score: %v", out.Pairs())
	}
	// Without scores, insertion/sorted order wins: (0,0) then (1,1).
	out = OneToOne(m, nil)
	if out.Len() != 2 || !out.Contains(block.Pair{A: 0, B: 0}) || !out.Contains(block.Pair{A: 1, B: 1}) {
		t.Fatalf("greedy by order: %v", out.Pairs())
	}
}

func TestOneToOneProperty(t *testing.T) {
	l, r := tables(8, 8)
	f := func(raw []uint8) bool {
		m := block.NewCandidateSet(l, r)
		for i := 0; i+1 < len(raw); i += 2 {
			m.Add(block.Pair{A: int(raw[i]) % 8, B: int(raw[i+1]) % 8})
		}
		out := OneToOne(m, nil)
		seenL := map[int]bool{}
		seenR := map[int]bool{}
		for _, p := range out.Pairs() {
			if seenL[p.A] || seenR[p.B] {
				return false // constraint violated
			}
			seenL[p.A] = true
			seenR[p.B] = true
			if !m.Contains(p) {
				return false // invented a pair
			}
		}
		// Maximality: no remaining pair could be added.
		for _, p := range m.Pairs() {
			if !seenL[p.A] && !seenR[p.B] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	l, r := tables(10, 10)
	m := setOf(l, r,
		block.Pair{A: 0, B: 0},
		block.Pair{A: 1, B: 0}, // joins component of 0
		block.Pair{A: 1, B: 1},
		block.Pair{A: 5, B: 7}, // separate component
	)
	cs := ConnectedComponents(m)
	if len(cs) != 2 {
		t.Fatalf("components = %d: %+v", len(cs), cs)
	}
	c0 := cs[0]
	if len(c0.Left) != 2 || len(c0.Right) != 2 || c0.Size() != 4 {
		t.Fatalf("component 0: %+v", c0)
	}
	if c0.Left[0] != 0 || c0.Left[1] != 1 || c0.Right[0] != 0 || c0.Right[1] != 1 {
		t.Fatalf("component 0 members: %+v", c0)
	}
	c1 := cs[1]
	if len(c1.Left) != 1 || c1.Left[0] != 5 || len(c1.Right) != 1 || c1.Right[0] != 7 {
		t.Fatalf("component 1: %+v", c1)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	l, r := tables(1, 1)
	if cs := ConnectedComponents(setOf(l, r)); len(cs) != 0 {
		t.Fatalf("empty: %+v", cs)
	}
}

func TestClusterMatches(t *testing.T) {
	l, r := tables(10, 10)
	// A chain: left0-right0, left1-right0, left1-right1. Cluster-level
	// matching should add the missing (0,1) pair.
	m := setOf(l, r,
		block.Pair{A: 0, B: 0},
		block.Pair{A: 1, B: 0},
		block.Pair{A: 1, B: 1},
	)
	out := ClusterMatches(m)
	if out.Len() != 4 || !out.Contains(block.Pair{A: 0, B: 1}) {
		t.Fatalf("cluster closure: %v", out.Pairs())
	}
}

// Property: ClusterMatches is a closure — idempotent and a superset of
// the input.
func TestClusterMatchesClosureProperty(t *testing.T) {
	l, r := tables(6, 6)
	f := func(raw []uint8) bool {
		m := block.NewCandidateSet(l, r)
		for i := 0; i+1 < len(raw); i += 2 {
			m.Add(block.Pair{A: int(raw[i]) % 6, B: int(raw[i+1]) % 6})
		}
		once := ClusterMatches(m)
		for _, p := range m.Pairs() {
			if !once.Contains(p) {
				return false
			}
		}
		twice := ClusterMatches(once)
		return twice.Len() == once.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
