// Package tail is always-on tail capture for the serving tier: a
// fixed-size, lock-cheap buffer that retains the full wide event and
// span tree of the requests an operator actually asks about after the
// fact — the N slowest, every errored, and every degraded or shed
// request — without pre-enabling tracing. The buffer is windowed: it
// holds the current and the previous rotation window, so "show me the
// outlier from a few minutes ago" still works right after a rotation,
// while a slow request from yesterday cannot squat in the slow set
// forever.
//
// The cost model matters because Add sits on every request: the common
// case (an "ok" request that is not a tail candidate) is rejected with
// one atomic load and no lock, so steady-state traffic pays nanoseconds
// and only tail events take the mutex.
package tail

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emgo/internal/obs"
)

// Defaults used when Config fields are zero.
const (
	DefaultSlowN  = 16
	DefaultErrN   = 64
	DefaultWindow = 5 * time.Minute
)

// Config sizes a Buffer.
type Config struct {
	// SlowN is how many slowest requests to retain per window.
	SlowN int
	// ErrN caps the errored and the degraded/shed sets per window; when
	// a window overflows, the oldest entries are evicted and counted in
	// the snapshot's Dropped fields.
	ErrN int
	// Window is the rotation period; the buffer exposes the current and
	// the previous window.
	Window time.Duration
	// OnOutlier, when set, is called (outside the buffer lock, on the
	// request's goroutine) each time an entry displaces a retained slow
	// entry from a full heap — a genuine latency outlier, not warm-up
	// fill. The serving tier uses it to trigger a profile capture of
	// the process while the slowness is still happening.
	OnOutlier func(ev *obs.WideEvent)
}

// Entry is one captured request: its wide event plus the span tree that
// explains where the time went.
type Entry struct {
	Event *obs.WideEvent `json:"event"`
	Trace *obs.SpanData  `json:"trace,omitempty"`
}

// Snapshot is the queryable state of a Buffer: both windows merged,
// slowest-first, plus accounting for what the caps evicted.
type Snapshot struct {
	// Now and WindowStart bound the capture: entries are no older than
	// the start of the previous window.
	Now         time.Time `json:"now"`
	WindowStart time.Time `json:"window_start"`
	WindowMS    float64   `json:"window_ms"`
	// Slowest are the retained slowest requests, duration-descending.
	Slowest []*Entry `json:"slowest,omitempty"`
	// Errored are requests with outcome error/timeout, newest last.
	Errored []*Entry `json:"errored,omitempty"`
	// Degraded are degraded, shed, and draining requests, newest last.
	Degraded []*Entry `json:"degraded,omitempty"`
	// Seen counts every request offered to the buffer since creation.
	Seen int64 `json:"seen"`
	// DroppedErrored / DroppedDegraded count cap evictions in the
	// retained windows (a high number means ErrN is too small for the
	// failure rate).
	DroppedErrored  int64 `json:"dropped_errored,omitempty"`
	DroppedDegraded int64 `json:"dropped_degraded,omitempty"`
}

// window is one rotation period's capture.
type window struct {
	start time.Time
	// slow is a min-heap on Event.DurationMS: the root is the cheapest
	// retained entry, evicted first when a slower request arrives.
	slow []*Entry
	// errs and degr are bounded FIFO slices (evict front on overflow).
	errs, degr              []*Entry
	droppedErr, droppedDegr int64
}

// Buffer is the capture buffer. The nil *Buffer is valid and all
// methods no-op, matching the obs nil-handle posture.
type Buffer struct {
	cfg Config
	now func() time.Time // test seam

	// slowFloor is the current window's heap root duration once the heap
	// is full (math.Inf(-1) bits otherwise): the lock-free fast-path
	// threshold for "cannot possibly be a tail candidate".
	slowFloor atomic.Uint64
	seen      atomic.Int64

	mu        sync.Mutex
	cur, prev *window
}

// New builds a Buffer; zero Config fields take the package defaults.
func New(cfg Config) *Buffer {
	if cfg.SlowN <= 0 {
		cfg.SlowN = DefaultSlowN
	}
	if cfg.ErrN <= 0 {
		cfg.ErrN = DefaultErrN
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	b := &Buffer{cfg: cfg, now: time.Now}
	b.slowFloor.Store(math.Float64bits(math.Inf(-1)))
	return b
}

// classify reports whether the outcome belongs in the errored or
// degraded sets (and therefore always takes the slow path).
func classify(outcome string) (errored, degraded bool) {
	switch outcome {
	case obs.OutcomeError, obs.OutcomeTimeout:
		return true, false
	case obs.OutcomeDegraded, obs.OutcomeShed, obs.OutcomeDraining:
		return false, true
	}
	return false, false
}

// Add offers one finished request to the buffer. The span is the
// request's live root: its tree is materialized with Snapshot only when
// the buffer actually retains the entry, so the steady-state request
// pays no tree copy. Safe on nil and for concurrent use; the common
// non-tail case returns without locking.
func (b *Buffer) Add(ev *obs.WideEvent, span *obs.Span) {
	if b == nil || ev == nil {
		return
	}
	b.seen.Add(1)
	errored, degraded := classify(ev.Outcome)
	if !errored && !degraded &&
		ev.DurationMS <= math.Float64frombits(b.slowFloor.Load()) {
		// Fast path: an ok request no slower than the cheapest retained
		// slow entry can change nothing. The floor is a stale-tolerant
		// hint — it only ever over-admits (e.g. just after rotation),
		// never wrongly rejects, because rotation resets it to -Inf.
		return
	}
	entry := &Entry{Event: ev}

	b.mu.Lock()
	w := b.rotateLocked()
	retained := errored || degraded
	if errored {
		w.errs = appendBounded(w.errs, entry, b.cfg.ErrN, &w.droppedErr)
	}
	if degraded {
		w.degr = appendBounded(w.degr, entry, b.cfg.ErrN, &w.droppedDegr)
	}
	// An admission that displaces an entry from a *full* heap is a true
	// outlier — slower than everything already retained — as opposed to
	// warm-up fill right after start or rotation.
	heapWasFull := len(w.slow) == b.cfg.SlowN
	if b.pushSlowLocked(w, entry) {
		retained = true
	} else {
		heapWasFull = false
	}
	if retained {
		// Under b.mu so a concurrent Snapshot never observes the entry
		// with its trace half-assigned.
		entry.Trace = span.Snapshot()
	}
	b.mu.Unlock()

	if heapWasFull && b.cfg.OnOutlier != nil {
		b.cfg.OnOutlier(ev)
	}
}

// appendBounded appends to a FIFO slice capped at n, evicting the
// oldest entry and counting the drop on overflow.
func appendBounded(s []*Entry, e *Entry, n int, dropped *int64) []*Entry {
	s = append(s, e)
	if len(s) > n {
		copy(s, s[1:])
		s = s[:len(s)-1]
		*dropped++
	}
	return s
}

// pushSlowLocked admits entry to the window's slow min-heap, evicting
// the current cheapest when full, and refreshes the fast-path floor.
// It reports whether the entry was admitted.
func (b *Buffer) pushSlowLocked(w *window, e *Entry) bool {
	admitted := false
	if len(w.slow) < b.cfg.SlowN {
		w.slow = append(w.slow, e)
		siftUp(w.slow, len(w.slow)-1)
		admitted = true
	} else if e.Event.DurationMS > w.slow[0].Event.DurationMS {
		w.slow[0] = e
		siftDown(w.slow, 0)
		admitted = true
	}
	if len(w.slow) == b.cfg.SlowN {
		b.slowFloor.Store(math.Float64bits(w.slow[0].Event.DurationMS))
	}
	return admitted
}

func siftUp(h []*Entry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Event.DurationMS <= h[i].Event.DurationMS {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []*Entry, i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(h) && h[l].Event.DurationMS < h[min].Event.DurationMS {
			min = l
		}
		if r < len(h) && h[r].Event.DurationMS < h[min].Event.DurationMS {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// rotateLocked lazily advances the windows to cover now and returns the
// current one. Called with b.mu held.
func (b *Buffer) rotateLocked() *window {
	now := b.now()
	if b.cur == nil {
		b.cur = &window{start: now}
		return b.cur
	}
	age := now.Sub(b.cur.start)
	if age < b.cfg.Window {
		return b.cur
	}
	if age < 2*b.cfg.Window {
		b.prev = b.cur
	} else {
		// The buffer slept through more than a full window: nothing in
		// either window is recent enough to keep.
		b.prev = nil
	}
	b.cur = &window{start: now}
	b.slowFloor.Store(math.Float64bits(math.Inf(-1)))
	return b.cur
}

// Snapshot merges both retained windows into a queryable view. Safe on
// nil (returns an empty snapshot).
func (b *Buffer) Snapshot() Snapshot {
	if b == nil {
		return Snapshot{}
	}
	b.mu.Lock()
	w := b.rotateLocked()
	windows := []*window{w}
	if b.prev != nil {
		windows = append(windows, b.prev)
	}
	snap := Snapshot{
		Now:         b.now(),
		WindowStart: w.start,
		WindowMS:    float64(b.cfg.Window) / float64(time.Millisecond),
		Seen:        b.seen.Load(),
	}
	if b.prev != nil {
		snap.WindowStart = b.prev.start
	}
	for _, win := range windows {
		snap.Slowest = append(snap.Slowest, win.slow...)
		snap.DroppedErrored += win.droppedErr
		snap.DroppedDegraded += win.droppedDegr
	}
	// Oldest window first so the newest-last ordering holds merged.
	for i := len(windows) - 1; i >= 0; i-- {
		snap.Errored = append(snap.Errored, windows[i].errs...)
		snap.Degraded = append(snap.Degraded, windows[i].degr...)
	}
	b.mu.Unlock()

	sort.SliceStable(snap.Slowest, func(i, j int) bool {
		return snap.Slowest[i].Event.DurationMS > snap.Slowest[j].Event.DurationMS
	})
	if len(snap.Slowest) > b.cfg.SlowN {
		snap.Slowest = snap.Slowest[:b.cfg.SlowN]
	}
	return snap
}

// Handler serves the snapshot as JSON — the /debug/tail endpoint.
func (b *Buffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(b.Snapshot())
	})
}
