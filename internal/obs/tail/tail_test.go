package tail

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"emgo/internal/obs"
)

// fakeClock drives rotation deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBuffer(cfg Config) (*Buffer, *fakeClock) {
	b := New(cfg)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b.now = clk.now
	return b, clk
}

func ev(outcome string, durMS float64) *obs.WideEvent {
	return &obs.WideEvent{
		RequestID:  fmt.Sprintf("req-%s-%g", outcome, durMS),
		Route:      "/v1/match",
		Outcome:    outcome,
		DurationMS: durMS,
	}
}

func TestSlowestRetainsTopN(t *testing.T) {
	b, _ := newTestBuffer(Config{SlowN: 3})
	for i := 1; i <= 10; i++ {
		b.Add(ev(obs.OutcomeOK, float64(i)), nil)
	}
	snap := b.Snapshot()
	if len(snap.Slowest) != 3 {
		t.Fatalf("slowest len = %d, want 3", len(snap.Slowest))
	}
	want := []float64{10, 9, 8}
	for i, e := range snap.Slowest {
		if e.Event.DurationMS != want[i] {
			t.Fatalf("slowest[%d] = %g, want %g", i, e.Event.DurationMS, want[i])
		}
	}
	if snap.Seen != 10 {
		t.Fatalf("seen = %d, want 10", snap.Seen)
	}
}

func TestErroredAndDegradedAlwaysKept(t *testing.T) {
	b, _ := newTestBuffer(Config{SlowN: 2, ErrN: 8})
	b.Add(ev(obs.OutcomeError, 0.1), nil)
	b.Add(ev(obs.OutcomeTimeout, 0.2), nil)
	b.Add(ev(obs.OutcomeShed, 0.01), nil)
	b.Add(ev(obs.OutcomeDegraded, 0.02), nil)
	b.Add(ev(obs.OutcomeDraining, 0.03), nil)
	snap := b.Snapshot()
	if len(snap.Errored) != 2 {
		t.Fatalf("errored len = %d, want 2", len(snap.Errored))
	}
	if len(snap.Degraded) != 3 {
		t.Fatalf("degraded len = %d, want 3", len(snap.Degraded))
	}
}

func TestErroredCapEvictsOldest(t *testing.T) {
	b, _ := newTestBuffer(Config{ErrN: 2})
	for i := 0; i < 5; i++ {
		e := ev(obs.OutcomeError, float64(i))
		e.RequestID = fmt.Sprintf("e%d", i)
		b.Add(e, nil)
	}
	snap := b.Snapshot()
	if len(snap.Errored) != 2 {
		t.Fatalf("errored len = %d, want 2", len(snap.Errored))
	}
	if got := snap.Errored[1].Event.RequestID; got != "e4" {
		t.Fatalf("newest errored = %q, want e4", got)
	}
	if snap.DroppedErrored != 3 {
		t.Fatalf("dropped = %d, want 3", snap.DroppedErrored)
	}
}

func TestWindowRotationKeepsPreviousWindow(t *testing.T) {
	b, clk := newTestBuffer(Config{SlowN: 4, Window: time.Minute})
	b.Add(ev(obs.OutcomeOK, 100), nil)

	clk.advance(90 * time.Second) // into the next window
	b.Add(ev(obs.OutcomeOK, 5), nil)
	snap := b.Snapshot()
	if len(snap.Slowest) != 2 {
		t.Fatalf("after one rotation: slowest len = %d, want 2 (cur+prev)", len(snap.Slowest))
	}
	if snap.Slowest[0].Event.DurationMS != 100 {
		t.Fatalf("prev-window outlier lost: slowest[0] = %g", snap.Slowest[0].Event.DurationMS)
	}

	clk.advance(10 * time.Minute) // both windows stale
	snap = b.Snapshot()
	if len(snap.Slowest) != 0 {
		t.Fatalf("after expiry: slowest len = %d, want 0", len(snap.Slowest))
	}
}

func TestFastPathFloorDoesNotLoseSlowEntries(t *testing.T) {
	b, _ := newTestBuffer(Config{SlowN: 2})
	b.Add(ev(obs.OutcomeOK, 10), nil)
	b.Add(ev(obs.OutcomeOK, 20), nil)
	// Heap full; floor is 10. A 5ms ok request takes the fast path out.
	b.Add(ev(obs.OutcomeOK, 5), nil)
	// A 15ms request must displace the 10ms one.
	b.Add(ev(obs.OutcomeOK, 15), nil)
	snap := b.Snapshot()
	if len(snap.Slowest) != 2 || snap.Slowest[0].Event.DurationMS != 20 || snap.Slowest[1].Event.DurationMS != 15 {
		t.Fatalf("slowest = %+v, want [20 15]", durations(snap.Slowest))
	}
}

func durations(es []*Entry) []float64 {
	out := make([]float64, len(es))
	for i, e := range es {
		out[i] = e.Event.DurationMS
	}
	return out
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Add(ev(obs.OutcomeError, 1), nil)
	if snap := b.Snapshot(); snap.Seen != 0 || len(snap.Slowest) != 0 {
		t.Fatalf("nil buffer snapshot not empty: %+v", snap)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	b, _ := newTestBuffer(Config{SlowN: 2})
	e := ev(obs.OutcomeError, 42)
	e.Err = "boom"
	_, root := obs.NewTrace(context.Background(), "serve.http")
	root.End()
	b.Add(e, root)
	rr := httptest.NewRecorder()
	b.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/tail", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal: %v\nbody: %s", err, rr.Body.String())
	}
	if len(snap.Errored) != 1 || snap.Errored[0].Event.Err != "boom" {
		t.Fatalf("errored = %+v", snap.Errored)
	}
	if snap.Errored[0].Trace == nil || snap.Errored[0].Trace.Name != "serve.http" {
		t.Fatalf("trace not captured: %+v", snap.Errored[0].Trace)
	}
}

func TestConcurrentAdds(t *testing.T) {
	b, _ := newTestBuffer(Config{SlowN: 8, ErrN: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				out := obs.OutcomeOK
				if i%50 == 0 {
					out = obs.OutcomeError
				}
				b.Add(ev(out, float64(i%37)), nil)
			}
		}(g)
	}
	wg.Wait()
	snap := b.Snapshot()
	if snap.Seen != 1600 {
		t.Fatalf("seen = %d, want 1600", snap.Seen)
	}
	if len(snap.Slowest) == 0 {
		t.Fatal("no slow entries retained")
	}
}

func TestOnOutlierFiresOnlyOnDisplacement(t *testing.T) {
	var fired []string
	b, _ := newTestBuffer(Config{SlowN: 3, OnOutlier: func(e *obs.WideEvent) {
		fired = append(fired, e.RequestID)
	}})
	// Warm-up fill: the heap is not yet full, so admissions are not
	// outliers and must not fire the callback.
	for i := 1; i <= 3; i++ {
		b.Add(ev(obs.OutcomeOK, float64(i)), nil)
	}
	if len(fired) != 0 {
		t.Fatalf("OnOutlier fired %v during warm-up fill", fired)
	}
	// Too fast to displace anything: no callback.
	b.Add(ev(obs.OutcomeOK, 0.5), nil)
	if len(fired) != 0 {
		t.Fatalf("OnOutlier fired %v for a non-admitted request", fired)
	}
	// A true outlier displaces the heap root: exactly one callback,
	// with the outlier's own event.
	outlier := ev(obs.OutcomeOK, 100)
	b.Add(outlier, nil)
	if len(fired) != 1 || fired[0] != outlier.RequestID {
		t.Fatalf("OnOutlier fired %v, want exactly [%s]", fired, outlier.RequestID)
	}
	// An errored fast request is retained in the errored FIFO but does
	// not displace a slow entry: no callback.
	b.Add(ev(obs.OutcomeError, 0.1), nil)
	if len(fired) != 1 {
		t.Fatalf("OnOutlier fired %v for an errored non-outlier", fired)
	}
}
