// Package obs is the pipeline-wide observability layer: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms), span-based
// tracing with parent/child structure, machine-readable run reports, and
// an operational debug server (expvar + net/http/pprof). It depends only
// on the standard library.
//
// The design goal is hot-loop safety. Metrics handles are nil-safe: when
// the global registry is disabled (the default), obs.C/G/H return nil and
// every method on the nil handle is a single nil-check no-op; when
// enabled, a counter increment is one atomic add. Instrumented loops
// fetch their handles once per stage, never per item:
//
//	vec := obs.C("feature.vectors_built") // nil when disabled
//	for i := range pairs {
//	    ...
//	    vec.Inc() // nil-check only, or one atomic add
//	}
//
// Spans flow through contexts and are active only when a caller (a CLI
// flag, umetrics.RunDeployed, a test) opened a trace with NewTrace; with
// no trace in the context, StartSpan returns a nil *Span whose methods
// are all no-ops.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a monotonically increasing metric. The nil counter is a
// valid no-op, which is how disabled instrumentation stays off the
// profile.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric (queue depths, budgets).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta. Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a last-value-wins float metric (drift scores, rates).
// Reads and writes are atomic over the float's bit pattern.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. Safe on nil.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bounds are upper bounds of the
// first len(bounds) buckets; one extra overflow bucket catches the rest.
// Observe is lock-free: a binary search over the (immutable) bounds and
// one atomic add.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomicFloat
	max    atomicFloat
}

// atomicFloat is an atomic float64 built on CAS over the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := floatBits(floatFrom(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return floatFrom(f.bits.Load()) }

// storeMax raises the value to v if v is larger (CAS loop).
func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if floatFrom(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.max.storeMax(v)
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// HistogramSnapshot is the JSON form of a histogram at one instant.
type HistogramSnapshot struct {
	// Bounds are the upper bounds of the first len(Bounds) buckets; the
	// final entry of Counts is the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// P50/P90/P99/P999 are bucket-interpolated quantile estimates, filled
	// by Snapshot so run reports carry latency percentiles that diffing
	// tools (emmonitor diff) can regress against. Zero when no samples
	// were observed.
	P50  float64 `json:"p50,omitempty"`
	P90  float64 `json:"p90,omitempty"`
	P99  float64 `json:"p99,omitempty"`
	P999 float64 `json:"p999,omitempty"`
	// Max is the exact largest observed sample — the one value bucket
	// interpolation cannot resolve, and exactly the outlier tail-latency
	// work cares about.
	Max float64 `json:"max,omitempty"`
}

// Quantile estimates the q-th quantile (q in [0,1]) from the bucket
// counts by linear interpolation inside the holding bucket. Histograms
// in this repository observe non-negative measures, so the first
// bucket interpolates from zero; ranks landing in the overflow bucket
// return the last bound (the estimate cannot exceed what the buckets
// resolve).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// fillQuantiles computes the exported percentile estimates.
func (h *HistogramSnapshot) fillQuantiles() {
	if h.Count == 0 {
		return
	}
	h.P50 = h.Quantile(0.50)
	h.P90 = h.Quantile(0.90)
	h.P99 = h.Quantile(0.99)
	h.P999 = h.Quantile(0.999)
	// A quantile estimate clamped to the last bound can never exceed the
	// exact max; report the max itself when the estimate hits the clamp.
	if h.Max > 0 && h.P999 > h.Max {
		h.P999 = h.Max
	}
}

// MetricsSnapshot is the JSON form of a registry at one instant.
type MetricsSnapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry holds named metrics. Lookups take a lock, so instrumented
// code fetches handles once per stage and holds them across the loop.
// The nil registry is valid: every lookup returns the nil handle.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floatGauges[name]
	if !ok {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (bounds must be sorted ascending;
// later calls reuse the first bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every metric's current value. Safe on nil (returns
// an empty snapshot).
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.floatGauges) > 0 {
		snap.FloatGauges = make(map[string]float64, len(r.floatGauges))
		for name, g := range r.floatGauges {
			snap.FloatGauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.count.Load(),
				Sum:    h.sum.load(),
				Max:    h.max.load(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			hs.fillQuantiles()
			snap.Histograms[name] = hs
		}
	}
	return snap
}

// global is the process-wide registry; nil means observability is
// disabled and every handle lookup returns the nil no-op handle.
var global atomic.Pointer[Registry]

// Enable installs a fresh global registry when none is active and
// returns the active one. Idempotent.
func Enable() *Registry {
	for {
		if r := global.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if global.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable removes the global registry; subsequent handle lookups return
// nil no-op handles. Tests that Enable should defer Disable.
func Disable() { global.Store(nil) }

// Default returns the global registry, or nil when disabled.
func Default() *Registry { return global.Load() }

// Enabled reports whether a global registry is active.
func Enabled() bool { return global.Load() != nil }

// C returns the named counter from the global registry (nil when
// disabled).
func C(name string) *Counter { return global.Load().Counter(name) }

// G returns the named gauge from the global registry (nil when
// disabled).
func G(name string) *Gauge { return global.Load().Gauge(name) }

// FG returns the named float gauge from the global registry (nil when
// disabled).
func FG(name string) *FloatGauge { return global.Load().FloatGauge(name) }

// H returns the named histogram from the global registry (nil when
// disabled).
func H(name string, bounds []float64) *Histogram { return global.Load().Histogram(name, bounds) }
