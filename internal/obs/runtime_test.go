package obs

import (
	"testing"
	"time"
)

// TestSampleRuntimeAllocSeries pins the allocation-trajectory gauges:
// the cumulative counters land on the first scrape, and the derived
// bytes/sec rate appears from the second scrape on, once there is an
// interval to divide by.
func TestSampleRuntimeAllocSeries(t *testing.T) {
	r := Enable()
	defer Disable()

	// Reset the cross-test rate state: another test (or a previous
	// scrape) may have seeded it.
	allocRateState.mu.Lock()
	allocRateState.lastAt = time.Time{}
	allocRateState.lastallocs = 0
	allocRateState.mu.Unlock()

	SampleRuntime()
	first := r.Snapshot()
	if first.Gauges["go.alloc_bytes_total"] <= 0 {
		t.Fatalf("go.alloc_bytes_total = %d after first scrape, want > 0", first.Gauges["go.alloc_bytes_total"])
	}
	if first.Gauges["go.gc_cycles_total"] < 0 {
		t.Fatalf("go.gc_cycles_total = %d, want >= 0", first.Gauges["go.gc_cycles_total"])
	}

	// Allocate measurably, then scrape again: the rate must be derived
	// over the interval and the cumulative counter must not regress.
	sink := make([][]byte, 0, 4096)
	for i := 0; i < 4096; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	time.Sleep(10 * time.Millisecond)
	SampleRuntime()
	second := r.Snapshot()
	if second.Gauges["go.alloc_bytes_total"] < first.Gauges["go.alloc_bytes_total"] {
		t.Fatalf("go.alloc_bytes_total regressed: %d -> %d",
			first.Gauges["go.alloc_bytes_total"], second.Gauges["go.alloc_bytes_total"])
	}
	rate, ok := second.FloatGauges["go.alloc_rate_bps"]
	if !ok {
		t.Fatal("go.alloc_rate_bps absent after second scrape")
	}
	if rate <= 0 {
		t.Fatalf("go.alloc_rate_bps = %v, want > 0 after allocating ~4MB", rate)
	}
}

// TestSampleRuntimeDisabled: sampling with the registry disabled is a
// no-op, not a panic.
func TestSampleRuntimeDisabled(t *testing.T) {
	Disable()
	SampleRuntime()
}
