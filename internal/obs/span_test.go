package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestStartSpanWithoutTraceIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("no trace in ctx: span must be nil")
	}
	if ctx2 != ctx {
		t.Fatal("no trace in ctx: context must pass through")
	}
	// All methods must be safe on the nil span.
	sp.SetItems(3)
	sp.SetOutcome("ok")
	sp.Annotate("k", "v")
	sp.Event("retry", "x")
	sp.End()
	if sp.Snapshot() != nil {
		t.Fatal("nil span snapshot must be nil")
	}
	AddEvent(ctx, "retry", "x") // must not panic
}

func TestSpanTree(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "run")
	bctx, blockSpan := StartSpan(ctx, "block.join")
	blockSpan.Annotate("blocker", "attr_equiv")
	blockSpan.SetItems(42)
	_, inner := StartSpan(bctx, "block.index")
	inner.End()
	blockSpan.SetOutcome("ok")
	blockSpan.End()
	_, vec := StartSpan(ctx, "feature.vectorize")
	vec.Event("quarantine", "pair (1,2)")
	vec.SetOutcome("degraded")
	vec.End()
	root.SetOutcome("ok")
	root.End()

	d := root.Snapshot()
	if d.Name != "run" || len(d.Children) != 2 {
		t.Fatalf("root: %+v", d)
	}
	b := d.Children[0]
	if b.Name != "block.join" || b.Items != 42 || b.Attrs["blocker"] != "attr_equiv" {
		t.Fatalf("block span: %+v", b)
	}
	if len(b.Children) != 1 || b.Children[0].Name != "block.index" {
		t.Fatalf("nested span missing: %+v", b)
	}
	v := d.Children[1]
	if v.Outcome != "degraded" || len(v.Events) != 1 || v.Events[0].Kind != "quarantine" {
		t.Fatalf("vectorize span: %+v", v)
	}
	if d.DurationMS < 0 {
		t.Fatalf("duration %v", d.DurationMS)
	}

	// The tree must export as JSON.
	if _, err := json.Marshal(d); err != nil {
		t.Fatal(err)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "run")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "worker")
			sp.Event("tick", "")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Snapshot().Children); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}

func TestSnapshotOfUnfinishedSpan(t *testing.T) {
	_, root := NewTrace(context.Background(), "run")
	d := root.Snapshot() // no End yet
	if d == nil || d.DurationMS < 0 {
		t.Fatalf("snapshot of live span: %+v", d)
	}
}
