package obs

import (
	"context"
	"testing"
)

var untracedCtx = context.Background()

// BenchmarkCounterDisabled guards the tentpole promise: with the
// registry disabled the hot-path handle is nil and Add must cost a
// single nil-check — well under 5ns/op. A regression here means some
// change put work on the disabled path that every blocking/vectorize/
// predict loop in the repository would pay for nothing.
func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter // what obs.C returns while disabled
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterEnabled is the enabled cost: one atomic add.
func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve is the enabled histogram cost: a binary
// search over fixed bounds plus atomic adds.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench", []float64{1, 5, 10, 50, 100, 500, 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1200))
	}
}

// BenchmarkStartSpanUntraced is the disabled tracing cost: one context
// value lookup.
func BenchmarkStartSpanUntraced(b *testing.B) {
	ctx := untracedCtx
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench")
		sp.End()
	}
}
