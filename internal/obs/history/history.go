// Package history is the run-history half of quality observability: an
// append-only JSONL store of run reports (one compact JSON document per
// line) plus the report-diffing machinery behind the emmonitor CLI. A
// deployed matcher appends every run's report; cron/CI then asks "how
// does today's run compare to yesterday's?" (Diff) and "has quality
// degraded past the thresholds?" (the drift package's Evaluate over the
// embedded profiles).
//
// Appends are O_APPEND writes of a single line followed by fsync, so
// concurrent runs on one machine interleave whole records and a crash
// can only lose or truncate the final line — List skips lines that do
// not parse rather than failing the whole history.
package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"emgo/internal/obs"
)

// FileName is the history file inside a store directory.
const FileName = "runs.jsonl"

// Store is an append-only run-report history rooted at a directory.
type Store struct {
	path string
}

// Open creates (if needed) the store directory and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("history: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	return &Store{path: filepath.Join(dir, FileName)}, nil
}

// Path returns the underlying JSONL file path.
func (s *Store) Path() string { return s.path }

// Append writes one report as a single JSONL line and fsyncs it. The
// report is marshaled compactly; a report that cannot be marshaled is an
// error, never a partial line.
func (s *Store) Append(rep *obs.Report) error {
	if rep == nil {
		return fmt.Errorf("history: nil report")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("history: marshal report: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("history: append: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("history: sync: %w", err)
	}
	return nil
}

// List returns every parseable report in append order. Corrupt lines
// (a crash-truncated tail, an interleaved partial write) are skipped,
// not fatal; their count is returned so callers can surface it.
func (s *Store) List() ([]*obs.Report, int, error) {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("history: %w", err)
	}
	defer f.Close()
	var out []*obs.Report
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rep := &obs.Report{}
		if err := json.Unmarshal(line, rep); err != nil {
			skipped++
			continue
		}
		out = append(out, rep)
	}
	if err := sc.Err(); err != nil {
		return out, skipped, fmt.Errorf("history: scan: %w", err)
	}
	return out, skipped, nil
}

// Last returns the most recent report, or nil when the history is empty.
func (s *Store) Last() (*obs.Report, error) {
	reps, _, err := s.List()
	if err != nil {
		return nil, err
	}
	if len(reps) == 0 {
		return nil, nil
	}
	return reps[len(reps)-1], nil
}

// DeltaRow is one changed value in a report diff.
type DeltaRow struct {
	// Name identifies the value ("stage.blocked duration_ms",
	// "counter ml.predictions", "histogram workflow.stage_ms p99").
	Name string `json:"name"`
	// A and B are the values in the two reports (NaN renders as "-"
	// when the value is absent on one side).
	A float64 `json:"a"`
	B float64 `json:"b"`
}

// Delta returns B - A (0 when either side is absent).
func (r DeltaRow) Delta() float64 {
	if math.IsNaN(r.A) || math.IsNaN(r.B) {
		return 0
	}
	return r.B - r.A
}

// Diff is the comparison of two run reports.
type Diff struct {
	// NameA/NameB identify the two runs.
	NameA string `json:"name_a"`
	NameB string `json:"name_b"`
	// OutcomeA/OutcomeB are the run outcomes.
	OutcomeA string `json:"outcome_a"`
	OutcomeB string `json:"outcome_b"`
	// VerdictA/VerdictB are the quality verdicts ("" when a run had no
	// quality section).
	VerdictA string `json:"verdict_a"`
	VerdictB string `json:"verdict_b"`
	// Stages are per-stage wall-time changes (from the span trees).
	Stages []DeltaRow `json:"stages,omitempty"`
	// Counters are metric counter changes.
	Counters []DeltaRow `json:"counters,omitempty"`
	// Quantiles are histogram percentile changes (p50/p90/p99/p99.9/max).
	Quantiles []DeltaRow `json:"quantiles,omitempty"`
	// Signals are quality-signal value changes.
	Signals []DeltaRow `json:"signals,omitempty"`
}

// stageDurations flattens a span tree into name → duration, keeping the
// first occurrence of each name (stage spans are unique per run).
func stageDurations(sd *obs.SpanData, into map[string]float64) {
	if sd == nil {
		return
	}
	if _, seen := into[sd.Name]; !seen {
		into[sd.Name] = sd.DurationMS
	}
	for _, c := range sd.Children {
		stageDurations(c, into)
	}
}

// deltas builds sorted DeltaRows from two name → value maps, keeping
// rows where the value changed or exists on only one side.
func deltas(prefix string, a, b map[string]float64) []DeltaRow {
	names := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		names[k] = struct{}{}
	}
	for k := range b {
		names[k] = struct{}{}
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []DeltaRow
	for _, k := range keys {
		av, aok := a[k]
		bv, bok := b[k]
		if !aok {
			av = math.NaN()
		}
		if !bok {
			bv = math.NaN()
		}
		if aok && bok && av == bv {
			continue
		}
		out = append(out, DeltaRow{Name: prefix + k, A: av, B: bv})
	}
	return out
}

// DiffReports compares two run reports: stage wall times, counters,
// histogram percentiles, and quality signals.
func DiffReports(a, b *obs.Report) *Diff {
	d := &Diff{NameA: a.Name, NameB: b.Name, OutcomeA: a.Outcome, OutcomeB: b.Outcome}

	sa := map[string]float64{}
	sb := map[string]float64{}
	stageDurations(a.Trace, sa)
	stageDurations(b.Trace, sb)
	d.Stages = deltas("", sa, sb)

	ca := map[string]float64{}
	cb := map[string]float64{}
	if a.Metrics != nil {
		for k, v := range a.Metrics.Counters {
			ca[k] = float64(v)
		}
	}
	if b.Metrics != nil {
		for k, v := range b.Metrics.Counters {
			cb[k] = float64(v)
		}
	}
	d.Counters = deltas("", ca, cb)

	qa := map[string]float64{}
	qb := map[string]float64{}
	quantiles := func(m *obs.MetricsSnapshot, into map[string]float64) {
		if m == nil {
			return
		}
		for k, h := range m.Histograms {
			if h.Count == 0 {
				continue
			}
			into[k+" p50"] = h.P50
			into[k+" p90"] = h.P90
			into[k+" p99"] = h.P99
			into[k+" p99.9"] = h.P999
			into[k+" max"] = h.Max
		}
	}
	quantiles(a.Metrics, qa)
	quantiles(b.Metrics, qb)
	d.Quantiles = deltas("", qa, qb)

	ga := map[string]float64{}
	gb := map[string]float64{}
	if a.Quality != nil {
		d.VerdictA = a.Quality.Verdict
		for _, s := range a.Quality.Signals {
			ga[s.Name] = s.Value
		}
	}
	if b.Quality != nil {
		d.VerdictB = b.Quality.Verdict
		for _, s := range b.Quality.Signals {
			gb[s.Name] = s.Value
		}
	}
	d.Signals = deltas("", ga, gb)
	return d
}

// renderVal renders one side of a delta row ("-" for absent).
func renderVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%g", v)
}

// Render writes the diff as an aligned human-readable table.
func (d *Diff) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "run A: %s (outcome %s", d.NameA, d.OutcomeA); err != nil {
		return err
	}
	if d.VerdictA != "" {
		fmt.Fprintf(w, ", quality %s", d.VerdictA) //nolint:errcheck
	}
	fmt.Fprintf(w, ")\nrun B: %s (outcome %s", d.NameB, d.OutcomeB) //nolint:errcheck
	if d.VerdictB != "" {
		fmt.Fprintf(w, ", quality %s", d.VerdictB) //nolint:errcheck
	}
	if _, err := fmt.Fprintln(w, ")"); err != nil {
		return err
	}
	section := func(title string, rows []DeltaRow) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", title) //nolint:errcheck
		for _, r := range rows {
			fmt.Fprintf(w, "  %-44s %12s -> %-12s (%+g)\n", //nolint:errcheck
				r.Name, renderVal(r.A), renderVal(r.B), r.Delta())
		}
	}
	section("stage wall time (ms)", d.Stages)
	section("counters", d.Counters)
	section("histogram percentiles", d.Quantiles)
	section("quality signals", d.Signals)
	if len(d.Stages)+len(d.Counters)+len(d.Quantiles)+len(d.Signals) == 0 {
		if _, err := fmt.Fprintln(w, "no differences"); err != nil {
			return err
		}
	}
	return nil
}
