package history

import (
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"emgo/internal/obs"
)

func sampleReport(name string, counters map[string]int64) *obs.Report {
	snap := &obs.MetricsSnapshot{Counters: counters}
	return &obs.Report{
		Name: name, Outcome: "ok",
		StartedAt: time.Unix(100, 0), FinishedAt: time.Unix(101, 0),
		Metrics: snap,
	}
}

func TestStoreAppendAndList(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if reps, skipped, err := s.List(); err != nil || len(reps) != 0 || skipped != 0 {
		t.Fatalf("fresh store: %v %d %d", err, len(reps), skipped)
	}
	if last, err := s.Last(); err != nil || last != nil {
		t.Fatalf("fresh store Last: %v %v", last, err)
	}

	for i, name := range []string{"run-a", "run-b", "run-c"} {
		if err := s.Append(sampleReport(name, map[string]int64{"n": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	reps, skipped, err := s.List()
	if err != nil || skipped != 0 {
		t.Fatalf("List: %v, %d skipped", err, skipped)
	}
	if len(reps) != 3 || reps[0].Name != "run-a" || reps[2].Name != "run-c" {
		t.Fatalf("append order lost: %+v", reps)
	}
	last, err := s.Last()
	if err != nil || last.Name != "run-c" {
		t.Fatalf("Last = %+v, %v", last, err)
	}
}

func TestStoreSkipsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(sampleReport("good-1", nil)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash-truncated line followed by a good append.
	f, err := os.OpenFile(s.Path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"name":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n") //nolint:errcheck
	f.Close()
	if err := s.Append(sampleReport("good-2", nil)); err != nil {
		t.Fatal(err)
	}
	reps, skipped, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(reps) != 2 || reps[1].Name != "good-2" {
		t.Fatalf("corrupt-line handling: %d skipped, reps %+v", skipped, reps)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}

func TestAppendRejectsNil(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(nil); err == nil {
		t.Fatal("Append accepted nil")
	}
}

func TestDiffReports(t *testing.T) {
	a := sampleReport("run-a", map[string]int64{"ml.predictions": 100, "only_a": 1})
	a.Trace = &obs.SpanData{Name: "workflow", DurationMS: 100, Children: []*obs.SpanData{
		{Name: "stage.blocked", DurationMS: 40},
		{Name: "stage.learned", DurationMS: 60},
	}}
	a.Metrics.Histograms = map[string]obs.HistogramSnapshot{
		"workflow.stage_ms": {Count: 10, P50: 5, P90: 9, P99: 10},
	}
	a.Quality = &obs.QualityData{Verdict: "ok", Signals: []obs.QualitySignal{{Name: "psi.scores", Value: 0.01}}}

	b := sampleReport("run-b", map[string]int64{"ml.predictions": 150, "only_b": 2})
	b.Trace = &obs.SpanData{Name: "workflow", DurationMS: 130, Children: []*obs.SpanData{
		{Name: "stage.blocked", DurationMS: 40}, // unchanged: not in diff
		{Name: "stage.learned", DurationMS: 90},
	}}
	b.Metrics.Histograms = map[string]obs.HistogramSnapshot{
		"workflow.stage_ms": {Count: 12, P50: 6, P90: 9, P99: 30},
	}
	b.Quality = &obs.QualityData{Verdict: "warn", Signals: []obs.QualitySignal{{Name: "psi.scores", Value: 0.15}}}

	d := DiffReports(a, b)
	if d.VerdictA != "ok" || d.VerdictB != "warn" {
		t.Fatalf("verdicts: %q -> %q", d.VerdictA, d.VerdictB)
	}
	find := func(rows []DeltaRow, name string) *DeltaRow {
		for i := range rows {
			if rows[i].Name == name {
				return &rows[i]
			}
		}
		return nil
	}
	if r := find(d.Stages, "stage.learned"); r == nil || r.Delta() != 30 {
		t.Fatalf("stage.learned delta: %+v", r)
	}
	if r := find(d.Stages, "stage.blocked"); r != nil {
		t.Fatalf("unchanged stage should not appear: %+v", r)
	}
	if r := find(d.Counters, "ml.predictions"); r == nil || r.Delta() != 50 {
		t.Fatalf("counter delta: %+v", r)
	}
	if r := find(d.Counters, "only_a"); r == nil || !math.IsNaN(r.B) || r.Delta() != 0 {
		t.Fatalf("one-sided counter: %+v", r)
	}
	if r := find(d.Quantiles, "workflow.stage_ms p99"); r == nil || r.Delta() != 20 {
		t.Fatalf("p99 delta: %+v", r)
	}
	if r := find(d.Quantiles, "workflow.stage_ms p90"); r != nil {
		t.Fatalf("unchanged percentile should not appear: %+v", r)
	}
	if r := find(d.Signals, "psi.scores"); r == nil || math.Abs(r.Delta()-0.14) > 1e-12 {
		t.Fatalf("signal delta: %+v", r)
	}

	var sb strings.Builder
	if err := d.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"run-a", "run-b", "quality warn", "stage.learned", "ml.predictions", "p99", "psi.scores", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffIdenticalReportsRendersNoDifferences(t *testing.T) {
	a := sampleReport("same", map[string]int64{"n": 1})
	d := DiffReports(a, a)
	var sb strings.Builder
	if err := d.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no differences") {
		t.Fatalf("identical reports rendered:\n%s", sb.String())
	}
}
