package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestReportRoundTrip(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "emmatch")
	_, sp := StartSpan(ctx, "stage.blocked")
	sp.SetItems(120)
	sp.SetOutcome("ok")
	sp.End()
	root.SetOutcome("degraded")
	root.End()

	r := NewRegistry()
	r.Counter("block.pairs_blocked").Add(120)
	r.Gauge("label.pending").Set(3)
	r.Histogram("workflow.stage_ms", []float64{1, 10}).Observe(4)
	snap := r.Snapshot()

	rep := &Report{
		Name:       "emmatch",
		StartedAt:  time.Now().Add(-time.Second),
		FinishedAt: time.Now(),
		Outcome:    "degraded",
		Trace:      root.Snapshot(),
		Metrics:    &snap,
		Provenance: []ProvEntry{
			{Step: "blocked", Detail: "union of blockers", Count: 120},
			{Step: "learned", Detail: "quarantined pair (1,2)", Count: 119, Outcome: "degraded"},
		},
		Quarantined: []string{"1,2"},
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rep.Name || got.Outcome != "degraded" {
		t.Fatalf("round trip header: %+v", got)
	}
	if got.Trace == nil || len(got.Trace.Children) != 1 || got.Trace.Children[0].Items != 120 {
		t.Fatalf("round trip trace: %+v", got.Trace)
	}
	if got.Metrics == nil || got.Metrics.Counters["block.pairs_blocked"] != 120 {
		t.Fatalf("round trip metrics: %+v", got.Metrics)
	}
	if len(got.Provenance) != 2 || got.Provenance[1].Outcome != "degraded" {
		t.Fatalf("round trip provenance: %+v", got.Provenance)
	}
	if len(got.Quarantined) != 1 || got.Quarantined[0] != "1,2" {
		t.Fatalf("round trip quarantine: %+v", got.Quarantined)
	}
}

func TestReportWriteFile(t *testing.T) {
	rep := &Report{Name: "x", Outcome: "ok"}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.Outcome != "ok" {
		t.Fatalf("got %+v", got)
	}
}

func TestParseReportRejectsGarbage(t *testing.T) {
	if _, err := ParseReport([]byte("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
}

// TestReportWellFormedWithOutOfOrderStageEnds drives many concurrent
// stage spans that start and end out of order (later stages finishing
// before earlier ones) while metrics are written from the same
// goroutines, then asserts the resulting report is well-formed JSON that
// round-trips with every span accounted for. Run under -race in tier 2,
// this is the guard that Result.Report stays coherent when parallel
// stage workers interleave arbitrarily.
func TestReportWellFormedWithOutOfOrderStageEnds(t *testing.T) {
	Disable()
	reg := Enable()
	defer Disable()

	ctx, root := NewTrace(context.Background(), "race")
	const workers = 16
	const spansPerWorker = 25

	var wg sync.WaitGroup
	release := make(chan struct{})
	ends := make(chan *Span, workers*spansPerWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-release
			for i := 0; i < spansPerWorker; i++ {
				sctx, sp := StartSpan(ctx, fmt.Sprintf("stage.w%d_%d", w, i))
				sp.SetItems(i)
				sp.Annotate("worker", fmt.Sprint(w))
				_, child := StartSpan(sctx, "inner")
				reg.Counter("race.ops").Inc()
				reg.Histogram("race.ms", []float64{1, 10, 100}).Observe(float64(i))
				child.End()
				sp.SetOutcome("ok")
				// Defer half the End calls so spans close out of start
				// order, across goroutines.
				if i%2 == 0 {
					sp.End()
				} else {
					ends <- sp
				}
			}
		}(w)
	}
	close(release)
	wg.Wait()
	close(ends)
	for sp := range ends {
		sp.End()
	}
	root.SetOutcome("ok")
	root.End()

	snap := reg.Snapshot()
	rep := &Report{
		Name: "race", StartedAt: time.Now(), FinishedAt: time.Now(),
		Outcome: "ok", Trace: root.Snapshot(), Metrics: &snap,
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatalf("report did not marshal: %v", err)
	}
	if !json.Valid(data) {
		t.Fatal("report is not valid JSON")
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatalf("report did not round-trip: %v", err)
	}
	if len(got.Trace.Children) != workers*spansPerWorker {
		t.Fatalf("trace has %d stage spans, want %d", len(got.Trace.Children), workers*spansPerWorker)
	}
	for _, c := range got.Trace.Children {
		if c.Name == "" || c.Outcome != "ok" || len(c.Children) != 1 {
			t.Fatalf("malformed stage span: %+v", c)
		}
	}
	if got.Metrics.Counters["race.ops"] != workers*spansPerWorker {
		t.Fatalf("counter = %d, want %d", got.Metrics.Counters["race.ops"], workers*spansPerWorker)
	}
}
