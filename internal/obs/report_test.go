package obs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestReportRoundTrip(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "emmatch")
	_, sp := StartSpan(ctx, "stage.blocked")
	sp.SetItems(120)
	sp.SetOutcome("ok")
	sp.End()
	root.SetOutcome("degraded")
	root.End()

	r := NewRegistry()
	r.Counter("block.pairs_blocked").Add(120)
	r.Gauge("label.pending").Set(3)
	r.Histogram("workflow.stage_ms", []float64{1, 10}).Observe(4)
	snap := r.Snapshot()

	rep := &Report{
		Name:       "emmatch",
		StartedAt:  time.Now().Add(-time.Second),
		FinishedAt: time.Now(),
		Outcome:    "degraded",
		Trace:      root.Snapshot(),
		Metrics:    &snap,
		Provenance: []ProvEntry{
			{Step: "blocked", Detail: "union of blockers", Count: 120},
			{Step: "learned", Detail: "quarantined pair (1,2)", Count: 119, Outcome: "degraded"},
		},
		Quarantined: []string{"1,2"},
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rep.Name || got.Outcome != "degraded" {
		t.Fatalf("round trip header: %+v", got)
	}
	if got.Trace == nil || len(got.Trace.Children) != 1 || got.Trace.Children[0].Items != 120 {
		t.Fatalf("round trip trace: %+v", got.Trace)
	}
	if got.Metrics == nil || got.Metrics.Counters["block.pairs_blocked"] != 120 {
		t.Fatalf("round trip metrics: %+v", got.Metrics)
	}
	if len(got.Provenance) != 2 || got.Provenance[1].Outcome != "degraded" {
		t.Fatalf("round trip provenance: %+v", got.Provenance)
	}
	if len(got.Quarantined) != 1 || got.Quarantined[0] != "1,2" {
		t.Fatalf("round trip quarantine: %+v", got.Quarantined)
	}
}

func TestReportWriteFile(t *testing.T) {
	rep := &Report{Name: "x", Outcome: "ok"}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.Outcome != "ok" {
		t.Fatalf("got %+v", got)
	}
}

func TestParseReportRejectsGarbage(t *testing.T) {
	if _, err := ParseReport([]byte("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
}
