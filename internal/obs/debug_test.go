package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerServesExpvarAndPprof(t *testing.T) {
	Disable()
	reg := Enable()
	defer Disable()
	reg.Counter("block.pairs_blocked").Add(7)

	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, vars)
	}
	raw, ok := doc["em_metrics"]
	if !ok {
		t.Fatalf("em_metrics missing from expvar:\n%s", vars)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["block.pairs_blocked"] != 7 {
		t.Fatalf("live counter missing: %+v", snap)
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", idx)
	}
}

func TestDebugServerCloseNil(t *testing.T) {
	var d *DebugServer
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
