package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

func TestDebugServerServesExpvarAndPprof(t *testing.T) {
	leakcheck.Check(t)
	Disable()
	reg := Enable()
	defer Disable()
	reg.Counter("block.pairs_blocked").Add(7)

	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, vars)
	}
	raw, ok := doc["em_metrics"]
	if !ok {
		t.Fatalf("em_metrics missing from expvar:\n%s", vars)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["block.pairs_blocked"] != 7 {
		t.Fatalf("live counter missing: %+v", snap)
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", idx)
	}
}

func TestDebugServerCloseNil(t *testing.T) {
	var d *DebugServer
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDebugServerServesPrometheus(t *testing.T) {
	Disable()
	reg := Enable()
	defer Disable()
	reg.Counter("ml.predictions").Add(11)
	reg.FloatGauge("drift.psi").Set(0.5)

	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"em_ml_predictions 11", "em_drift_psi 0.5"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDebugServerShutdownOnContextCancel(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := StartDebugServerCtx(ctx, "127.0.0.1:0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// Live before cancellation.
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("server not serving before cancel: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop within 5s of context cancellation")
	}

	// The listener must be released: new connections are refused.
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}

	// Shutdown/Close after the context drain are idempotent no-ops.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDebugServerShutdownDrainsInFlight(t *testing.T) {
	leakcheck.Check(t)
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	srv.srv.Handler.(*http.ServeMux).HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		<-release
		w.Write([]byte("done")) //nolint:errcheck
	})

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()

	// Let the request reach the handler, then shut down while it is in
	// flight and release it inside the drain window.
	time.Sleep(100 * time.Millisecond)
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "done" {
		t.Fatalf("in-flight request not drained: body %q err %v", r.body, r.err)
	}
}
