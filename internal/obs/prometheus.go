package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// This file renders the metrics registry in the Prometheus text
// exposition format (version 0.0.4), so the debug server's /metrics
// endpoint can be scraped by a stock Prometheus (or curl) alongside the
// expvar JSON at /debug/vars. Only the standard library is used; names
// are sanitized ("block.pairs_blocked" → "em_block_pairs_blocked") and
// histograms expose the conventional _bucket/_sum/_count series with
// cumulative le labels.

// promName sanitizes a registry metric name into a Prometheus metric
// name under the em_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("em_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedKeys returns the map keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	for _, name := range sortedKeys(snap.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.FloatGauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, snap.FloatGauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, bound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promHandler serves the global registry as Prometheus text exposition;
// it reads the registry at request time, so a server started before
// Enable reports live values afterwards (an empty body when disabled).
// Each scrape refreshes the go.* runtime gauges first, so saturation is
// visible next to the service metrics without a sampling goroutine.
func promHandler(w http.ResponseWriter, _ *http.Request) {
	SampleRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, Default().Snapshot())
}
