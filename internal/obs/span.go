package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed unit of pipeline work (a blocker join, a vectorize
// fan-out, a workflow stage). Spans nest: children created through
// StartSpan carry parent/child structure into the exported trace tree.
// The nil *Span is valid and every method on it is a no-op, so
// instrumented code never checks whether tracing is active.
type Span struct {
	trace *trace

	name     string
	start    time.Time
	end      time.Time
	items    int64
	outcome  string
	attrs    map[string]string
	events   []EventData
	children []*Span
}

// trace owns the mutex all spans of one tree share. Stage fan-outs touch
// spans from worker goroutines, so every mutation locks.
type trace struct{ mu sync.Mutex }

type spanKey struct{}

// NewTrace opens a trace rooted at a span with the given name and
// returns a context carrying it. The caller ends the root with End and
// exports it with Snapshot.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	root := &Span{trace: &trace{}, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, root), root
}

// SpanFromContext returns the active span, or nil when the context
// carries no trace.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's active span and returns a
// context with the child active. With no trace in ctx it returns ctx
// and a nil span, so untraced runs pay only a context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := &Span{trace: parent.trace, name: name, start: time.Now()}
	parent.trace.mu.Lock()
	parent.children = append(parent.children, child)
	parent.trace.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, child), child
}

// End marks the span finished. Later Ends are ignored. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.trace.mu.Unlock()
}

// SetItems records how many work items the span processed (pairs
// blocked, vectors built, rows predicted). Safe on nil.
func (s *Span) SetItems(n int) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.items = int64(n)
	s.trace.mu.Unlock()
}

// SetOutcome records how the span ended (the workflow outcome
// vocabulary: ok / retried / degraded / aborted). Safe on nil.
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.outcome = outcome
	s.trace.mu.Unlock()
}

// Annotate attaches a key/value attribute (blocker name, matcher name).
// Safe on nil.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.trace.mu.Unlock()
}

// Event appends a timestamped event (a retry, a fault trip, a
// quarantine decision) to the span. Safe on nil.
func (s *Span) Event(kind, detail string) {
	if s == nil {
		return
	}
	e := EventData{Time: time.Now(), Kind: kind, Detail: detail}
	s.trace.mu.Lock()
	s.events = append(s.events, e)
	s.trace.mu.Unlock()
}

// AddEvent appends an event to the context's active span; a no-op when
// no trace is active.
func AddEvent(ctx context.Context, kind, detail string) {
	SpanFromContext(ctx).Event(kind, detail)
}

// EventData is one timestamped span event in the exported trace.
type EventData struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// SpanData is the JSON form of a span subtree.
type SpanData struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurationMS is wall time in milliseconds; for an unfinished span it
	// is the time elapsed when the snapshot was taken.
	DurationMS float64           `json:"duration_ms"`
	Items      int64             `json:"items,omitempty"`
	Outcome    string            `json:"outcome,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []EventData       `json:"events,omitempty"`
	Children   []*SpanData       `json:"children,omitempty"`
}

// Snapshot exports the span and its descendants as a trace tree. Safe
// on nil (returns nil).
func (s *Span) Snapshot() *SpanData {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Span) snapshotLocked() *SpanData {
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	d := &SpanData{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
		Items:      s.items,
		Outcome:    s.outcome,
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	if len(s.events) > 0 {
		d.Events = append([]EventData(nil), s.events...)
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.snapshotLocked())
	}
	return d
}

// StageDurations flattens the span's descendants into stage-name →
// wall-ms for a wide event's Stages field, without materializing a full
// Snapshot tree — the per-request path calls this on every request, so
// it allocates only the result map. Semantics match the package-level
// StageDurations: first occurrence of each name wins, the receiver
// (root) is skipped, unfinished spans are measured to now. Safe on nil.
func (s *Span) StageDurations() map[string]float64 {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if len(s.children) == 0 {
		return nil
	}
	var now time.Time
	out := make(map[string]float64, len(s.children))
	var walk func(*Span)
	walk = func(sp *Span) {
		if _, seen := out[sp.name]; !seen {
			end := sp.end
			if end.IsZero() {
				if now.IsZero() {
					now = time.Now()
				}
				end = now
			}
			out[sp.name] = float64(end.Sub(sp.start)) / float64(time.Millisecond)
		}
		for _, c := range sp.children {
			walk(c)
		}
	}
	for _, c := range s.children {
		walk(c)
	}
	return out
}
