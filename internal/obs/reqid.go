package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Request identity: every served request carries one ID from the moment
// it enters the HTTP layer until its wide event is written, threaded
// through context so spans, fault events, and job provenance can all be
// joined back to the request that caused them. IDs are either minted
// here (16 hex chars of crypto randomness) or propagated from a
// client-supplied X-Request-Id header after sanitization — a caller's
// tracing system keeps its join key, but only within strict length and
// charset bounds so a hostile header can never smuggle log-breaking
// bytes into the access log.

// MaxRequestIDLen caps propagated request IDs. Anything longer is
// rejected (and replaced with a server-minted ID) rather than truncated,
// so two distinct client IDs can never collide by truncation.
const MaxRequestIDLen = 64

type requestIDKey struct{}

// reqSeq breaks ties when the random source fails (it practically
// cannot); IDs must never be empty or duplicated within a process.
var reqSeq atomic.Int64

// NewRequestID mints a 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a process-unique counter; "r" keeps it from ever
		// colliding with the hex form.
		return "r" + hex.EncodeToString([]byte{byte(reqSeq.Add(1))})
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID validates a client-supplied request ID: at most
// MaxRequestIDLen bytes of [0-9A-Za-z._-]. It returns the ID and true
// when acceptable, "" and false otherwise (empty input included) — the
// caller mints a fresh ID then.
func SanitizeRequestID(raw string) (string, bool) {
	if raw == "" || len(raw) > MaxRequestIDLen {
		return "", false
	}
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return "", false
		}
	}
	return raw, true
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID ("" when none).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
