package obs

import (
	"sync"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pairs")
	c.Add(3)
	r.Counter("pairs").Inc() // same counter by name
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("pending")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	h := r.Histogram("ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 5060.5 {
		t.Fatalf("hist sum = %v, want 5060.5", h.Sum())
	}

	snap := r.Snapshot()
	if snap.Counters["pairs"] != 4 || snap.Gauges["pending"] != 6 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	hs := snap.Histograms["ms"]
	want := []int64{1, 2, 1, 1}
	if len(hs.Counts) != len(want) {
		t.Fatalf("bucket counts %v, want %v", hs.Counts, want)
	}
	for i := range want {
		if hs.Counts[i] != want[i] {
			t.Fatalf("bucket counts %v, want %v", hs.Counts, want)
		}
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestGlobalEnableDisable(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("expected disabled start")
	}
	if C("x") != nil || G("x") != nil || H("x", nil) != nil {
		t.Fatal("disabled global must return nil handles")
	}
	r := Enable()
	defer Disable()
	if !Enabled() || Default() != r {
		t.Fatal("Enable must install the default registry")
	}
	if Enable() != r {
		t.Fatal("Enable must be idempotent")
	}
	C("x").Add(2)
	if r.Counter("x").Value() != 2 {
		t.Fatal("global counter must write into the default registry")
	}
}
