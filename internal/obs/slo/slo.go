// Package slo turns the serving tier's request stream into answerable
// reliability questions: declarative objectives (availability, latency
// thresholds) are evaluated over rolling windows into multi-window burn
// rates — the Google-SRE alerting idiom where a page requires the error
// budget to be burning fast over BOTH a short window (you are on fire
// right now) and a long window (it is not a blip). The output feeds
// /v1/status, /metrics, and the emmonitor slo check, so the same
// numbers drive dashboards, scrapes, and CI gates.
//
// The tracker is a fixed ring of 10-second buckets covering the slow
// window; Observe is O(1) under a mutex and Evaluate is a linear scan
// of at most slowWindow/10s buckets, cheap enough to run on every
// status request.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"emgo/internal/obs"
)

// Objective kinds.
const (
	KindAvailability = "availability"
	KindLatency      = "latency"
)

// Defaults for the evaluation windows and the paging burn threshold.
// 14.4 is the classic fast-burn factor: at that rate a 30-day error
// budget is gone in ~2 days.
const (
	DefaultFastWindow    = 5 * time.Minute
	DefaultSlowWindow    = time.Hour
	DefaultBurnThreshold = 14.4

	bucketSize = 10 * time.Second
)

// Objective is one declarative reliability target.
type Objective struct {
	// Name identifies the objective in reports and metrics
	// ("availability", "latency_250ms").
	Name string `json:"name"`
	// Kind is KindAvailability or KindLatency.
	Kind string `json:"kind"`
	// Target is the success percentage the objective demands (99.9 means
	// an error budget of 0.1%).
	Target float64 `json:"target"`
	// ThresholdMS is the latency bound for KindLatency: a request slower
	// than this burns budget.
	ThresholdMS float64 `json:"threshold_ms,omitempty"`
}

// budget is the tolerated bad fraction (1 - target%).
func (o Objective) budget() float64 { return 1 - o.Target/100 }

// DefaultObjectives is the always-on objective set used when the
// operator configures none: three nines of availability and 95% of
// requests under half a second.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "availability", Kind: KindAvailability, Target: 99.9},
		{Name: "latency_500ms", Kind: KindLatency, Target: 95, ThresholdMS: 500},
	}
}

// ParseObjectives parses the -slo flag syntax: a comma-separated list
// of "availability=TARGET" and "latency=DURATION@TARGET" clauses, e.g.
//
//	availability=99.9,latency=250ms@99
//
// means "99.9% of requests succeed, and 99% complete within 250ms".
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("slo: %q: want kind=value", clause)
		}
		switch kind {
		case KindAvailability:
			target, err := parseTarget(val)
			if err != nil {
				return nil, fmt.Errorf("slo: %q: %w", clause, err)
			}
			out = append(out, Objective{Name: KindAvailability, Kind: KindAvailability, Target: target})
		case KindLatency:
			durStr, targetStr, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("slo: %q: want latency=DURATION@TARGET", clause)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo: %q: bad duration %q", clause, durStr)
			}
			target, err := parseTarget(targetStr)
			if err != nil {
				return nil, fmt.Errorf("slo: %q: %w", clause, err)
			}
			out = append(out, Objective{
				Name:        "latency_" + strings.ReplaceAll(durStr, ".", "_"),
				Kind:        KindLatency,
				Target:      target,
				ThresholdMS: float64(d) / float64(time.Millisecond),
			})
		default:
			return nil, fmt.Errorf("slo: %q: unknown objective kind %q", clause, kind)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: no objectives in %q", s)
	}
	names := map[string]bool{}
	for _, o := range out {
		if names[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		names[o.Name] = true
	}
	return out, nil
}

// parseTarget parses a success percentage in (0, 100).
func parseTarget(s string) (float64, error) {
	t, err := strconv.ParseFloat(s, 64)
	if err != nil || t <= 0 || t >= 100 {
		return 0, fmt.Errorf("bad target %q (want a percentage in (0,100))", s)
	}
	return t, nil
}

// Config sizes a Tracker.
type Config struct {
	// Objectives to track; nil selects DefaultObjectives.
	Objectives []Objective
	// FastWindow / SlowWindow are the multi-window burn-rate horizons.
	FastWindow, SlowWindow time.Duration
	// BurnThreshold is the paging burn rate; an objective breaches only
	// when BOTH windows burn at or above it.
	BurnThreshold float64
}

// bucket is one 10-second slice of the request stream.
type bucket struct {
	stamp  int64 // unix time / bucketSize; 0 = never used
	total  int64
	errors int64
	// over[i] counts requests slower than objectives' latency threshold
	// i (indexed by Tracker.latIdx order).
	over []int64
}

// Tracker accumulates request outcomes and evaluates the objectives.
// The nil *Tracker is valid: Observe no-ops and Evaluate returns nil.
type Tracker struct {
	cfg     Config
	latency []int // indices into cfg.Objectives with Kind latency
	now     func() time.Time

	mu      sync.Mutex
	buckets []bucket
}

// New builds a Tracker; zero Config fields take package defaults.
func New(cfg Config) *Tracker {
	if len(cfg.Objectives) == 0 {
		cfg.Objectives = DefaultObjectives()
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = DefaultFastWindow
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = DefaultSlowWindow
	}
	if cfg.FastWindow > cfg.SlowWindow {
		cfg.FastWindow = cfg.SlowWindow
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = DefaultBurnThreshold
	}
	t := &Tracker{
		cfg:     cfg,
		now:     time.Now,
		buckets: make([]bucket, int(cfg.SlowWindow/bucketSize)+1),
	}
	for i, o := range cfg.Objectives {
		if o.Kind == KindLatency {
			t.latency = append(t.latency, i)
		}
	}
	return t
}

// Observe records one finished request. failed means the request burned
// availability budget (5xx/timeout — not client errors or sheds by
// admission policy; the caller decides). Safe on nil and concurrently.
func (t *Tracker) Observe(latencyMS float64, failed bool) {
	if t == nil {
		return
	}
	stamp := t.now().UnixNano() / int64(bucketSize)
	t.mu.Lock()
	b := &t.buckets[int(stamp)%len(t.buckets)]
	if b.stamp != stamp {
		*b = bucket{stamp: stamp, over: make([]int64, len(t.latency))}
	} else if b.over == nil {
		b.over = make([]int64, len(t.latency))
	}
	b.total++
	if failed {
		b.errors++
	}
	for i, oi := range t.latency {
		if latencyMS > t.cfg.Objectives[oi].ThresholdMS {
			b.over[i]++
		}
	}
	t.mu.Unlock()
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Objective
	// FastBurn / SlowBurn are the burn rates over the two windows: the
	// observed bad fraction divided by the error budget. 1.0 means
	// burning exactly at budget; BurnThreshold means paging territory.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// FastBad/FastTotal and SlowBad/SlowTotal are the raw window counts
	// behind the burn rates.
	FastBad   int64 `json:"fast_bad"`
	FastTotal int64 `json:"fast_total"`
	SlowBad   int64 `json:"slow_bad"`
	SlowTotal int64 `json:"slow_total"`
	// Breached means both windows burn at or above the threshold.
	Breached bool `json:"breached"`
}

// Report is the full evaluation, serialized into /v1/status and read
// back by emmonitor slo.
type Report struct {
	GeneratedAt   time.Time         `json:"generated_at"`
	FastWindowMS  float64           `json:"fast_window_ms"`
	SlowWindowMS  float64           `json:"slow_window_ms"`
	BurnThreshold float64           `json:"burn_threshold"`
	Objectives    []ObjectiveStatus `json:"objectives"`
	// Breached means at least one objective breached.
	Breached bool `json:"breached"`
}

// Evaluate computes burn rates over both windows and exports them as
// slo.* float gauges. Returns nil on a nil tracker.
func (t *Tracker) Evaluate() *Report {
	if t == nil {
		return nil
	}
	now := t.now()
	nowStamp := now.UnixNano() / int64(bucketSize)
	fastN := int64(t.cfg.FastWindow / bucketSize)
	slowN := int64(t.cfg.SlowWindow / bucketSize)

	type agg struct{ fastBad, fastTotal, slowBad, slowTotal int64 }
	sums := make([]agg, len(t.cfg.Objectives))

	t.mu.Lock()
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.stamp == 0 {
			continue
		}
		age := nowStamp - b.stamp
		if age < 0 || age >= slowN {
			continue
		}
		fast := age < fastN
		li := 0
		for oi, o := range t.cfg.Objectives {
			var bad int64
			switch o.Kind {
			case KindAvailability:
				bad = b.errors
			case KindLatency:
				if li < len(b.over) {
					bad = b.over[li]
				}
				li++
			}
			sums[oi].slowBad += bad
			sums[oi].slowTotal += b.total
			if fast {
				sums[oi].fastBad += bad
				sums[oi].fastTotal += b.total
			}
		}
	}
	t.mu.Unlock()

	rep := &Report{
		GeneratedAt:   now,
		FastWindowMS:  float64(t.cfg.FastWindow) / float64(time.Millisecond),
		SlowWindowMS:  float64(t.cfg.SlowWindow) / float64(time.Millisecond),
		BurnThreshold: t.cfg.BurnThreshold,
	}
	for oi, o := range t.cfg.Objectives {
		st := ObjectiveStatus{
			Objective: o,
			FastBad:   sums[oi].fastBad, FastTotal: sums[oi].fastTotal,
			SlowBad: sums[oi].slowBad, SlowTotal: sums[oi].slowTotal,
		}
		st.FastBurn = burn(st.FastBad, st.FastTotal, o.budget())
		st.SlowBurn = burn(st.SlowBad, st.SlowTotal, o.budget())
		st.Breached = st.FastBurn >= t.cfg.BurnThreshold && st.SlowBurn >= t.cfg.BurnThreshold
		if st.Breached {
			rep.Breached = true
		}
		obs.FG("slo." + o.Name + ".fast_burn").Set(st.FastBurn)
		obs.FG("slo." + o.Name + ".slow_burn").Set(st.SlowBurn)
		breachedVal := 0.0
		if st.Breached {
			breachedVal = 1
		}
		obs.FG("slo." + o.Name + ".breached").Set(breachedVal)
		rep.Objectives = append(rep.Objectives, st)
	}
	sort.SliceStable(rep.Objectives, func(i, j int) bool {
		return rep.Objectives[i].Name < rep.Objectives[j].Name
	})
	return rep
}

// burn is badRatio / budget; 0 when the window is empty.
func burn(bad, total int64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}
