package slo

import (
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// near tolerates float64 division rounding.
func near(got, want float64) bool {
	return got > want-1e-9 && got < want+1e-9
}

func newTestTracker(cfg Config) (*Tracker, *fakeClock) {
	t := New(cfg)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	t.now = clk.now
	return t, clk
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("availability=99.9,latency=250ms@99")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives", len(objs))
	}
	if objs[0].Kind != KindAvailability || objs[0].Target != 99.9 {
		t.Fatalf("availability = %+v", objs[0])
	}
	if objs[1].Kind != KindLatency || objs[1].ThresholdMS != 250 || objs[1].Target != 99 {
		t.Fatalf("latency = %+v", objs[1])
	}
	if objs[1].Name != "latency_250ms" {
		t.Fatalf("latency name = %q", objs[1].Name)
	}
}

func TestParseObjectivesRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		"", "availability", "availability=101", "availability=0",
		"latency=250ms", "latency=@99", "latency=-1s@99",
		"bogus=1", "availability=99,availability=98",
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) = nil error, want failure", bad)
		}
	}
}

func TestHealthyWindowNoBreach(t *testing.T) {
	tr, _ := newTestTracker(Config{
		Objectives: []Objective{{Name: "availability", Kind: KindAvailability, Target: 99}},
	})
	for i := 0; i < 1000; i++ {
		tr.Observe(1, false)
	}
	rep := tr.Evaluate()
	if rep.Breached {
		t.Fatalf("healthy window breached: %+v", rep.Objectives)
	}
	st := rep.Objectives[0]
	if st.FastBurn != 0 || st.SlowBurn != 0 {
		t.Fatalf("burn = %g/%g, want 0/0", st.FastBurn, st.SlowBurn)
	}
	if st.FastTotal != 1000 || st.SlowTotal != 1000 {
		t.Fatalf("totals = %d/%d, want 1000/1000", st.FastTotal, st.SlowTotal)
	}
}

func TestAvailabilityBreachNeedsBothWindows(t *testing.T) {
	tr, _ := newTestTracker(Config{
		Objectives: []Objective{{Name: "availability", Kind: KindAvailability, Target: 99}},
	})
	// 100% failure: burn = 1.0/0.01 = 100 in both windows (same buckets).
	for i := 0; i < 100; i++ {
		tr.Observe(1, true)
	}
	rep := tr.Evaluate()
	if !rep.Breached {
		t.Fatalf("want breach, got %+v", rep.Objectives[0])
	}
	if got := rep.Objectives[0].FastBurn; !near(got, 100) {
		t.Fatalf("fast burn = %g, want ~100", got)
	}
}

func TestOldErrorsAgeOutOfFastWindow(t *testing.T) {
	tr, clk := newTestTracker(Config{
		Objectives: []Objective{{Name: "availability", Kind: KindAvailability, Target: 99}},
		FastWindow: time.Minute,
		SlowWindow: 10 * time.Minute,
	})
	for i := 0; i < 100; i++ {
		tr.Observe(1, true)
	}
	// Past the fast window, with healthy traffic since: fast burn falls
	// to zero, slow burn still sees the spike — no page.
	clk.advance(2 * time.Minute)
	for i := 0; i < 100; i++ {
		tr.Observe(1, false)
	}
	rep := tr.Evaluate()
	st := rep.Objectives[0]
	if st.FastBurn != 0 {
		t.Fatalf("fast burn = %g, want 0 (errors aged out)", st.FastBurn)
	}
	if st.SlowBurn <= 0 {
		t.Fatalf("slow burn = %g, want > 0 (spike inside slow window)", st.SlowBurn)
	}
	if rep.Breached {
		t.Fatal("one-window burn must not breach")
	}

	// Past the slow window too: everything healthy.
	clk.advance(11 * time.Minute)
	tr.Observe(1, false)
	rep = tr.Evaluate()
	if st := rep.Objectives[0]; st.SlowBurn != 0 || st.SlowBad != 0 {
		t.Fatalf("slow window did not age out: %+v", st)
	}
}

func TestLatencyObjective(t *testing.T) {
	tr, _ := newTestTracker(Config{
		Objectives: []Objective{
			{Name: "latency_100ms", Kind: KindLatency, Target: 90, ThresholdMS: 100},
		},
	})
	for i := 0; i < 50; i++ {
		tr.Observe(10, false) // fast
	}
	for i := 0; i < 50; i++ {
		tr.Observe(500, false) // slow: 50% over budget of 10%
	}
	rep := tr.Evaluate()
	st := rep.Objectives[0]
	if st.FastBad != 50 {
		t.Fatalf("fast bad = %d, want 50", st.FastBad)
	}
	if !near(st.FastBurn, 5) { // 0.5 bad ratio / 0.1 budget
		t.Fatalf("fast burn = %g, want ~5", st.FastBurn)
	}
	if rep.Breached { // 5 < 14.4
		t.Fatal("burn below threshold must not breach")
	}
}

func TestEmptyTrackerAndNil(t *testing.T) {
	var nilT *Tracker
	nilT.Observe(1, true)
	if rep := nilT.Evaluate(); rep != nil {
		t.Fatalf("nil tracker Evaluate = %+v", rep)
	}
	tr, _ := newTestTracker(Config{})
	rep := tr.Evaluate()
	if rep.Breached || len(rep.Objectives) != 2 {
		t.Fatalf("empty default tracker: %+v", rep)
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(float64(i%700), i%10 == 0)
			}
		}()
	}
	wg.Wait()
	rep := tr.Evaluate()
	for _, st := range rep.Objectives {
		if st.SlowTotal != 4000 {
			t.Fatalf("%s slow total = %d, want 4000", st.Name, st.SlowTotal)
		}
	}
}
