package obs

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Wide-event structured logging: the serving tier emits exactly one
// JSON document per request — the "wide event" — carrying everything an
// operator needs to answer "what happened to request X?" without
// correlating scattered log lines: identity, route, outcome, admission
// verdict, degradation reason, stage timings, queue wait, sizes, and
// job/shard provenance. Lines use the log/slog JSON-handler shape
// (`"msg":"request"` plus flat keys), so the access log is greppable
// with jq and ships to any structured-log pipeline unchanged — but they
// are rendered by a hand-rolled append encoder, because the event sits
// on the request hot path and reflection-style formatting was measured
// at several microseconds per line.
//
// Volume control is outcome-aware sampling: successes are sampled 1 in
// N (configurable), while errors, timeouts, sheds, and degraded
// responses are always logged — the traffic you page on is never the
// traffic that was sampled away.

// Wide-event outcome vocabulary. Derived from the HTTP status plus the
// degradation flag; "ok" is the only outcome eligible for sampling.
const (
	OutcomeOK         = "ok"
	OutcomeDegraded   = "degraded"
	OutcomeShed       = "shed"        // 429: admission or job queue full
	OutcomeDraining   = "draining"    // 503 while the server drains
	OutcomeTimeout    = "timeout"     // 504: request deadline exceeded
	OutcomeError      = "error"       // 5xx other than the above
	OutcomeBadRequest = "bad_request" // 4xx client errors
	OutcomeStreamCut  = "stream_cut"  // result stream cut mid-flight (slow reader / disconnect)
)

// WideEvent is one request's complete record. Zero-valued fields are
// omitted from the log line, so cheap routes emit short documents.
type WideEvent struct {
	// Time is when the request entered the handler.
	Time time.Time `json:"time"`
	// RequestID is the server-assigned or propagated X-Request-Id.
	RequestID string `json:"request_id"`
	// Route is the matched route pattern ("/v1/match", "/v1/jobs/{id}").
	Route string `json:"route"`
	// Method is the HTTP method.
	Method string `json:"method,omitempty"`
	// Status is the HTTP status written.
	Status int `json:"status"`
	// Outcome classifies the request (see the Outcome* constants).
	Outcome string `json:"outcome"`
	// DurationMS is handler wall time.
	DurationMS float64 `json:"duration_ms"`
	// QueueWaitMS is time spent waiting for an admission slot.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// Admission is the gate's verdict: admitted, shed_queue_full,
	// shed_draining, deadline_in_queue ("" when the route has no gate).
	Admission string `json:"admission,omitempty"`
	// Degraded and DegradedReason mirror the response envelope.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Breaker is the matcher breaker state the request observed.
	Breaker string `json:"breaker,omitempty"`
	// Records / Candidates / Matches size the matching work: records
	// carried, candidate pairs considered, matches returned.
	Records    int `json:"records,omitempty"`
	Candidates int `json:"candidates,omitempty"`
	Matches    int `json:"matches,omitempty"`
	// BytesIn / BytesOut are request/response body sizes.
	BytesIn  int64 `json:"bytes_in,omitempty"`
	BytesOut int64 `json:"bytes_out,omitempty"`
	// JobID and Shard tie the event to the async job tier ("" / -1 when
	// not job traffic; Shard is meaningful only on shard events).
	JobID string `json:"job_id,omitempty"`
	Shard int    `json:"shard,omitempty"`
	// Streamed marks a streaming results fetch; StreamFrom/StreamEnd are
	// its start and end positions as "shard/offset", so a multi-
	// connection fetch is reconstructable from the access log alone (the
	// resume's stream_from matches the prior event's stream_end).
	Streamed   bool   `json:"streamed,omitempty"`
	StreamFrom string `json:"stream_from,omitempty"`
	StreamEnd  string `json:"stream_end,omitempty"`
	// StreamChunks counts flushed chunks; StreamComplete marks a stream
	// that reached the terminal summary line.
	StreamChunks   int  `json:"stream_chunks,omitempty"`
	StreamComplete bool `json:"stream_complete,omitempty"`
	// Stages maps pipeline stage names to wall milliseconds, from the
	// request's span tree.
	Stages map[string]float64 `json:"stages,omitempty"`
	// Err is the terminal error message, when the request failed.
	Err string `json:"error,omitempty"`
}

// alwaysLog reports whether the event must bypass success sampling.
func (e *WideEvent) alwaysLog() bool {
	return e.Outcome != OutcomeOK
}

// EventLog is the wide-event sink. The nil *EventLog is valid and every
// method is a no-op, the same posture as the metrics handles, so the
// serving tier logs unconditionally and pays one nil check when access
// logging is off.
type EventLog struct {
	w       io.Writer
	sampleN int64
	seen    atomic.Int64

	mu  sync.Mutex // serializes encode+write; also guards buf
	buf []byte     // reused encode buffer
}

// NewEventLog builds a wide-event sink writing JSON lines to w. sampleN
// controls success sampling: log 1 in sampleN "ok" events (<= 1 logs
// all). Errors, sheds, timeouts, and degraded responses are always
// logged regardless.
func NewEventLog(w io.Writer, sampleN int) *EventLog {
	if w == nil {
		return nil
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &EventLog{w: w, sampleN: int64(sampleN)}
}

// Log writes one wide event (or samples it away). Safe on nil and safe
// for concurrent use.
func (l *EventLog) Log(ev *WideEvent) {
	if l == nil || ev == nil {
		return
	}
	if !ev.alwaysLog() && l.sampleN > 1 && l.seen.Add(1)%l.sampleN != 1 {
		C("obs.events_sampled_out").Inc()
		return
	}
	l.mu.Lock()
	l.buf = ev.appendJSON(l.buf[:0])
	l.buf = append(l.buf, '\n')
	l.w.Write(l.buf)
	l.mu.Unlock()
	C("obs.events_logged").Inc()
}

// appendJSON renders the event as one JSON document, omitting zero
// fields, in the slog JSON-handler line shape (leading "msg").
func (e *WideEvent) appendJSON(b []byte) []byte {
	b = append(b, `{"msg":"request","time":"`...)
	b = e.Time.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","request_id":`...)
	b = appendJSONString(b, e.RequestID)
	b = append(b, `,"route":`...)
	b = appendJSONString(b, e.Route)
	if e.Method != "" {
		b = append(b, `,"method":`...)
		b = appendJSONString(b, e.Method)
	}
	b = append(b, `,"status":`...)
	b = strconv.AppendInt(b, int64(e.Status), 10)
	b = append(b, `,"outcome":`...)
	b = appendJSONString(b, e.Outcome)
	b = append(b, `,"duration_ms":`...)
	b = appendJSONFloat(b, e.DurationMS)
	if e.QueueWaitMS > 0 {
		b = append(b, `,"queue_wait_ms":`...)
		b = appendJSONFloat(b, e.QueueWaitMS)
	}
	if e.Admission != "" {
		b = append(b, `,"admission":`...)
		b = appendJSONString(b, e.Admission)
	}
	if e.Degraded {
		b = append(b, `,"degraded":true,"degraded_reason":`...)
		b = appendJSONString(b, e.DegradedReason)
	}
	if e.Breaker != "" {
		b = append(b, `,"breaker":`...)
		b = appendJSONString(b, e.Breaker)
	}
	if e.Records > 0 {
		b = append(b, `,"records":`...)
		b = strconv.AppendInt(b, int64(e.Records), 10)
	}
	if e.Candidates > 0 {
		b = append(b, `,"candidates":`...)
		b = strconv.AppendInt(b, int64(e.Candidates), 10)
	}
	if e.Matches > 0 {
		b = append(b, `,"matches":`...)
		b = strconv.AppendInt(b, int64(e.Matches), 10)
	}
	if e.BytesIn > 0 {
		b = append(b, `,"bytes_in":`...)
		b = strconv.AppendInt(b, e.BytesIn, 10)
	}
	if e.BytesOut > 0 {
		b = append(b, `,"bytes_out":`...)
		b = strconv.AppendInt(b, e.BytesOut, 10)
	}
	if e.JobID != "" {
		b = append(b, `,"job_id":`...)
		b = appendJSONString(b, e.JobID)
	}
	if e.Shard > 0 {
		b = append(b, `,"shard":`...)
		b = strconv.AppendInt(b, int64(e.Shard), 10)
	}
	if e.Streamed {
		b = append(b, `,"streamed":true`...)
	}
	if e.StreamFrom != "" {
		b = append(b, `,"stream_from":`...)
		b = appendJSONString(b, e.StreamFrom)
	}
	if e.StreamEnd != "" {
		b = append(b, `,"stream_end":`...)
		b = appendJSONString(b, e.StreamEnd)
	}
	if e.StreamChunks > 0 {
		b = append(b, `,"stream_chunks":`...)
		b = strconv.AppendInt(b, int64(e.StreamChunks), 10)
	}
	if e.StreamComplete {
		b = append(b, `,"stream_complete":true`...)
	}
	if len(e.Stages) > 0 {
		names := make([]string, 0, len(e.Stages))
		for name := range e.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		b = append(b, `,"stages":{`...)
		for i, name := range names {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, name)
			b = append(b, ':')
			b = appendJSONFloat(b, e.Stages[name])
		}
		b = append(b, '}')
	}
	if e.Err != "" {
		b = append(b, `,"error":`...)
		b = appendJSONString(b, e.Err)
	}
	return append(b, '}')
}

// appendJSONFloat renders f in the shortest decimal form; JSON has no
// Inf/NaN, so non-finite values (never produced by timers, but cheap to
// guard) render as 0.
func appendJSONFloat(b []byte, f float64) []byte {
	if f != f || f > 1e308 || f < -1e308 {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, f, 'f', -1, 64)
}

// appendJSONString quotes s as a JSON string. The fast path copies runs
// of plain bytes; quotes, backslashes, control characters, and invalid
// UTF-8 take the escape path (error messages can carry anything).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	from := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			i++
			continue
		}
		if c >= utf8.RuneSelf {
			r, size := utf8.DecodeRuneInString(s[i:])
			if r != utf8.RuneError || size > 1 {
				i += size // valid multi-byte rune passes through raw
				continue
			}
		}
		b = append(b, s[from:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			if c >= utf8.RuneSelf {
				// Invalid UTF-8 byte: substitute the replacement rune.
				b = append(b, "�"...)
			} else {
				b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			}
		}
		i++
		from = i
	}
	b = append(b, s[from:]...)
	return append(b, '"')
}

// StageDurations flattens a span tree into stage-name → wall-ms for the
// wide event's Stages field, keeping the first occurrence of each name
// and skipping the root (its duration is the event's DurationMS).
func StageDurations(sd *SpanData) map[string]float64 {
	if sd == nil || len(sd.Children) == 0 {
		return nil
	}
	out := make(map[string]float64)
	var walk func(*SpanData)
	walk = func(d *SpanData) {
		if _, seen := out[d.Name]; !seen {
			out[d.Name] = d.DurationMS
		}
		for _, c := range d.Children {
			walk(c)
		}
	}
	for _, c := range sd.Children {
		walk(c)
	}
	return out
}
