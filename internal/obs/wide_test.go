package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWideEventJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 1)
	ev := &WideEvent{
		Time:      time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC),
		RequestID: "abcdef0123456789", Route: "/v1/match", Method: "POST",
		Status: 200, Outcome: OutcomeOK, DurationMS: 12.5, QueueWaitMS: 0.25,
		Admission: "admitted", Breaker: "closed",
		Records: 1, Candidates: 3, Matches: 2, BytesIn: 120, BytesOut: 340,
		JobID: "j0011223344556677", Shard: 2,
		Stages: map[string]float64{"serve.match": 11.25, "serve.block": 3},
	}
	l.Log(ev)

	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted line is not JSON: %v\n%s", err, buf.String())
	}
	want := map[string]any{
		"msg": "request", "request_id": "abcdef0123456789", "route": "/v1/match",
		"method": "POST", "status": float64(200), "outcome": "ok",
		"duration_ms": 12.5, "queue_wait_ms": 0.25, "admission": "admitted",
		"breaker": "closed", "records": float64(1), "candidates": float64(3),
		"matches": float64(2), "bytes_in": float64(120), "bytes_out": float64(340),
		"job_id": "j0011223344556677", "shard": float64(2),
	}
	for k, v := range want {
		if doc[k] != v {
			t.Errorf("field %q = %v, want %v", k, doc[k], v)
		}
	}
	ts, err := time.Parse(time.RFC3339Nano, doc["time"].(string))
	if err != nil || !ts.Equal(ev.Time) {
		t.Errorf("time field %v (err %v), want %v", doc["time"], err, ev.Time)
	}
	stages, _ := doc["stages"].(map[string]any)
	if stages["serve.match"] != 11.25 || stages["serve.block"] != float64(3) {
		t.Errorf("stages = %v", stages)
	}
}

func TestWideEventJSONEscapesHostileStrings(t *testing.T) {
	hostile := "a\"b\\c\nd\te\x00f\x7fg€héllo\xffend"
	var buf bytes.Buffer
	l := NewEventLog(&buf, 1)
	l.Log(&WideEvent{
		Time: time.Unix(0, 0), RequestID: "r", Route: "/x",
		Status: 500, Outcome: OutcomeError, Err: hostile,
		DegradedReason: hostile, Degraded: true,
		Stages: map[string]float64{hostile: 1},
	})
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("hostile strings broke the JSON line: %v\n%q", err, buf.String())
	}
	got, _ := doc["error"].(string)
	// Valid UTF-8 and escapes must survive exactly; the lone invalid
	// byte becomes the replacement rune (same policy as encoding/json).
	want := strings.ReplaceAll(hostile, "\xff", "�")
	if got != want {
		t.Fatalf("error round-trip:\n got %q\nwant %q", got, want)
	}
	if doc["degraded_reason"].(string) != want {
		t.Fatalf("degraded_reason round-trip failed: %q", doc["degraded_reason"])
	}
}

func TestWideEventNonFiniteDurations(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 1)
	bad := 1.0
	bad /= 0.0000000000000000000000001 // huge but finite is fine
	l.Log(&WideEvent{Time: time.Unix(0, 0), RequestID: "r", Route: "/x",
		Status: 200, Outcome: OutcomeOK, DurationMS: bad})
	inf := bad * bad * bad * bad // overflows to +Inf at runtime
	l.Log(&WideEvent{Time: time.Unix(0, 0), RequestID: "r2", Route: "/x",
		Status: 500, Outcome: OutcomeError, DurationMS: inf - inf, QueueWaitMS: inf})
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("non-finite duration broke JSON: %v\n%s", err, line)
		}
	}
}

func TestEventLogSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 5)
	for i := 0; i < 20; i++ {
		l.Log(&WideEvent{Time: time.Unix(0, 0), RequestID: "ok", Route: "/x",
			Status: 200, Outcome: OutcomeOK})
	}
	for i := 0; i < 3; i++ {
		l.Log(&WideEvent{Time: time.Unix(0, 0), RequestID: "bad", Route: "/x",
			Status: 500, Outcome: OutcomeError})
	}
	var okN, errN int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatal(err)
		}
		switch doc["outcome"] {
		case "ok":
			okN++
		case "error":
			errN++
		}
	}
	if okN != 4 {
		t.Fatalf("sampled ok lines = %d, want 4 of 20 at sampleN=5", okN)
	}
	if errN != 3 {
		t.Fatalf("error lines = %d, want all 3 (errors bypass sampling)", errN)
	}
}

func TestEventLogNilSafety(t *testing.T) {
	var l *EventLog
	l.Log(&WideEvent{})                   // nil log
	NewEventLog(nil, 1).Log(&WideEvent{}) // nil writer yields nil log
	NewEventLog(&bytes.Buffer{}, 1).Log(nil)
}

func TestStageDurations(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "serve.http")
	ctx, block := StartSpan(ctx, "serve.block")
	_, inner := StartSpan(ctx, "serve.block") // duplicate name: first wins
	inner.End()
	block.End()
	_, predict := StartSpan(ctx, "serve.predict")
	predict.End()
	root.End()

	stages := StageDurations(root.Snapshot())
	if _, has := stages["serve.block"]; !has {
		t.Fatalf("stages missing serve.block: %v", stages)
	}
	if _, has := stages["serve.predict"]; !has {
		t.Fatalf("stages missing serve.predict: %v", stages)
	}
	if _, has := stages["serve.http"]; has {
		t.Fatalf("root leaked into stages: %v", stages)
	}
	if StageDurations(nil) != nil {
		t.Fatal("nil span tree should yield nil stages")
	}
}
