package obs

import (
	"io"
	"testing"
	"time"
)

func BenchmarkEventLogLog(b *testing.B) {
	l := NewEventLog(io.Discard, 1)
	ev := &WideEvent{
		Time: time.Now(), RequestID: "abcdef0123456789", Route: "/v1/match",
		Method: "POST", Status: 200, Outcome: OutcomeOK, DurationMS: 12.5,
		QueueWaitMS: 0.03, Admission: "admitted", Breaker: "closed",
		Records: 1, Candidates: 3, Matches: 1, BytesIn: 120, BytesOut: 340,
		Stages: map[string]float64{"serve.match": 11.1, "serve.block": 3.2, "serve.predict": 6.4, "serve.sure_rules": 0.5},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Log(ev)
	}
}
