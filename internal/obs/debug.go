package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and a process may start several debug servers over
// its lifetime (tests do).
var publishOnce sync.Once

// publishMetrics exposes the global registry under the expvar name
// "em_metrics"; it reads the registry at request time, so a server
// started before Enable still reports live values afterwards.
func publishMetrics() {
	publishOnce.Do(func() {
		expvar.Publish("em_metrics", expvar.Func(func() any {
			SampleRuntime()
			return Default().Snapshot()
		}))
	})
}

// NewDebugMux builds the standard debug mux — expvar metrics at
// /debug/vars, Prometheus text exposition at /metrics, pprof under
// /debug/pprof/ — and registers the metrics expvar. It is how a binary
// that already runs its own HTTP server (the matching service) mounts
// the debug surface alongside its application routes instead of opening
// a second port.
func NewDebugMux() *http.ServeMux {
	publishMetrics()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", promHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DefaultDrainTimeout bounds how long a context-tied debug server waits
// for in-flight scrapes before closing their connections.
const DefaultDrainTimeout = 2 * time.Second

// DebugServer is a live operational endpoint serving expvar metrics at
// /debug/vars, Prometheus text exposition at /metrics, and the standard
// pprof handlers under /debug/pprof/.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed once the server has fully stopped
}

// StartDebugServer listens on addr (e.g. ":6060", or "127.0.0.1:0" for
// an ephemeral port) and serves expvar + prometheus + pprof in a
// background goroutine until Close/Shutdown.
func StartDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(), ReadHeaderTimeout: 5 * time.Second}
	d := &DebugServer{ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		srv.Serve(ln) //nolint:errcheck // Serve always returns on Close/Shutdown
		close(d.done)
	}()
	return d, nil
}

// StartDebugServerCtx is StartDebugServer tied to a run context: when
// ctx is cancelled (the run finished, timed out, or was interrupted)
// the server drains in-flight requests for up to drain and then stops,
// so a cancelled run never leaks the listener. drain <= 0 selects
// DefaultDrainTimeout. Close/Shutdown remain safe to call as well.
func StartDebugServerCtx(ctx context.Context, addr string, drain time.Duration) (*DebugServer, error) {
	d, err := StartDebugServer(addr)
	if err != nil {
		return nil, err
	}
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	go func() {
		select {
		case <-ctx.Done():
			d.Shutdown(drain) //nolint:errcheck // best-effort drain on cancellation
		case <-d.done:
		}
	}()
	return d, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Done returns a channel closed once the server has fully stopped.
func (d *DebugServer) Done() <-chan struct{} { return d.done }

// Shutdown stops accepting new connections and waits up to timeout for
// in-flight requests to finish before closing the rest. Safe on nil and
// idempotent with Close.
func (d *DebugServer) Shutdown(timeout time.Duration) error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		// The drain deadline passed with requests still in flight (a
		// hanging pprof profile, say): close their connections.
		return d.srv.Close()
	}
	return nil
}

// Close stops the server immediately. Safe on nil and idempotent with
// Shutdown.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	return d.srv.Close()
}
