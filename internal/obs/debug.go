package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and a process may start several debug servers over
// its lifetime (tests do).
var publishOnce sync.Once

// publishMetrics exposes the global registry under the expvar name
// "em_metrics"; it reads the registry at request time, so a server
// started before Enable still reports live values afterwards.
func publishMetrics() {
	publishOnce.Do(func() {
		expvar.Publish("em_metrics", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// DebugServer is a live operational endpoint serving expvar metrics at
// /debug/vars and the standard pprof handlers under /debug/pprof/.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. ":6060", or "127.0.0.1:0" for
// an ephemeral port) and serves expvar + pprof in a background
// goroutine until Close.
func StartDebugServer(addr string) (*DebugServer, error) {
	publishMetrics()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	d := &DebugServer{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server. Safe on nil.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
