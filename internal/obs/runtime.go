package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Go runtime saturation gauges: goroutine count, heap bytes, GC pause
// p99, and a scheduling-latency p99 proxy, refreshed on demand into the
// global registry so they sit next to the service metrics on /metrics
// and /debug/vars. Sampling is pull-driven (each scrape calls
// SampleRuntime) rather than a background ticker: no goroutine to leak,
// no work when nobody is looking.

// runtimeSamples are the runtime/metrics series SampleRuntime reads.
var runtimeSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/sync/mutex/wait/total:seconds",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
}

// allocRateState remembers the previous scrape's cumulative allocation
// counter so the next one can derive a rate. Guarded by its own mutex:
// /metrics and /debug/vars can be scraped concurrently.
var allocRateState struct {
	mu         sync.Mutex
	lastAt     time.Time
	lastallocs uint64
}

// SampleRuntime refreshes the go.* gauges in the global registry: the
// goroutine count, live heap bytes, GC pause p99 (ms), and the p99 of
// goroutine scheduling latency (ms) — the closest stdlib proxy for "how
// long does runnable work wait for a CPU", which is what saturation
// looks like before latency SLOs start burning. No-op when the registry
// is disabled.
func SampleRuntime() {
	if !Enabled() {
		return
	}
	G("go.goroutines").Set(int64(runtime.NumGoroutine()))

	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				G("go.heap_bytes").Set(int64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				FG("go.gc_pause_p99_ms").Set(histQuantile(s.Value.Float64Histogram(), 0.99) * 1000)
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				FG("go.sched_latency_p99_ms").Set(histQuantile(s.Value.Float64Histogram(), 0.99) * 1000)
			}
		case "/sync/mutex/wait/total:seconds":
			if s.Value.Kind() == metrics.KindFloat64 {
				FG("go.mutex_wait_total_s").Set(s.Value.Float64())
			}
		case "/gc/heap/allocs:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				sampleAllocRate(s.Value.Uint64())
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				G("go.gc_cycles_total").Set(int64(s.Value.Uint64()))
			}
		}
	}
}

// sampleAllocRate publishes the cumulative allocation counter and, from
// the second scrape on, the allocation rate derived between scrapes
// (bytes/sec). Allocation *rate* is the number continuous profiling
// chases — a steady heap gauge can hide a churn regression that the
// delta-heap profile then explains — so the gauge makes "did churn
// move" answerable from /metrics before anyone opens pprof.
func sampleAllocRate(allocs uint64) {
	now := time.Now()
	G("go.alloc_bytes_total").Set(int64(allocs))
	allocRateState.mu.Lock()
	last, lastAt := allocRateState.lastallocs, allocRateState.lastAt
	allocRateState.lastallocs, allocRateState.lastAt = allocs, now
	allocRateState.mu.Unlock()
	if lastAt.IsZero() || allocs < last {
		return
	}
	dt := now.Sub(lastAt).Seconds()
	if dt <= 0 {
		return
	}
	FG("go.alloc_rate_bps").Set(float64(allocs-last) / dt)
}

// histQuantile estimates the q-th quantile of a runtime/metrics
// histogram by linear interpolation inside the holding bucket. The
// distributions are cumulative over the process lifetime, which is what
// we want for "has this process ever stalled": a saturation gauge, not
// a rate. Returns 0 on an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		// Buckets[i] and Buckets[i+1] bound count i; the edge buckets can
		// be infinite, in which case the finite edge is the estimate.
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		switch {
		case math.IsInf(lo, -1):
			return hi
		case math.IsInf(hi, 1):
			return lo
		default:
			frac := (rank - prev) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
