package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"block.pairs_blocked": "em_block_pairs_blocked",
		"drift.psi":           "em_drift_psi",
		"weird-name/x":        "em_weird_name_x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ml.predictions").Add(42)
	r.Gauge("label.pending").Set(3)
	r.FloatGauge("drift.psi").Set(0.125)
	h := r.Histogram("workflow.stage_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000) // overflow bucket

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE em_ml_predictions counter\nem_ml_predictions 42\n",
		"# TYPE em_label_pending gauge\nem_label_pending 3\n",
		"# TYPE em_drift_psi gauge\nem_drift_psi 0.125\n",
		"# TYPE em_workflow_stage_ms histogram\n",
		`em_workflow_stage_ms_bucket{le="1"} 1`,
		`em_workflow_stage_ms_bucket{le="10"} 2`,
		`em_workflow_stage_ms_bucket{le="100"} 2`,
		`em_workflow_stage_ms_bucket{le="+Inf"} 3`,
		"em_workflow_stage_ms_sum 5005.5",
		"em_workflow_stage_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // second bucket
	}
	snap := r.Snapshot().Histograms["q"]
	if snap.P50 <= 0 || snap.P50 > 10 {
		t.Fatalf("p50 = %g, want in (0, 10]", snap.P50)
	}
	if snap.P90 > 10 {
		t.Fatalf("p90 = %g, want inside the first bucket (rank 90 of 100)", snap.P90)
	}
	if snap.P99 <= 10 || snap.P99 > 100 {
		t.Fatalf("p99 = %g, want in the second bucket", snap.P99)
	}

	// Quantiles landing in the overflow bucket report the last bound.
	h2 := r.Histogram("q2", []float64{10})
	h2.Observe(9999)
	snap2 := r.Snapshot().Histograms["q2"]
	if snap2.P50 != 10 {
		t.Fatalf("overflow p50 = %g, want last bound 10", snap2.P50)
	}

	// Empty histogram: no quantiles exported.
	r.Histogram("q3", []float64{10})
	snap3 := r.Snapshot().Histograms["q3"]
	if snap3.P50 != 0 || snap3.P90 != 0 || snap3.P99 != 0 {
		t.Fatalf("empty histogram exported quantiles: %+v", snap3)
	}
}

func TestFloatGauge(t *testing.T) {
	var nilG *FloatGauge
	nilG.Set(1) // no-op, must not panic
	if nilG.Value() != 0 {
		t.Fatal("nil float gauge value != 0")
	}
	r := NewRegistry()
	g := r.FloatGauge("drift.ks")
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("value = %g", g.Value())
	}
	if r.FloatGauge("drift.ks") != g {
		t.Fatal("lookup did not return the same handle")
	}
	if snap := r.Snapshot(); snap.FloatGauges["drift.ks"] != 0.25 {
		t.Fatalf("snapshot float gauges: %+v", snap.FloatGauges)
	}
}
