package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ProvEntry is one provenance-log record in a run report — the neutral
// form of workflow.Log entries, kept here so the report schema has no
// dependency on the workflow package.
type ProvEntry struct {
	Step    string `json:"step"`
	Detail  string `json:"detail,omitempty"`
	Count   int    `json:"count"`
	Outcome string `json:"outcome,omitempty"`
}

// Report is the machine-readable record of one pipeline run: the span
// tree, the metrics snapshot, the provenance log, and the overall
// outcome, in one JSON document. It is what -report flags write and what
// future perf work diffs against.
type Report struct {
	// Name identifies the run (workflow name, binary name).
	Name string `json:"name"`
	// StartedAt / FinishedAt bound the run's wall time.
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// Outcome is ok, degraded (quarantines under the error budget), or
	// aborted.
	Outcome string `json:"outcome"`
	// Error is the run's terminal error, when it aborted.
	Error string `json:"error,omitempty"`
	// Trace is the span tree (nil when no trace was active).
	Trace *SpanData `json:"trace,omitempty"`
	// Metrics is the registry snapshot at the end of the run (nil when
	// metrics were disabled).
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
	// Provenance is the workflow log: step, detail, count, outcome.
	Provenance []ProvEntry `json:"provenance,omitempty"`
	// Quarantined lists the candidate pairs dropped under the error
	// budget as "left_row,right_row" strings.
	Quarantined []string `json:"quarantined,omitempty"`
	// Quality is the drift assessment of a monitored run (nil when the
	// run was not checked against a baseline). The schema is neutral —
	// internal/drift fills it — so reports stay parseable without that
	// package.
	Quality *QualityData `json:"quality,omitempty"`
}

// QualitySignal is one scored drift indicator in a run report.
type QualitySignal struct {
	// Name identifies the signal ("psi.feature.X", "coverage_drop", ...).
	Name string `json:"name"`
	// Value is the observed statistic; Warn and Fail are the thresholds
	// it was judged against; Status is ok, warn, or fail.
	Value  float64 `json:"value"`
	Warn   float64 `json:"warn"`
	Fail   float64 `json:"fail"`
	Status string  `json:"status"`
}

// QualityData is the quality-observability section of a run report:
// the drift verdict of a deployed run against its training baseline,
// the signals behind it, the drift-discounted accuracy estimate, and
// the live statistical profile (schema owned by internal/drift, embedded
// raw so it round-trips untouched).
type QualityData struct {
	// Verdict is ok, warn, or fail — the worst signal status.
	Verdict string `json:"verdict"`
	// Signals are the scored drift indicators, headline entries first.
	Signals []QualitySignal `json:"signals,omitempty"`
	// EstimatedPrecision is [lo, point, hi] in [0,1] — the
	// Corleone-style estimate widened by the observed drift.
	EstimatedPrecision []float64 `json:"estimated_precision,omitempty"`
	// Profile is the live drift profile (internal/drift schema).
	Profile json.RawMessage `json:"profile,omitempty"`
}

// Marshal renders the report as indented JSON.
func (r *Report) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseReport parses a report produced by Marshal; the two round-trip.
func ParseReport(data []byte) (*Report, error) {
	r := &Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("obs: parse report: %w", err)
	}
	return r, nil
}

// WriteFile writes the report to path as JSON ("-" writes to stdout).
func (r *Report) WriteFile(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
