package drift

import (
	"context"
	"testing"
)

var benchRow = []float64{0.1, 0.2, 0.3, 0.4, 0.5}

// BenchmarkCollectorDisabled guards the ISSUE's hot-path contract: with
// no collector armed, the per-row cost in feature.VectorizeCtx and
// ml.PredictAllCtx is one method call on a nil *Collector — a single
// nil check, within 2x of the disabled obs.Counter bound (~5ns).
func BenchmarkCollectorDisabled(b *testing.B) {
	var c *Collector // what FromContext returns when no run armed one
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ObserveVector(benchRow)
	}
}

// BenchmarkCollectorEnabled is the armed cost per vector: one mutex
// acquisition and a reservoir offer per feature.
func BenchmarkCollectorEnabled(b *testing.B) {
	c := NewCollector(DefaultSampleCap, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ObserveVector(benchRow)
	}
}

// BenchmarkFromContextMiss is the once-per-stage lookup cost when no
// collector is armed.
func BenchmarkFromContextMiss(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if FromContext(ctx) != nil {
			b.Fatal("unexpected collector")
		}
	}
}
