package drift

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"emgo/internal/table"
)

func TestReservoirBelowCapKeepsEverything(t *testing.T) {
	r := &reservoir{cap: 16}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		r.observe(float64(i), false, rng)
	}
	s := r.sample()
	if s.Count != 10 || s.Nulls != 0 || len(s.Values) != 10 {
		t.Fatalf("sample = count %d nulls %d values %d, want 10/0/10", s.Count, s.Nulls, len(s.Values))
	}
	for i, v := range s.Values {
		if v != float64(i) {
			t.Fatalf("sorted sample[%d] = %g, want %d", i, v, i)
		}
	}
}

func TestReservoirAboveCapSubsamples(t *testing.T) {
	r := &reservoir{cap: 32}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		r.observe(float64(i), false, rng)
	}
	s := r.sample()
	if len(s.Values) != 32 {
		t.Fatalf("reservoir kept %d values, want cap 32", len(s.Values))
	}
	if s.Count != 10000 {
		t.Fatalf("Count = %d, want 10000", s.Count)
	}
	// The mean of a uniform sample over 0..9999 should be near 5000.
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	if mean := sum / 32; mean < 2500 || mean > 7500 {
		t.Fatalf("reservoir mean %g implausible for a uniform subsample of 0..9999", mean)
	}
}

func TestObserveVectorCountsNaNAsNull(t *testing.T) {
	c := NewCollector(8, 1)
	c.SetFeatureNames([]string{"a", "b"})
	c.ObserveVector([]float64{1, math.NaN()})
	c.ObserveVector([]float64{2, 5})
	p := c.Profile("t", 2, 2, nil, nil)
	if len(p.Features) != 2 {
		t.Fatalf("features = %d, want 2", len(p.Features))
	}
	if p.Features[0].Name != "a" || p.Features[1].Name != "b" {
		t.Fatalf("feature names = %q, %q", p.Features[0].Name, p.Features[1].Name)
	}
	if got := p.Features[1].NullRate(); got != 0.5 {
		t.Fatalf("feature b null rate = %g, want 0.5", got)
	}
	if got := p.Features[0].NullRate(); got != 0 {
		t.Fatalf("feature a null rate = %g, want 0", got)
	}
}

func TestObservePredictionMatchRate(t *testing.T) {
	c := NewCollector(8, 1)
	c.ObservePrediction(1, 0.9, true)
	c.ObservePrediction(0, 0.2, true)
	c.ObservePrediction(1, 0, false)
	p := c.Profile("t", 0, 0, nil, nil)
	if p.Predicted != 3 || p.PredictedMatches != 2 {
		t.Fatalf("predicted %d matches %d, want 3/2", p.Predicted, p.PredictedMatches)
	}
	if got := p.MatchRate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("match rate = %g, want 2/3", got)
	}
	if len(p.Scores.Values) != 2 {
		t.Fatalf("scores reservoir has %d values, want 2 (unscored predictions excluded)", len(p.Scores.Values))
	}
}

func TestObserveTableProfilesStringColumns(t *testing.T) {
	tab := table.New("L", table.MustSchema(
		table.Field{Name: "ID", Kind: table.Int},
		table.Field{Name: "Title", Kind: table.String},
	))
	tab.MustAppend(table.Row{table.I(1), table.S("corn fungicide guidelines")})
	tab.MustAppend(table.Row{table.I(2), table.S("swamp dodder")})
	tab.MustAppend(table.Row{table.I(3), table.Null(table.String)})

	c := NewCollector(8, 1)
	cols := c.ObserveTable("left", tab)
	if len(cols) != 1 {
		t.Fatalf("profiled %d columns, want 1 (only the string column)", len(cols))
	}
	cp := cols[0]
	if cp.Side != "left" || cp.Column != "Title" {
		t.Fatalf("column profile = %s.%s, want left.Title", cp.Side, cp.Column)
	}
	if cp.Tokens.Count != 3 || cp.Tokens.Nulls != 1 {
		t.Fatalf("tokens count/nulls = %d/%d, want 3/1", cp.Tokens.Count, cp.Tokens.Nulls)
	}
	// Sorted token counts of the two non-null titles: 2 and 3 words.
	if len(cp.Tokens.Values) != 2 || cp.Tokens.Values[0] != 2 || cp.Tokens.Values[1] != 3 {
		t.Fatalf("token samples = %v, want [2 3]", cp.Tokens.Values)
	}
}

func TestProfileCoverageAndRoundTrip(t *testing.T) {
	c := NewCollector(8, 1)
	c.ObserveVector([]float64{0.5})
	p := c.Profile("wf", 4, 9, []int{3, 0, 1, 2}, nil)
	if p.LeftRows != 4 || p.RightRows != 9 {
		t.Fatalf("rows = %d/%d, want 4/9", p.LeftRows, p.RightRows)
	}
	if p.Coverage != 0.75 {
		t.Fatalf("coverage = %g, want 0.75 (3 of 4 rows have candidates)", p.Coverage)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if got.Version != profileVersion || got.Name != "wf" || got.Coverage != 0.75 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if len(got.CandidatesPerRow.Values) != 4 {
		t.Fatalf("candidates-per-row reservoir lost values: %v", got.CandidatesPerRow.Values)
	}
}

func TestParseProfileRejectsWrongVersion(t *testing.T) {
	if _, err := ParseProfile([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("ParseProfile accepted an unknown version")
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.SetFeatureNames([]string{"a"})
	c.ObserveVector([]float64{1})
	c.ObservePrediction(1, 0.5, true)
	if cols := c.ObserveTable("left", nil); cols != nil {
		t.Fatalf("nil collector ObserveTable = %v, want nil", cols)
	}
	if p := c.Profile("t", 0, 0, nil, nil); p != nil {
		t.Fatalf("nil collector Profile = %v, want nil", p)
	}
}

func TestContextPlumbing(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on empty context = %v, want nil", got)
	}
	c := NewCollector(8, 1)
	ctx := WithCollector(context.Background(), c)
	if got := FromContext(ctx); got != c {
		t.Fatal("FromContext did not return the armed collector")
	}
}

func TestIdenticalRunsProduceDriftFreeProfiles(t *testing.T) {
	// The property monitor-smoke relies on: two runs over the same data
	// (below the sample cap) yield profiles that score zero drift, even
	// when observation order differs (parallel stage workers).
	build := func(seed int64, perm []int) *Profile {
		c := NewCollector(DefaultSampleCap, seed)
		for _, i := range perm {
			c.ObserveVector([]float64{float64(i) * 0.1, float64(i * i)})
			c.ObservePrediction(i%3, float64(i)/100, true)
		}
		return c.Profile("wf", 100, 100, []int{1, 2, 0, 4}, nil)
	}
	order1 := make([]int, 100)
	order2 := make([]int, 100)
	for i := range order1 {
		order1[i] = i
		order2[len(order2)-1-i] = i
	}
	a := build(1, order1)
	b := build(99, order2)
	asmt, err := Evaluate(a, b, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if asmt.Verdict != StatusOK {
		t.Fatalf("identical runs scored verdict %q, want ok: %+v", asmt.Verdict, asmt.Signals)
	}
	for _, s := range asmt.Signals {
		if s.Value != 0 {
			t.Fatalf("signal %s = %g on identical data, want 0", s.Name, s.Value)
		}
	}
}
