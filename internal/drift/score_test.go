package drift

import (
	"math/rand"
	"testing"
)

func normals(n int, mean, sd float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + sd*rng.NormFloat64()
	}
	return out
}

func TestPSIIdenticalIsZero(t *testing.T) {
	base := normals(500, 10, 2, 1)
	if got := PSI(base, base); got != 0 {
		t.Fatalf("PSI(x, x) = %g, want exactly 0", got)
	}
}

func TestPSISameDistributionIsSmall(t *testing.T) {
	base := normals(2000, 10, 2, 1)
	live := normals(2000, 10, 2, 2)
	if got := PSI(base, live); got >= 0.1 {
		t.Fatalf("PSI over same distribution = %g, want < 0.1", got)
	}
}

func TestPSIShiftedIsLarge(t *testing.T) {
	base := normals(2000, 10, 2, 1)
	live := normals(2000, 16, 2, 2)
	if got := PSI(base, live); got < 0.25 {
		t.Fatalf("PSI over 3-sigma shift = %g, want >= 0.25", got)
	}
}

func TestPSIEmptySamples(t *testing.T) {
	if got := PSI(nil, normals(10, 0, 1, 1)); got != 0 {
		t.Fatalf("PSI with empty baseline = %g, want 0", got)
	}
	if got := PSI(normals(10, 0, 1, 1), nil); got != 0 {
		t.Fatalf("PSI with empty live = %g, want 0", got)
	}
}

func TestKSIdenticalIsZero(t *testing.T) {
	base := normals(500, 10, 2, 1)
	if got := KS(base, base); got != 0 {
		t.Fatalf("KS(x, x) = %g, want exactly 0", got)
	}
}

func TestKSDisjointIsOne(t *testing.T) {
	base := []float64{1, 2, 3}
	live := []float64{10, 11, 12}
	if got := KS(base, live); got != 1 {
		t.Fatalf("KS over disjoint supports = %g, want 1", got)
	}
}

func TestKSShiftDetectable(t *testing.T) {
	base := normals(2000, 0, 1, 1)
	same := normals(2000, 0, 1, 2)
	shift := normals(2000, 1.5, 1, 3)
	if got := KS(base, same); got >= 0.1 {
		t.Fatalf("KS over same distribution = %g, want < 0.1", got)
	}
	if got := KS(base, shift); got < 0.3 {
		t.Fatalf("KS over 1.5-sigma shift = %g, want >= 0.3", got)
	}
}
