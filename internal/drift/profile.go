// Package drift is the quality-observability layer for deployed
// matchers: it answers the question PR 2's runtime observability leaves
// open — not "did the run finish?" but "can the run be trusted?". The
// paper ends (Section 12) with the matcher packaged and moved into the
// UMETRICS repository "to do matching for other data slices"; nothing in
// the paper tells the team when a new slice has drifted far enough from
// the training slice that the reported 94-100% precision no longer
// holds. This package closes that gap:
//
//   - At train time a Collector captures a compact statistical Profile
//     of the run: per-feature value reservoirs and null rates,
//     token-count and length distributions over the input tables'
//     string attributes, the prediction-score distribution, blocking
//     coverage, and candidate-set size per input row. The profile is
//     persisted with the internal/ckpt atomic-write machinery as the
//     baseline the deployment is trusted against.
//   - On every deployed run the same collector profiles the live slice,
//     and Evaluate scores the live profile against the baseline:
//     population stability index (PSI) and two-sample Kolmogorov-
//     Smirnov statistics per distribution, null-rate, blocking-coverage
//     and match-rate deltas, plus a Corleone-style estimated accuracy
//     (internal/estimate) discounted by the observed drift.
//
// Hot-loop safety follows internal/obs: the nil *Collector is valid and
// every method on it is a single nil-check no-op, so the disabled path
// costs what a disabled obs.Counter costs. Instrumented loops fetch the
// collector once per stage from the context (FromContext) and call one
// Observe per row when armed.
package drift

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"emgo/internal/ckpt"
	"emgo/internal/table"
	"emgo/internal/tokenize"
)

// DefaultSampleCap is the reservoir capacity per tracked distribution.
// Slices smaller than the cap are captured exactly (which makes an
// identical re-run score zero drift); larger slices are uniformly
// subsampled.
const DefaultSampleCap = 1024

// profileVersion is bumped when the Profile schema changes shape.
const profileVersion = 1

// Sample is one captured distribution: a uniform reservoir of observed
// values plus the counts needed for rates (total observations and how
// many were null/missing). Values is kept sorted in the marshaled form.
type Sample struct {
	// Count is every observation offered, null or not.
	Count int64 `json:"count"`
	// Nulls is how many observations were missing (NaN features, null
	// cells).
	Nulls int64 `json:"nulls,omitempty"`
	// Values is the reservoir over the non-null observations.
	Values []float64 `json:"values,omitempty"`
}

// NullRate returns Nulls/Count (0 when nothing was observed).
func (s *Sample) NullRate() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.Nulls) / float64(s.Count)
}

// Mean returns the mean of the reservoir (0 when empty).
func (s *Sample) Mean() float64 {
	if s == nil || len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// FeatureProfile is the captured distribution of one feature column of
// the vectorized candidate pairs.
type FeatureProfile struct {
	// Name is the feature name when the caller supplied one
	// (workflow.RunCtx does); otherwise "feature[i]".
	Name string `json:"name"`
	Sample
}

// ColumnProfile is the captured shape of one string attribute of an
// input table: word-token counts and character lengths of non-null
// values, plus the null rate. Blocking lives on these attributes, so a
// shift here predicts blocking-coverage loss before it happens.
type ColumnProfile struct {
	// Side is "left" or "right".
	Side string `json:"side"`
	// Column is the attribute name.
	Column string `json:"column"`
	// Tokens samples the per-value word-token count.
	Tokens Sample `json:"tokens"`
	// Lengths samples the per-value character length.
	Lengths Sample `json:"lengths"`
}

// Profile is the compact statistical fingerprint of one matching run —
// the baseline snapshot at train time, the live profile on a deployed
// run. It is JSON-serializable and persisted atomically (WriteFile).
type Profile struct {
	Version int `json:"version"`
	// Name identifies the workflow that produced the profile.
	Name string `json:"name,omitempty"`
	// CreatedAt is when the profile was built.
	CreatedAt time.Time `json:"created_at"`
	// SampleCap is the reservoir capacity the collector ran with.
	SampleCap int `json:"sample_cap"`

	// LeftRows / RightRows are the input table sizes.
	LeftRows  int `json:"left_rows"`
	RightRows int `json:"right_rows"`

	// Features are the per-feature value distributions and null rates.
	Features []FeatureProfile `json:"features,omitempty"`
	// Columns are the string-attribute shapes of both input tables.
	Columns []ColumnProfile `json:"columns,omitempty"`
	// Scores is the prediction-score distribution (probabilistic
	// matchers only; empty otherwise).
	Scores Sample `json:"scores"`
	// Predicted / PredictedMatches count matcher decisions and how many
	// were matches; their ratio is the match rate.
	Predicted        int64 `json:"predicted"`
	PredictedMatches int64 `json:"predicted_matches"`
	// CandidatesPerRow samples the candidate-set size per left row
	// (zeros included), and Coverage is the fraction of left rows with
	// at least one candidate.
	CandidatesPerRow Sample  `json:"candidates_per_row"`
	Coverage         float64 `json:"coverage"`

	// EstimatedPrecision optionally carries the labeled accuracy
	// estimate of the training run (Section 11) so deployed runs can
	// fold a drift-discounted version of it into their reports.
	// Lo/Point/Hi in [0,1].
	EstimatedPrecision []float64 `json:"estimated_precision,omitempty"`
}

// MatchRate returns PredictedMatches/Predicted (0 when nothing was
// predicted).
func (p *Profile) MatchRate() float64 {
	if p == nil || p.Predicted == 0 {
		return 0
	}
	return float64(p.PredictedMatches) / float64(p.Predicted)
}

// Marshal renders the profile as indented JSON.
func (p *Profile) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParseProfile parses a profile produced by Marshal.
func ParseProfile(data []byte) (*Profile, error) {
	p := &Profile{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("drift: parse profile: %w", err)
	}
	if p.Version != profileVersion {
		return nil, fmt.Errorf("drift: profile version %d, want %d", p.Version, profileVersion)
	}
	return p, nil
}

// WriteFile persists the profile with the repository's durability
// protocol: temp file + fsync + atomic rename (internal/ckpt). A crash
// mid-write leaves the previous baseline intact.
func (p *Profile) WriteFile(path string) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return ckpt.AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// LoadProfile reads and parses a profile file.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseProfile(data)
}

// reservoir is a uniform fixed-capacity sample (Vitter's algorithm R).
type reservoir struct {
	cap    int
	seen   int64
	nulls  int64
	values []float64
}

// observe offers one value; NaN counts as null. rng drives replacement
// once the reservoir is full.
func (r *reservoir) observe(v float64, isNull bool, rng *rand.Rand) {
	r.seen++
	if isNull {
		r.nulls++
		return
	}
	if len(r.values) < r.cap {
		r.values = append(r.values, v)
		return
	}
	if j := rng.Int63n(r.seen - r.nulls); j < int64(r.cap) {
		r.values[j] = v
	}
}

// sample exports the reservoir sorted, so identical value sets compare
// equal regardless of arrival order.
func (r *reservoir) sample() Sample {
	out := Sample{Count: r.seen, Nulls: r.nulls}
	if len(r.values) > 0 {
		out.Values = append([]float64(nil), r.values...)
		sort.Float64s(out.Values)
	}
	return out
}

// Collector accumulates a Profile while a run executes. The nil
// collector is valid and every method is a nil-check no-op — the
// disabled path instrumented loops pay. When armed, each Observe is one
// mutex acquisition and a reservoir append.
type Collector struct {
	mu       sync.Mutex
	cap      int
	rng      *rand.Rand
	names    []string
	features []*reservoir
	scores   *reservoir
	preds    int64
	matches  int64
}

// NewCollector returns an armed collector. cap <= 0 selects
// DefaultSampleCap; seed makes reservoir subsampling reproducible.
func NewCollector(cap int, seed int64) *Collector {
	if cap <= 0 {
		cap = DefaultSampleCap
	}
	return &Collector{
		cap:    cap,
		rng:    rand.New(rand.NewSource(seed)),
		scores: &reservoir{cap: cap},
	}
}

// SetFeatureNames records the feature names used to label the profile's
// feature distributions. Safe on nil.
func (c *Collector) SetFeatureNames(names []string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.names = append([]string(nil), names...)
	c.mu.Unlock()
}

// ObserveVector records one vectorized candidate pair: each element
// feeds its feature's reservoir, NaN counting as a missing value. Safe
// on nil (a single nil check).
func (c *Collector) ObserveVector(row []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	for len(c.features) < len(row) {
		c.features = append(c.features, &reservoir{cap: c.cap})
	}
	for i, v := range row {
		c.features[i].observe(v, v != v, c.rng) // v != v is NaN
	}
	c.mu.Unlock()
}

// ObservePrediction records one matcher decision and, when the matcher
// is probabilistic, its score. Safe on nil.
func (c *Collector) ObservePrediction(label int, score float64, scored bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.preds++
	if label == 1 {
		c.matches++
	}
	if scored {
		c.scores.observe(score, score != score, c.rng)
	}
	c.mu.Unlock()
}

// ObserveTable profiles every string column of t under the given side
// label ("left"/"right"): token counts, value lengths, and null rates.
// One pass over the table; called once per run, off the hot path. Safe
// on nil.
func (c *Collector) ObserveTable(side string, t *table.Table) []ColumnProfile {
	if c == nil || t == nil {
		return nil
	}
	tok := tokenize.Word{}
	schema := t.Schema()
	var out []ColumnProfile
	for j := 0; j < schema.Len(); j++ {
		f := schema.Field(j)
		if f.Kind != table.String {
			continue
		}
		tokens := &reservoir{cap: c.cap}
		lengths := &reservoir{cap: c.cap}
		c.mu.Lock()
		for i := 0; i < t.Len(); i++ {
			v := t.Row(i)[j]
			if v.IsNull() {
				tokens.observe(0, true, c.rng)
				lengths.observe(0, true, c.rng)
				continue
			}
			s := v.Str()
			tokens.observe(float64(len(tok.Tokens(s))), false, c.rng)
			lengths.observe(float64(len(s)), false, c.rng)
		}
		c.mu.Unlock()
		out = append(out, ColumnProfile{
			Side: side, Column: f.Name,
			Tokens: tokens.sample(), Lengths: lengths.sample(),
		})
	}
	return out
}

// Profile assembles the collected statistics into a Profile. The
// candidate-coverage inputs come from the workflow (per-left-row
// candidate counts); columns from prior ObserveTable calls are passed
// back in by the caller. Safe on nil (returns nil).
func (c *Collector) Profile(name string, leftRows, rightRows int, perRow []int, columns []ColumnProfile) *Profile {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &Profile{
		Version:   profileVersion,
		Name:      name,
		CreatedAt: time.Now(),
		SampleCap: c.cap,
		LeftRows:  leftRows,
		RightRows: rightRows,
		Columns:   columns,
		Scores:    c.scores.sample(),
		Predicted: c.preds, PredictedMatches: c.matches,
	}
	for i, r := range c.features {
		name := fmt.Sprintf("feature[%d]", i)
		if i < len(c.names) {
			name = c.names[i]
		}
		p.Features = append(p.Features, FeatureProfile{Name: name, Sample: r.sample()})
	}
	cand := &reservoir{cap: c.cap}
	covered := 0
	for _, n := range perRow {
		cand.observe(float64(n), false, c.rng)
		if n > 0 {
			covered++
		}
	}
	p.CandidatesPerRow = cand.sample()
	if len(perRow) > 0 {
		p.Coverage = float64(covered) / float64(len(perRow))
	}
	return p
}

// collectorKey threads the armed collector through contexts, mirroring
// the obs span plumbing: instrumentation sites pay one context lookup
// per stage and a nil check per row when no collector is armed.
type collectorKey struct{}

// WithCollector returns a context carrying c.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, collectorKey{}, c)
}

// FromContext returns the armed collector, or nil.
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}
