package drift

import (
	"testing"
	"time"
)

// profileWith builds a minimal profile whose single feature holds the
// given sample values.
func profileWith(values []float64, nulls int64) *Profile {
	return &Profile{
		Version: profileVersion, Name: "t", CreatedAt: time.Unix(0, 0),
		SampleCap: DefaultSampleCap, LeftRows: 10, RightRows: 10,
		Features: []FeatureProfile{{
			Name:   "jaccard",
			Sample: Sample{Count: int64(len(values)) + nulls, Nulls: nulls, Values: values},
		}},
		Predicted: 100, PredictedMatches: 40, Coverage: 0.9,
	}
}

func TestEvaluateIdenticalIsOK(t *testing.T) {
	base := profileWith(normals(500, 0.5, 0.1, 1), 0)
	live := profileWith(append([]float64(nil), base.Features[0].Values...), 0)
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if a.Verdict != StatusOK || a.Breached() {
		t.Fatalf("identical profiles: verdict %q breached=%v, want ok", a.Verdict, a.Breached())
	}
	if len(a.Signals) == 0 {
		t.Fatal("assessment carries no signals")
	}
}

func TestEvaluateShiftedFeatureFails(t *testing.T) {
	base := profileWith(normals(1000, 0.5, 0.05, 1), 0)
	live := profileWith(normals(1000, 0.9, 0.05, 2), 0)
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !a.Breached() {
		t.Fatalf("8-sigma feature shift did not breach: %+v", a.Signals)
	}
	// The headline PSI signal must name the drifted distribution.
	found := false
	for _, s := range a.Signals {
		if s.Name == "psi.feature.jaccard" && s.Status == StatusFail {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failing psi.feature.jaccard signal in %+v", a.Signals)
	}
}

func TestEvaluateNullRateIncrease(t *testing.T) {
	base := profileWith(normals(400, 0.5, 0.1, 1), 0)
	live := profileWith(append([]float64(nil), base.Features[0].Values...), 400) // 50% null
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	var null Signal
	for _, s := range a.Signals {
		if s.Name == "null_rate.feature.jaccard" {
			null = s
		}
	}
	if null.Status != StatusFail || null.Value != 0.5 {
		t.Fatalf("null-rate signal = %+v, want fail at 0.5", null)
	}
}

func TestEvaluateCoverageDrop(t *testing.T) {
	base := profileWith(normals(100, 0.5, 0.1, 1), 0)
	live := profileWith(append([]float64(nil), base.Features[0].Values...), 0)
	live.Coverage = base.Coverage - 0.5
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	var cov Signal
	for _, s := range a.Signals {
		if s.Name == "coverage_drop" {
			cov = s
		}
	}
	if cov.Status != StatusFail || cov.Value != 0.5 {
		t.Fatalf("coverage_drop = %+v, want fail at 0.5", cov)
	}
}

func TestEvaluateMissingFeatureFails(t *testing.T) {
	base := profileWith(normals(100, 0.5, 0.1, 1), 0)
	live := profileWith(append([]float64(nil), base.Features[0].Values...), 0)
	live.Features[0].Name = "renamed"
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !a.Breached() {
		t.Fatal("schema break (missing baseline feature) did not breach")
	}
	found := false
	for _, s := range a.Signals {
		if s.Name == "missing.feature jaccard" && s.Status == StatusFail {
			found = true
		}
	}
	if !found {
		t.Fatalf("no missing-feature signal in %+v", a.Signals)
	}
}

func TestEvaluateRequiresBothProfiles(t *testing.T) {
	if _, err := Evaluate(nil, profileWith(nil, 0), Thresholds{}); err == nil {
		t.Fatal("Evaluate accepted a nil baseline")
	}
	if _, err := Evaluate(profileWith(nil, 0), nil, Thresholds{}); err == nil {
		t.Fatal("Evaluate accepted a nil live profile")
	}
}

func TestEstimatedPrecisionWidensWithDrift(t *testing.T) {
	base := profileWith(normals(1000, 0.5, 0.05, 1), 0)
	base.EstimatedPrecision = []float64{0.94, 0.97, 1.0}

	same := profileWith(append([]float64(nil), base.Features[0].Values...), 0)
	aOK, err := Evaluate(base, same, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if aOK.EstimatedPrecision == nil {
		t.Fatal("no estimated precision carried from the baseline")
	}
	if aOK.EstimatedPrecision.Lo != 0.94 || aOK.EstimatedPrecision.Hi != 1.0 {
		t.Fatalf("zero drift changed the interval: %+v", aOK.EstimatedPrecision)
	}

	drifted := profileWith(normals(1000, 0.9, 0.05, 2), 0)
	aBad, err := Evaluate(base, drifted, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if aBad.EstimatedPrecision.Lo >= aOK.EstimatedPrecision.Lo {
		t.Fatalf("drift did not widen the interval: ok lo %g, drifted lo %g",
			aOK.EstimatedPrecision.Lo, aBad.EstimatedPrecision.Lo)
	}
	if aBad.EstimatedPrecision.Point != 0.97 {
		t.Fatalf("widening moved the point estimate: %g", aBad.EstimatedPrecision.Point)
	}
}

func TestEstimatedPrecisionSelfEstimateFromScores(t *testing.T) {
	base := profileWith(normals(200, 0.5, 0.05, 1), 0)
	live := profileWith(append([]float64(nil), base.Features[0].Values...), 0)
	live.Scores = Sample{Count: 100, Values: []float64{0.9, 0.95, 0.2, 0.8}}
	live.Predicted, live.PredictedMatches = 100, 40
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if a.EstimatedPrecision == nil {
		t.Fatal("no self-estimate produced from calibrated scores")
	}
	// Mean of the >= 0.5 scores: (0.9 + 0.95 + 0.8) / 3.
	want := (0.9 + 0.95 + 0.8) / 3
	if got := a.EstimatedPrecision.Point; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("self-estimate point = %g, want %g", got, want)
	}
}

func TestQualityDataRoundTrip(t *testing.T) {
	base := profileWith(normals(200, 0.5, 0.05, 1), 0)
	live := profileWith(normals(200, 0.52, 0.05, 2), 0)
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	qd := a.QualityData(live)
	if qd == nil || qd.Verdict != a.Verdict || len(qd.Signals) != len(a.Signals) {
		t.Fatalf("QualityData mismatch: %+v vs %+v", qd, a)
	}
	got, err := ProfileFromQuality(qd)
	if err != nil {
		t.Fatalf("ProfileFromQuality: %v", err)
	}
	if got.Name != live.Name || len(got.Features) != len(live.Features) {
		t.Fatalf("embedded profile did not round-trip: %+v", got)
	}
}

func TestCaptureQuality(t *testing.T) {
	if CaptureQuality(nil) != nil {
		t.Fatal("CaptureQuality(nil) should be nil")
	}
	qd := CaptureQuality(profileWith(nil, 0))
	if qd.Verdict != VerdictCaptured || len(qd.Profile) == 0 {
		t.Fatalf("capture quality section = %+v", qd)
	}
	if _, err := ProfileFromQuality(qd); err != nil {
		t.Fatalf("capture section profile unreadable: %v", err)
	}
}

func TestPenaltyMonotoneAndCapped(t *testing.T) {
	a := &Assessment{}
	if a.penalty() != 0 {
		t.Fatalf("penalty with no signals = %g", a.penalty())
	}
	a.Signals = []Signal{{Status: StatusWarn}}
	warn1 := a.penalty()
	a.Signals = append(a.Signals, Signal{Status: StatusFail})
	warnFail := a.penalty()
	if !(warn1 > 0 && warnFail > warn1) {
		t.Fatalf("penalty not monotone: %g then %g", warn1, warnFail)
	}
	for i := 0; i < 20; i++ {
		a.Signals = append(a.Signals, Signal{Status: StatusFail})
	}
	if a.penalty() != 0.5 {
		t.Fatalf("penalty cap = %g, want 0.5", a.penalty())
	}
}

func TestThresholdZeroValueSelectsDefaults(t *testing.T) {
	base := profileWith(normals(100, 0.5, 0.1, 1), 0)
	live := profileWith(append([]float64(nil), base.Features[0].Values...), 0)
	a, err := Evaluate(base, live, Thresholds{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if a.Thresholds != DefaultThresholds() {
		t.Fatalf("zero thresholds were not defaulted: %+v", a.Thresholds)
	}
}
