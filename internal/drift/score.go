package drift

import (
	"math"
	"sort"
)

// This file holds the distribution-distance primitives the assessment
// is built from: the population stability index (PSI) used across the
// model-monitoring literature (≤ 0.1 stable, 0.1-0.25 moderate shift,
// > 0.25 major shift), and the two-sample Kolmogorov-Smirnov statistic,
// which is threshold-free and catches shape changes PSI's coarse bins
// miss.

// psiFloor keeps empty bins from producing infinite PSI terms; both
// distributions are smoothed by the same floor, so identical samples
// still score exactly zero.
const psiFloor = 1e-4

// psiBins is how many quantile bins PSI uses (deciles, the conventional
// choice).
const psiBins = 10

// PSI computes the population stability index of live against base.
// Bin edges are the deciles of the baseline sample, so the baseline is
// uniform across bins by construction and the score reflects where the
// live mass moved. Degenerate baselines (constant values, too few
// distinct points) collapse to fewer bins. Either sample empty scores
// 0: there is nothing to compare, and the missing-data story is told by
// the null-rate signal instead.
func PSI(base, live []float64) float64 {
	if len(base) == 0 || len(live) == 0 {
		return 0
	}
	edges := quantileEdges(base, psiBins)
	bp := binShares(base, edges)
	lp := binShares(live, edges)
	var psi float64
	for i := range bp {
		p := math.Max(bp[i], psiFloor)
		q := math.Max(lp[i], psiFloor)
		psi += (q - p) * math.Log(q/p)
	}
	return psi
}

// quantileEdges returns the deduplicated interior quantile cut points of
// a sorted-or-not sample; k bins need k-1 edges.
func quantileEdges(sample []float64, k int) []float64 {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	edges := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		q := s[(i*len(s))/k]
		if len(edges) == 0 || q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	return edges
}

// binShares returns the fraction of sample in each bin defined by the
// interior edges (len(edges)+1 bins). The exact tie convention does not
// matter for correctness as long as it is the same for both samples:
// identical samples then bin identically and PSI scores exactly zero.
func binShares(sample []float64, edges []float64) []float64 {
	counts := make([]float64, len(edges)+1)
	for _, v := range sample {
		counts[sort.SearchFloat64s(edges, v)]++
	}
	n := float64(len(sample))
	for i := range counts {
		counts[i] /= n
	}
	return counts
}

// KS computes the two-sample Kolmogorov-Smirnov statistic
// D = sup |F_base(x) - F_live(x)| in [0,1]. Either sample empty scores
// 0 (see PSI).
func KS(base, live []float64) float64 {
	if len(base) == 0 || len(live) == 0 {
		return 0
	}
	a := append([]float64(nil), base...)
	b := append([]float64(nil), live...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	// Walk the merged support one distinct value at a time, consuming
	// ties from both samples before comparing the CDFs — comparing
	// mid-tie would report a spurious gap on identical samples.
	for i < len(a) && j < len(b) {
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}
