package drift

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"emgo/internal/estimate"
	"emgo/internal/obs"
)

// Signal status and assessment verdict vocabulary.
const (
	// StatusOK marks a signal inside its warn threshold.
	StatusOK = "ok"
	// StatusWarn marks a signal between warn and fail.
	StatusWarn = "warn"
	// StatusFail marks a signal at or past fail.
	StatusFail = "fail"
)

// Thresholds are the configurable warn/fail cut points per signal
// family. A warn means "look at this run"; a fail means the deployed
// matcher's training-time accuracy claim should no longer be trusted
// for this slice (emmonitor check exits non-zero on it).
type Thresholds struct {
	// PSIWarn/PSIFail bound the worst per-distribution population
	// stability index (feature values, token counts, lengths, scores).
	// The conventional bands are 0.1 / 0.25.
	PSIWarn float64 `json:"psi_warn"`
	PSIFail float64 `json:"psi_fail"`
	// KSWarn/KSFail bound the worst two-sample KS statistic.
	KSWarn float64 `json:"ks_warn"`
	KSFail float64 `json:"ks_fail"`
	// NullRateWarn/NullRateFail bound the worst absolute null-rate
	// increase of any feature or profiled column.
	NullRateWarn float64 `json:"null_rate_warn"`
	NullRateFail float64 `json:"null_rate_fail"`
	// CoverageWarn/CoverageFail bound the drop in blocking coverage
	// (fraction of left rows with at least one candidate).
	CoverageWarn float64 `json:"coverage_warn"`
	CoverageFail float64 `json:"coverage_fail"`
	// MatchRateWarn/MatchRateFail bound the absolute change in the
	// matcher's predicted-match rate over candidates.
	MatchRateWarn float64 `json:"match_rate_warn"`
	MatchRateFail float64 `json:"match_rate_fail"`
}

// DefaultThresholds returns the conventional monitoring bands.
func DefaultThresholds() Thresholds {
	return Thresholds{
		PSIWarn: 0.10, PSIFail: 0.25,
		KSWarn: 0.15, KSFail: 0.30,
		NullRateWarn: 0.05, NullRateFail: 0.20,
		CoverageWarn: 0.05, CoverageFail: 0.20,
		MatchRateWarn: 0.10, MatchRateFail: 0.25,
	}
}

// Signal is one scored drift indicator.
type Signal struct {
	// Name is "psi.<dist>", "ks.<dist>", "null_rate.<dist>",
	// "coverage_drop", or "match_rate_delta".
	Name string `json:"name"`
	// Value is the observed statistic.
	Value float64 `json:"value"`
	// Warn and Fail are the thresholds the value was judged against.
	Warn float64 `json:"warn"`
	Fail float64 `json:"fail"`
	// Status is ok, warn, or fail.
	Status string `json:"status"`
}

// Assessment is the outcome of scoring a live profile against a
// baseline: the worst signal per family plus every breaching signal,
// and the drift-discounted accuracy estimate.
type Assessment struct {
	// Verdict is the worst signal status: ok, warn, or fail.
	Verdict string `json:"verdict"`
	// Signals carries the headline (worst-per-family) signals first,
	// then every additional signal that warned or failed.
	Signals []Signal `json:"signals"`
	// EstimatedPrecision is the Corleone-style accuracy carried from
	// the baseline (or self-estimated from prediction scores), widened
	// by the observed drift — the honest version of "94-100% precision"
	// for this slice. Nil when neither source is available.
	EstimatedPrecision *estimate.Interval `json:"estimated_precision,omitempty"`
	// Thresholds echoes the cut points the assessment used.
	Thresholds Thresholds `json:"thresholds"`
}

// Breached reports whether any signal failed.
func (a *Assessment) Breached() bool { return a != nil && a.Verdict == StatusFail }

// status grades one value against a warn/fail pair.
func status(v, warn, fail float64) string {
	switch {
	case fail > 0 && v >= fail:
		return StatusFail
	case warn > 0 && v >= warn:
		return StatusWarn
	default:
		return StatusOK
	}
}

// worse returns the more severe of two statuses.
func worse(a, b string) string {
	rank := map[string]int{StatusOK: 0, StatusWarn: 1, StatusFail: 2}
	if rank[b] > rank[a] {
		return b
	}
	return a
}

// namedDist pairs a distribution name with its baseline and live
// samples for the PSI/KS/null-rate sweep.
type namedDist struct {
	name       string
	base, live *Sample
}

// distributions aligns the comparable distributions of two profiles.
// Features align by name (the feature set is part of the deployed spec,
// so names are stable across runs); columns by side+name.
func distributions(base, live *Profile) ([]namedDist, []string) {
	var out []namedDist
	var missing []string
	liveFeat := make(map[string]*Sample, len(live.Features))
	for i := range live.Features {
		liveFeat[live.Features[i].Name] = &live.Features[i].Sample
	}
	for i := range base.Features {
		name := base.Features[i].Name
		ls, ok := liveFeat[name]
		if !ok {
			missing = append(missing, "feature "+name)
			continue
		}
		out = append(out, namedDist{"feature." + name, &base.Features[i].Sample, ls})
	}
	liveCol := make(map[string]*ColumnProfile, len(live.Columns))
	for i := range live.Columns {
		cp := &live.Columns[i]
		liveCol[cp.Side+"."+cp.Column] = cp
	}
	for i := range base.Columns {
		cp := &base.Columns[i]
		lc, ok := liveCol[cp.Side+"."+cp.Column]
		if !ok {
			missing = append(missing, "column "+cp.Side+"."+cp.Column)
			continue
		}
		out = append(out,
			namedDist{"tokens." + cp.Side + "." + cp.Column, &cp.Tokens, &lc.Tokens},
			namedDist{"len." + cp.Side + "." + cp.Column, &cp.Lengths, &lc.Lengths},
		)
	}
	out = append(out, namedDist{"scores", &base.Scores, &live.Scores})
	return out, missing
}

// Evaluate scores live against base under the given thresholds. Zero
// thresholds mean DefaultThresholds.
func Evaluate(base, live *Profile, th Thresholds) (*Assessment, error) {
	if base == nil || live == nil {
		return nil, fmt.Errorf("drift: evaluate needs both a baseline and a live profile")
	}
	if th == (Thresholds{}) {
		th = DefaultThresholds()
	}
	a := &Assessment{Verdict: StatusOK, Thresholds: th}

	dists, missing := distributions(base, live)
	// A distribution present in the baseline but absent live is a
	// schema break: the deployed slice cannot be scored, so fail.
	for _, m := range missing {
		a.add(Signal{Name: "missing." + m, Value: 1, Warn: 0.5, Fail: 0.5, Status: StatusFail})
	}

	worstPSI := Signal{Name: "psi", Warn: th.PSIWarn, Fail: th.PSIFail, Status: StatusOK}
	worstKS := Signal{Name: "ks", Warn: th.KSWarn, Fail: th.KSFail, Status: StatusOK}
	worstNull := Signal{Name: "null_rate", Warn: th.NullRateWarn, Fail: th.NullRateFail, Status: StatusOK}
	var extra []Signal
	for _, d := range dists {
		psi := PSI(d.base.Values, d.live.Values)
		ks := KS(d.base.Values, d.live.Values)
		nullDelta := math.Max(0, d.live.NullRate()-d.base.NullRate())
		for _, s := range []struct {
			worst      *Signal
			value      float64
			warn, fail float64
			prefix     string
		}{
			{&worstPSI, psi, th.PSIWarn, th.PSIFail, "psi."},
			{&worstKS, ks, th.KSWarn, th.KSFail, "ks."},
			{&worstNull, nullDelta, th.NullRateWarn, th.NullRateFail, "null_rate."},
		} {
			if s.value > s.worst.Value || !strings.Contains(s.worst.Name, ".") {
				s.worst.Name = s.prefix + d.name
				s.worst.Value = s.value
			}
			if st := status(s.value, s.warn, s.fail); st != StatusOK {
				extra = append(extra, Signal{Name: s.prefix + d.name, Value: s.value,
					Warn: s.warn, Fail: s.fail, Status: st})
			}
		}
	}
	worstPSI.Status = status(worstPSI.Value, th.PSIWarn, th.PSIFail)
	worstKS.Status = status(worstKS.Value, th.KSWarn, th.KSFail)
	worstNull.Status = status(worstNull.Value, th.NullRateWarn, th.NullRateFail)
	a.add(worstPSI)
	a.add(worstKS)
	a.add(worstNull)

	coverageDrop := math.Max(0, base.Coverage-live.Coverage)
	a.add(Signal{Name: "coverage_drop", Value: coverageDrop,
		Warn: th.CoverageWarn, Fail: th.CoverageFail,
		Status: status(coverageDrop, th.CoverageWarn, th.CoverageFail)})

	matchDelta := math.Abs(base.MatchRate() - live.MatchRate())
	a.add(Signal{Name: "match_rate_delta", Value: matchDelta,
		Warn: th.MatchRateWarn, Fail: th.MatchRateFail,
		Status: status(matchDelta, th.MatchRateWarn, th.MatchRateFail)})

	// Headline signals first, then the individual breaches (skipping
	// ones already shown as a headline).
	seen := make(map[string]bool, len(a.Signals))
	for _, s := range a.Signals {
		seen[s.Name] = true
	}
	for _, s := range extra {
		if !seen[s.Name] {
			seen[s.Name] = true
			a.Signals = append(a.Signals, s)
		}
	}

	a.EstimatedPrecision = estimatePrecision(base, live, a)
	return a, nil
}

// add appends a signal and folds its status into the verdict.
func (a *Assessment) add(s Signal) {
	a.Signals = append(a.Signals, s)
	a.Verdict = worse(a.Verdict, s.Status)
}

// estimatePrecision folds a Corleone-style accuracy estimate into the
// assessment (Section 11 via internal/estimate): the baseline's labeled
// estimate when it carries one, otherwise a self-estimate from the
// matcher's calibrated scores (mean P(match) over predicted matches,
// Wilson interval at the predicted-match count). Either way the
// interval is widened by the observed drift — the further the slice has
// moved from the training slice, the less the training-time numbers can
// be trusted.
func estimatePrecision(base, live *Profile, a *Assessment) *estimate.Interval {
	var iv estimate.Interval
	switch {
	case len(base.EstimatedPrecision) == 3:
		iv = estimate.Interval{
			Lo: base.EstimatedPrecision[0], Point: base.EstimatedPrecision[1], Hi: base.EstimatedPrecision[2],
		}
	case len(live.Scores.Values) > 0 && live.Predicted > 0:
		rate := meanAbove(live.Scores.Values, 0.5)
		iv = estimate.WilsonFromRate(rate, int(live.PredictedMatches))
	default:
		return nil
	}
	widened := iv.Widen(a.penalty())
	return &widened
}

// penalty maps the assessment's signals to an interval-widening amount
// in [0, 0.5]: each warn contributes a little uncertainty, each fail a
// lot. Zero drift leaves the estimate untouched.
func (a *Assessment) penalty() float64 {
	var p float64
	for _, s := range a.Signals {
		switch s.Status {
		case StatusWarn:
			p += 0.02
		case StatusFail:
			p += 0.10
		}
	}
	return math.Min(p, 0.5)
}

// meanAbove averages the values at or above the cut (the scores of
// predicted matches under a 0.5 decision threshold); falls back to the
// overall mean when none qualify.
func meanAbove(values []float64, cut float64) float64 {
	var sum float64
	n := 0
	for _, v := range values {
		if v >= cut {
			sum += v
			n++
		}
	}
	if n == 0 {
		s := Sample{Values: values}
		return s.Mean()
	}
	return sum / float64(n)
}

// QualityData renders the assessment (plus the live profile) in the
// neutral schema run reports embed, so obs has no dependency on this
// package.
func (a *Assessment) QualityData(live *Profile) *obs.QualityData {
	if a == nil {
		return nil
	}
	qd := &obs.QualityData{Verdict: a.Verdict}
	for _, s := range a.Signals {
		qd.Signals = append(qd.Signals, obs.QualitySignal{
			Name: s.Name, Value: s.Value, Warn: s.Warn, Fail: s.Fail, Status: s.Status,
		})
	}
	if a.EstimatedPrecision != nil {
		qd.EstimatedPrecision = []float64{
			a.EstimatedPrecision.Lo, a.EstimatedPrecision.Point, a.EstimatedPrecision.Hi,
		}
	}
	if live != nil {
		if data, err := json.Marshal(live); err == nil {
			qd.Profile = data
		}
	}
	return qd
}

// VerdictCaptured marks the quality section of a capture-mode run: the
// report embeds a profile but no drift assessment (there was no baseline
// to score against).
const VerdictCaptured = "captured"

// CaptureQuality renders a capture-mode profile as a report quality
// section: no signals, the VerdictCaptured verdict, and the profile
// embedded so emmonitor check can score the run later against any
// baseline.
func CaptureQuality(live *Profile) *obs.QualityData {
	if live == nil {
		return nil
	}
	qd := &obs.QualityData{Verdict: VerdictCaptured}
	if data, err := json.Marshal(live); err == nil {
		qd.Profile = data
	}
	return qd
}

// ProfileFromQuality recovers the live profile a run report embedded in
// its quality section (what emmonitor check re-evaluates against a
// baseline, possibly under different thresholds).
func ProfileFromQuality(qd *obs.QualityData) (*Profile, error) {
	if qd == nil || len(qd.Profile) == 0 {
		return nil, fmt.Errorf("drift: run report carries no quality profile")
	}
	return ParseProfile(qd.Profile)
}

// Gauges publishes the assessment's headline signals as obs float
// gauges (drift.psi, drift.ks, drift.null_rate, drift.coverage_drop,
// drift.match_rate_delta) so the debug server's /metrics endpoint can
// be scraped while a monitored process runs.
func (a *Assessment) Gauges() {
	if a == nil {
		return
	}
	for _, s := range a.Signals {
		name := s.Name
		if i := strings.IndexByte(name, '.'); i > 0 {
			name = name[:i]
		}
		g := obs.FG("drift." + name)
		if g.Value() < s.Value {
			g.Set(s.Value)
		}
	}
}
