package ml

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"emgo/internal/fault"
	"emgo/internal/parallel"
)

// forestDataset builds a small separable dataset.
func forestDataset(t *testing.T) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		v := rng.Float64()
		if i%2 == 0 {
			x = append(x, []float64{v * 0.4, rng.Float64()})
			y = append(y, 0)
		} else {
			x = append(x, []float64{0.6 + v*0.4, rng.Float64()})
			y = append(y, 1)
		}
	}
	ds, err := NewDataset([]string{"a", "b"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestForestFitCtxInjectedPanicSurfacesAsError(t *testing.T) {
	defer fault.Reset()
	ds := forestDataset(t)
	fault.Enable("ml.forest.fit", fault.Plan{Mode: fault.ModePanic, Indices: []int{3}})

	f := &RandomForest{Trees: 10, Seed: 42}
	err := f.FitCtx(context.Background(), ds)
	if err == nil {
		t.Fatal("injected worker panic must surface as an error")
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) || pe.Index != 3 {
		t.Fatalf("err: %v", err)
	}
	if !strings.Contains(err.Error(), "index 3") {
		t.Fatalf("error should name the failing tree: %v", err)
	}

	// After the fault is cleared, the same forest trains fine and is
	// bit-identical to an untouched sequential fit.
	fault.Reset()
	if err := f.FitCtx(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	ref := &RandomForest{Trees: 10, Seed: 42}
	if err := ref.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for i, row := range ds.X {
		if f.Predict(row) != ref.Predict(row) {
			t.Fatalf("recovered fit diverges at row %d", i)
		}
	}
}

func TestForestFitCtxCancelled(t *testing.T) {
	ds := forestDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &RandomForest{Trees: 50, Seed: 1}
	err := f.FitCtx(ctx, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
}

func TestFailedFitLeavesForestUnfitted(t *testing.T) {
	defer fault.Reset()
	ds := forestDataset(t)
	fault.Enable("ml.forest.fit", fault.Plan{Indices: []int{0}})
	f := &RandomForest{Trees: 5, Seed: 1}
	if err := f.FitCtx(context.Background(), ds); err == nil {
		t.Fatal("expected injected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("predicting with a failed fit should panic as before Fit")
		}
	}()
	f.Predict(ds.X[0])
}

func TestPredictAllCtx(t *testing.T) {
	ds := forestDataset(t)
	m := &DecisionTree{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	got, err := PredictAllCtx(context.Background(), m, ds.X)
	if err != nil {
		t.Fatal(err)
	}
	want := PredictAll(m, ds.X)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d vs %d", i, got[i], want[i])
		}
	}

	// An unfitted forest panics per row; the ctx form converts that to an
	// error with the failing row.
	unfitted := &RandomForest{}
	_, err = PredictAllCtx(context.Background(), unfitted, ds.X[:3])
	if err == nil {
		t.Fatal("unfitted matcher must error, not crash")
	}
	if _, ok := parallel.FailingIndex(err); !ok {
		t.Fatalf("error should carry a row index: %v", err)
	}
}

func TestPredictAllCtxFaultSite(t *testing.T) {
	defer fault.Reset()
	ds := forestDataset(t)
	m := &DecisionTree{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	fault.Enable("ml.predict", fault.Plan{Indices: []int{7}})
	_, err := PredictAllCtx(context.Background(), m, ds.X)
	if idx, ok := parallel.FailingIndex(err); !ok || idx != 7 {
		t.Fatalf("err: %v", err)
	}
}

func TestLeaveOneOutDebugCtxCancelled(t *testing.T) {
	ds := forestDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := LeaveOneOutDebugCtx(ctx, Factory{Name: "dt", New: func() Matcher { return &DecisionTree{} }}, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v", err)
	}
}
