package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// standardizer rescales features to zero mean / unit variance; the linear
// models fit it on training data and apply it at prediction time so
// features with large ranges (e.g. year differences) do not dominate.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(ds *Dataset) *standardizer {
	nf := ds.NumFeatures()
	s := &standardizer{mean: make([]float64, nf), std: make([]float64, nf)}
	for j := 0; j < nf; j++ {
		var sum float64
		for i := range ds.X {
			sum += ds.X[i][j]
		}
		m := sum / float64(ds.Len())
		var ss float64
		for i := range ds.X {
			d := ds.X[i][j] - m
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(ds.Len()))
		if sd == 0 {
			sd = 1
		}
		s.mean[j] = m
		s.std[j] = sd
	}
	return s
}

func (s *standardizer) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// LogisticRegression is an L2-regularized logistic-regression matcher
// trained with gradient descent.
type LogisticRegression struct {
	// Epochs is the number of full gradient-descent passes (default 200).
	Epochs int
	// LearningRate is the step size (default 0.1).
	LearningRate float64
	// L2 is the regularization strength (default 1e-3).
	L2 float64

	w     []float64
	bias  float64
	scale *standardizer
}

// Name implements Matcher.
func (m *LogisticRegression) Name() string { return "logistic_regression" }

// Fit implements Matcher.
func (m *LogisticRegression) Fit(ds *Dataset) error {
	if ds.Len() == 0 {
		return fmt.Errorf("ml: logistic regression: empty dataset")
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := m.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	l2 := m.L2
	if l2 < 0 {
		l2 = 0
	} else if m.L2 == 0 {
		l2 = 1e-3
	}
	m.scale = fitStandardizer(ds)
	x := make([][]float64, ds.Len())
	for i := range ds.X {
		x[i] = m.scale.apply(ds.X[i])
	}
	nf := ds.NumFeatures()
	m.w = make([]float64, nf)
	m.bias = 0
	n := float64(ds.Len())
	gw := make([]float64, nf)
	for e := 0; e < epochs; e++ {
		for j := range gw {
			gw[j] = 0
		}
		gb := 0.0
		for i := range x {
			p := sigmoid(dot(m.w, x[i]) + m.bias)
			err := p - float64(ds.Y[i])
			for j := range gw {
				gw[j] += err * x[i][j]
			}
			gb += err
		}
		for j := range m.w {
			m.w[j] -= lr * (gw[j]/n + l2*m.w[j])
		}
		m.bias -= lr * gb / n
	}
	return nil
}

// Proba implements ProbabilisticMatcher.
func (m *LogisticRegression) Proba(x []float64) float64 {
	if m.w == nil {
		panic("ml: logistic regression used before Fit")
	}
	return sigmoid(dot(m.w, m.scale.apply(x)) + m.bias)
}

// Predict implements Matcher.
func (m *LogisticRegression) Predict(x []float64) int {
	if m.Proba(x) >= 0.5 {
		return 1
	}
	return 0
}

// LinearRegression fits least squares by gradient descent and classifies
// by thresholding the regression output at 0.5 — the "linear regression
// matcher" PyMatcher exposes.
type LinearRegression struct {
	// Epochs is the number of gradient passes (default 200).
	Epochs int
	// LearningRate is the step size (default 0.1).
	LearningRate float64

	w     []float64
	bias  float64
	scale *standardizer
}

// Name implements Matcher.
func (m *LinearRegression) Name() string { return "linear_regression" }

// Fit implements Matcher.
func (m *LinearRegression) Fit(ds *Dataset) error {
	if ds.Len() == 0 {
		return fmt.Errorf("ml: linear regression: empty dataset")
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := m.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	m.scale = fitStandardizer(ds)
	x := make([][]float64, ds.Len())
	for i := range ds.X {
		x[i] = m.scale.apply(ds.X[i])
	}
	nf := ds.NumFeatures()
	m.w = make([]float64, nf)
	m.bias = 0
	n := float64(ds.Len())
	gw := make([]float64, nf)
	for e := 0; e < epochs; e++ {
		for j := range gw {
			gw[j] = 0
		}
		gb := 0.0
		for i := range x {
			err := dot(m.w, x[i]) + m.bias - float64(ds.Y[i])
			for j := range gw {
				gw[j] += err * x[i][j]
			}
			gb += err
		}
		for j := range m.w {
			m.w[j] -= lr * gw[j] / n
		}
		m.bias -= lr * gb / n
	}
	return nil
}

// Score returns the raw regression output.
func (m *LinearRegression) Score(x []float64) float64 {
	if m.w == nil {
		panic("ml: linear regression used before Fit")
	}
	return dot(m.w, m.scale.apply(x)) + m.bias
}

// Predict implements Matcher.
func (m *LinearRegression) Predict(x []float64) int {
	if m.Score(x) >= 0.5 {
		return 1
	}
	return 0
}

// SVM is a linear support-vector machine trained with the Pegasos
// stochastic sub-gradient algorithm.
type SVM struct {
	// Epochs is the number of passes over the data (default 50).
	Epochs int
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
	// Seed drives the example order.
	Seed int64

	w     []float64
	bias  float64
	scale *standardizer
}

// Name implements Matcher.
func (m *SVM) Name() string { return "svm" }

// Fit implements Matcher.
func (m *SVM) Fit(ds *Dataset) error {
	if ds.Len() == 0 {
		return fmt.Errorf("ml: svm: empty dataset")
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 50
	}
	lambda := m.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	m.scale = fitStandardizer(ds)
	x := make([][]float64, ds.Len())
	for i := range ds.X {
		x[i] = m.scale.apply(ds.X[i])
	}
	nf := ds.NumFeatures()
	m.w = make([]float64, nf)
	m.bias = 0
	rng := rand.New(rand.NewSource(m.Seed))
	t := 0
	order := rng.Perm(ds.Len())
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			t++
			eta := 1 / (lambda * float64(t))
			yi := float64(2*ds.Y[i] - 1) // {-1,+1}
			margin := yi * (dot(m.w, x[i]) + m.bias)
			for j := range m.w {
				m.w[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j := range m.w {
					m.w[j] += eta * yi * x[i][j]
				}
				m.bias += eta * yi
			}
		}
	}
	return nil
}

// Margin returns the signed distance proxy w·x + b.
func (m *SVM) Margin(x []float64) float64 {
	if m.w == nil {
		panic("ml: svm used before Fit")
	}
	return dot(m.w, m.scale.apply(x)) + m.bias
}

// Predict implements Matcher.
func (m *SVM) Predict(x []float64) int {
	if m.Margin(x) >= 0 {
		return 1
	}
	return 0
}

func sigmoid(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
