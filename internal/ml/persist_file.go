package ml

import (
	"encoding/json"
	"fmt"
	"os"

	"emgo/internal/ckpt"
)

// SaveMatcherFile persists a fitted (serializable) matcher to path as
// JSON. The write is crash-safe — temp file, fsync, atomic rename —
// so a crash mid-save can never leave a truncated model file for the
// next deploy to choke on (the same guarantee table.WriteCSVFile and
// the checkpoint store give their artifacts).
func SaveMatcherFile(path string, m Matcher) error {
	spec, err := ExportMatcher(m)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return ckpt.AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// LoadMatcherFile rebuilds a matcher saved with SaveMatcherFile. A
// file that does not decode into a valid matcher spec reports a
// descriptive error rather than a zero-value model.
func LoadMatcherFile(path string) (Matcher, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadMatcherBytes(path, data)
}

// LoadMatcherBytes rebuilds a matcher from artifact bytes already read
// (the serving hot-reload path reads once so it can checksum and decode
// the same bytes). name labels errors, usually the source path.
func LoadMatcherBytes(name string, data []byte) (Matcher, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("ml: model file %s is empty", name)
	}
	var spec MatcherSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("ml: parse model file %s: %w", name, err)
	}
	m, err := ImportMatcher(&spec)
	if err != nil {
		return nil, fmt.Errorf("ml: model file %s: %w", name, err)
	}
	return m, nil
}
