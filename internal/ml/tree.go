package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// DecisionTree is a CART binary classifier with Gini impurity splits —
// the matcher the case study ultimately selects (Section 9).
type DecisionTree struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting
	// (default 2).
	MinSamplesSplit int
	// featureSubset, when non-nil, restricts candidate split features;
	// used by RandomForest. rng drives the subset draw.
	featureSubset int
	rng           *rand.Rand

	root     *treeNode
	features []string
}

type treeNode struct {
	// Leaf payload.
	leaf  bool
	label int
	proba float64 // P(match) at this leaf

	// Split payload.
	feature   int
	threshold float64
	left      *treeNode // feature <= threshold
	right     *treeNode // feature > threshold

	// samples and gain record how many training examples reached the
	// node and how much Gini impurity its split removed; they feed
	// feature-importance computation.
	samples int
	gain    float64
}

// Name implements Matcher.
func (t *DecisionTree) Name() string { return "decision_tree" }

// Fit implements Matcher.
func (t *DecisionTree) Fit(ds *Dataset) error {
	if ds.Len() == 0 {
		return fmt.Errorf("ml: decision tree: empty dataset")
	}
	t.features = ds.Features
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(ds, idx, 0)
	return nil
}

// build grows the subtree for the examples at idx.
func (t *DecisionTree) build(ds *Dataset, idx []int, depth int) *treeNode {
	pos := 0
	for _, i := range idx {
		pos += ds.Y[i]
	}
	n := len(idx)
	leaf := &treeNode{leaf: true, proba: float64(pos) / float64(n)}
	if 2*pos >= n {
		leaf.label = 1
	}
	minSplit := t.MinSamplesSplit
	if minSplit < 2 {
		minSplit = 2
	}
	if pos == 0 || pos == n || n < minSplit || (t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return leaf
	}

	feat, thresh, childGini, ok := t.bestSplit(ds, idx)
	if !ok {
		return leaf
	}
	var left, right []int
	for _, i := range idx {
		if ds.X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leaf
	}
	return &treeNode{
		feature:   feat,
		threshold: thresh,
		left:      t.build(ds, left, depth+1),
		right:     t.build(ds, right, depth+1),
		samples:   n,
		gain:      gini(pos, n) - childGini,
	}
}

// bestSplit finds the (feature, threshold) pair minimizing weighted Gini
// impurity, which it returns as childGini. Thresholds are midpoints
// between consecutive distinct sorted values.
func (t *DecisionTree) bestSplit(ds *Dataset, idx []int) (feat int, thresh, childGini float64, ok bool) {
	nf := ds.NumFeatures()
	candidates := make([]int, 0, nf)
	for j := 0; j < nf; j++ {
		candidates = append(candidates, j)
	}
	if t.featureSubset > 0 && t.featureSubset < nf && t.rng != nil {
		t.rng.Shuffle(nf, func(a, b int) { candidates[a], candidates[b] = candidates[b], candidates[a] })
		candidates = candidates[:t.featureSubset]
	}

	n := len(idx)
	totalPos := 0
	for _, i := range idx {
		totalPos += ds.Y[i]
	}
	best := math.Inf(1)

	type vy struct {
		v float64
		y int
	}
	vals := make([]vy, n)
	for _, j := range candidates {
		for k, i := range idx {
			vals[k] = vy{ds.X[i][j], ds.Y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		leftN, leftPos := 0, 0
		for k := 0; k < n-1; k++ {
			leftN++
			leftPos += vals[k].y
			if vals[k].v == vals[k+1].v {
				continue
			}
			rightN := n - leftN
			rightPos := totalPos - leftPos
			g := (float64(leftN)*gini(leftPos, leftN) + float64(rightN)*gini(rightPos, rightN)) / float64(n)
			if g < best {
				best = g
				feat = j
				thresh = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	// Zero-gain splits are kept (e.g. the first split of XOR-shaped data
	// improves nothing by itself but enables pure grandchildren); each
	// split strictly shrinks both sides, so recursion terminates.
	return feat, thresh, best, ok
}

// gini returns the Gini impurity of a node with pos positives out of n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Predict implements Matcher.
func (t *DecisionTree) Predict(x []float64) int {
	return t.leafFor(x).label
}

// Proba implements ProbabilisticMatcher.
func (t *DecisionTree) Proba(x []float64) float64 {
	return t.leafFor(x).proba
}

func (t *DecisionTree) leafFor(x []float64) *treeNode {
	if t.root == nil {
		panic("ml: decision tree used before Fit")
	}
	node := t.root
	for !node.leaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node
}

// Depth returns the depth of the fitted tree (a single leaf has depth 0).
func (t *DecisionTree) Depth() int { return depth(t.root) }

func depth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Rules renders the tree as indented if/else pseudo-rules; the
// tree-debugger view used when debugging the selected matcher.
func (t *DecisionTree) Rules() string {
	var b strings.Builder
	t.render(&b, t.root, 0)
	return b.String()
}

func (t *DecisionTree) render(b *strings.Builder, n *treeNode, indent int) {
	if n == nil {
		return
	}
	pad := strings.Repeat("  ", indent)
	if n.leaf {
		fmt.Fprintf(b, "%spredict %d (p=%.3f)\n", pad, n.label, n.proba)
		return
	}
	name := fmt.Sprintf("f%d", n.feature)
	if n.feature < len(t.features) {
		name = t.features[n.feature]
	}
	fmt.Fprintf(b, "%sif %s <= %.4f:\n", pad, name, n.threshold)
	t.render(b, n.left, indent+1)
	fmt.Fprintf(b, "%selse:\n", pad)
	t.render(b, n.right, indent+1)
}
