package ml

import (
	"fmt"
	"sort"
)

// Importance is one feature's share of the model's total impurity
// reduction.
type Importance struct {
	Feature string
	Weight  float64
}

// FeatureImportance returns the Gini importance of every feature of a
// fitted tree (sample-weighted impurity decrease, normalized to sum to
// 1), sorted descending. It is the matcher-debugging view that tells the
// user which similarity signals the model actually relies on — e.g. it
// surfaces that the pre-fix matcher of Section 9 leaned on dates because
// the case-sensitive title features were useless.
func (t *DecisionTree) FeatureImportance() ([]Importance, error) {
	if t.root == nil {
		return nil, fmt.Errorf("ml: importance of an unfitted tree")
	}
	weights := make([]float64, len(t.features))
	accumulateImportance(t.root, weights)
	return normalizeImportance(t.features, weights), nil
}

func accumulateImportance(n *treeNode, weights []float64) {
	if n == nil || n.leaf {
		return
	}
	if n.feature >= 0 && n.feature < len(weights) {
		weights[n.feature] += float64(n.samples) * n.gain
	}
	accumulateImportance(n.left, weights)
	accumulateImportance(n.right, weights)
}

// FeatureImportance averages Gini importance across the forest's trees.
func (f *RandomForest) FeatureImportance() ([]Importance, error) {
	if len(f.trees) == 0 {
		return nil, fmt.Errorf("ml: importance of an unfitted forest")
	}
	features := f.trees[0].features
	weights := make([]float64, len(features))
	for _, t := range f.trees {
		w := make([]float64, len(features))
		accumulateImportance(t.root, w)
		var total float64
		for _, v := range w {
			total += v
		}
		if total == 0 {
			continue
		}
		for i, v := range w {
			weights[i] += v / total
		}
	}
	return normalizeImportance(features, weights), nil
}

// normalizeImportance converts raw weights into a sorted, sum-to-one
// list. An all-zero model (a single leaf) yields uniform zeros.
func normalizeImportance(features []string, weights []float64) []Importance {
	var total float64
	for _, w := range weights {
		total += w
	}
	out := make([]Importance, len(features))
	for i, name := range features {
		w := 0.0
		if total > 0 {
			w = weights[i] / total
		}
		out[i] = Importance{Feature: name, Weight: w}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			return out[a].Weight > out[b].Weight
		}
		return out[a].Feature < out[b].Feature
	})
	return out
}
