package ml

import (
	"fmt"
	"math"
)

// NaiveBayes is a Gaussian naive Bayes matcher: per class and feature it
// fits a normal density and classifies by maximum posterior.
type NaiveBayes struct {
	prior [2]float64   // log priors
	mean  [2][]float64 // per class, per feature
	vari  [2][]float64 // per class, per feature (variance, smoothed)
	fit   bool
}

// varianceFloor keeps degenerate (constant) features from producing zero
// variance and infinite densities.
const varianceFloor = 1e-9

// Name implements Matcher.
func (m *NaiveBayes) Name() string { return "naive_bayes" }

// Fit implements Matcher.
func (m *NaiveBayes) Fit(ds *Dataset) error {
	if ds.Len() == 0 {
		return fmt.Errorf("ml: naive bayes: empty dataset")
	}
	nf := ds.NumFeatures()
	var count [2]int
	for c := 0; c < 2; c++ {
		m.mean[c] = make([]float64, nf)
		m.vari[c] = make([]float64, nf)
	}
	for i := range ds.X {
		c := ds.Y[i]
		count[c]++
		for j, v := range ds.X[i] {
			m.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			// Degenerate one-class training set: give the absent class a
			// vanishing prior so prediction still works.
			m.prior[c] = math.Inf(-1)
			continue
		}
		m.prior[c] = math.Log(float64(count[c]) / float64(ds.Len()))
		for j := range m.mean[c] {
			m.mean[c][j] /= float64(count[c])
		}
	}
	for i := range ds.X {
		c := ds.Y[i]
		for j, v := range ds.X[i] {
			d := v - m.mean[c][j]
			m.vari[c][j] += d * d
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			continue
		}
		for j := range m.vari[c] {
			m.vari[c][j] = m.vari[c][j]/float64(count[c]) + varianceFloor
		}
	}
	m.fit = true
	return nil
}

// logLikelihood returns the class-conditional log density of x plus the
// class log prior.
func (m *NaiveBayes) logLikelihood(c int, x []float64) float64 {
	ll := m.prior[c]
	if math.IsInf(ll, -1) {
		return ll
	}
	for j, v := range x {
		d := v - m.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*m.vari[c][j]) - d*d/(2*m.vari[c][j])
	}
	return ll
}

// Proba implements ProbabilisticMatcher.
func (m *NaiveBayes) Proba(x []float64) float64 {
	if !m.fit {
		panic("ml: naive bayes used before Fit")
	}
	l0 := m.logLikelihood(0, x)
	l1 := m.logLikelihood(1, x)
	if math.IsInf(l1, -1) {
		return 0
	}
	if math.IsInf(l0, -1) {
		return 1
	}
	// Stable softmax over two log scores.
	mx := math.Max(l0, l1)
	e0 := math.Exp(l0 - mx)
	e1 := math.Exp(l1 - mx)
	return e1 / (e0 + e1)
}

// Predict implements Matcher.
func (m *NaiveBayes) Predict(x []float64) int {
	if m.Proba(x) >= 0.5 {
		return 1
	}
	return 0
}
