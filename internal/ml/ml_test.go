package ml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// synthDataset builds a linearly separable-ish dataset: label 1 when
// x0 + x1 > 1, with n points on a seeded grid plus mild jitter.
func synthDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		noise := rng.NormFloat64() * 0.02
		x[i] = []float64{a, b, rng.Float64()} // third feature is noise
		if a+b+noise > 1 {
			y[i] = 1
		}
	}
	ds, err := NewDataset([]string{"f0", "f1", "noise"}, x, y)
	if err != nil {
		panic(err)
	}
	return ds
}

// xorDataset is not linearly separable; trees must handle it, linear
// models cannot.
func xorDataset() *Dataset {
	var x [][]float64
	var y []int
	for i := 0; i < 40; i++ {
		a := float64(i % 2)
		b := float64((i / 2) % 2)
		x = append(x, []float64{a, b})
		if (a == 1) != (b == 1) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	ds, _ := NewDataset([]string{"a", "b"}, x, y)
	return ds
}

func evalOnTrain(t *testing.T, m Matcher, ds *Dataset) Confusion {
	t.Helper()
	if err := m.Fit(ds); err != nil {
		t.Fatalf("%s fit: %v", m.Name(), err)
	}
	c, err := Confuse(ds.Y, PredictAll(m, ds.X))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset([]string{"a"}, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := NewDataset([]string{"a"}, [][]float64{{1, 2}}, []int{0}); err == nil {
		t.Fatal("width mismatch should error")
	}
	if _, err := NewDataset([]string{"a"}, [][]float64{{math.NaN()}}, []int{0}); err == nil {
		t.Fatal("NaN should error")
	}
	if _, err := NewDataset([]string{"a"}, [][]float64{{1}}, []int{2}); err == nil {
		t.Fatal("non-binary label should error")
	}
}

func TestDatasetHelpers(t *testing.T) {
	ds := synthDataset(50, 1)
	if ds.Len() != 50 || ds.NumFeatures() != 3 {
		t.Fatal("dims")
	}
	pos := ds.Positives()
	if pos <= 0 || pos >= 50 {
		t.Fatalf("positives = %d, dataset degenerate", pos)
	}
	sub := ds.Subset([]int{0, 1, 2})
	if sub.Len() != 3 {
		t.Fatal("subset")
	}
	a, b, err := ds.Split(0.5, rand.New(rand.NewSource(1)))
	if err != nil || a.Len()+b.Len() != 50 {
		t.Fatalf("split: %v", err)
	}
	if _, _, err := ds.Split(0, nil); err == nil {
		t.Fatal("bad fraction should error")
	}
}

func TestDecisionTreeLearnsSeparableData(t *testing.T) {
	ds := synthDataset(300, 2)
	c := evalOnTrain(t, &DecisionTree{}, ds)
	if c.F1() < 0.99 {
		t.Fatalf("tree train F1 = %v", c.F1())
	}
}

func TestDecisionTreeLearnsXOR(t *testing.T) {
	ds := xorDataset()
	c := evalOnTrain(t, &DecisionTree{}, ds)
	if c.Accuracy() != 1 {
		t.Fatalf("tree should fit XOR exactly, acc = %v", c.Accuracy())
	}
}

func TestDecisionTreeMaxDepth(t *testing.T) {
	ds := synthDataset(300, 3)
	shallow := &DecisionTree{MaxDepth: 1}
	if err := shallow.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if d := shallow.Depth(); d > 1 {
		t.Fatalf("depth %d exceeds max 1", d)
	}
	deep := &DecisionTree{}
	if err := deep.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if deep.Depth() <= shallow.Depth() {
		t.Fatal("unbounded tree should be deeper")
	}
}

func TestDecisionTreePureLeafShortCircuit(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	ds, _ := NewDataset([]string{"a"}, x, y)
	tree := &DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatal("pure dataset should produce a single leaf")
	}
	if tree.Predict([]float64{99}) != 1 {
		t.Fatal("pure-positive tree should predict 1")
	}
	if tree.Proba([]float64{99}) != 1 {
		t.Fatal("pure-positive proba should be 1")
	}
}

func TestDecisionTreeRules(t *testing.T) {
	ds := xorDataset()
	tree := &DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	r := tree.Rules()
	if !strings.Contains(r, "if a <=") && !strings.Contains(r, "if b <=") {
		t.Fatalf("rules rendering: %s", r)
	}
}

func TestDecisionTreeEmptyFit(t *testing.T) {
	ds, _ := NewDataset([]string{"a"}, nil, nil)
	if err := (&DecisionTree{}).Fit(ds); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestRandomForest(t *testing.T) {
	ds := synthDataset(300, 4)
	f := &RandomForest{Trees: 15, Seed: 7}
	c := evalOnTrain(t, f, ds)
	if c.F1() < 0.97 {
		t.Fatalf("forest train F1 = %v", c.F1())
	}
	p := f.Proba(ds.X[0])
	if p < 0 || p > 1 {
		t.Fatalf("proba out of range: %v", p)
	}
}

func TestRandomForestDeterminism(t *testing.T) {
	ds := synthDataset(200, 5)
	f1 := &RandomForest{Trees: 5, Seed: 42}
	f2 := &RandomForest{Trees: 5, Seed: 42}
	if err := f1.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		if f1.Predict(ds.X[i]) != f2.Predict(ds.X[i]) {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestLogisticRegression(t *testing.T) {
	ds := synthDataset(300, 6)
	m := &LogisticRegression{}
	c := evalOnTrain(t, m, ds)
	if c.F1() < 0.95 {
		t.Fatalf("logreg train F1 = %v", c.F1())
	}
	p := m.Proba(ds.X[0])
	if p < 0 || p > 1 {
		t.Fatalf("proba out of range: %v", p)
	}
}

func TestLinearRegressionMatcher(t *testing.T) {
	ds := synthDataset(300, 7)
	c := evalOnTrain(t, &LinearRegression{}, ds)
	if c.F1() < 0.9 {
		t.Fatalf("linreg train F1 = %v", c.F1())
	}
}

func TestSVM(t *testing.T) {
	ds := synthDataset(300, 8)
	c := evalOnTrain(t, &SVM{Seed: 3}, ds)
	if c.F1() < 0.93 {
		t.Fatalf("svm train F1 = %v", c.F1())
	}
}

func TestNaiveBayes(t *testing.T) {
	ds := synthDataset(300, 9)
	m := &NaiveBayes{}
	c := evalOnTrain(t, m, ds)
	if c.F1() < 0.9 {
		t.Fatalf("nb train F1 = %v", c.F1())
	}
	p := m.Proba(ds.X[0])
	if p < 0 || p > 1 {
		t.Fatalf("proba out of range: %v", p)
	}
}

func TestNaiveBayesOneClass(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	ds, _ := NewDataset([]string{"a"}, x, []int{1, 1, 1})
	m := &NaiveBayes{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{2}) != 1 {
		t.Fatal("one-class NB should predict the seen class")
	}
}

func TestAllMatchersRejectEmptyAndPanicUnfitted(t *testing.T) {
	empty, _ := NewDataset([]string{"a"}, nil, nil)
	matchers := []Matcher{
		&DecisionTree{}, &RandomForest{}, &LogisticRegression{},
		&LinearRegression{}, &SVM{}, &NaiveBayes{},
	}
	for _, m := range matchers {
		if err := m.Fit(empty); err == nil {
			t.Errorf("%s: empty fit should error", m.Name())
		}
	}
	for _, m := range []Matcher{&DecisionTree{}, &RandomForest{}, &LogisticRegression{}, &LinearRegression{}, &SVM{}, &NaiveBayes{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: predict before fit should panic", m.Name())
				}
			}()
			m.Predict([]float64{1})
		}()
	}
}

func TestConfusionMetrics(t *testing.T) {
	gold := []int{1, 1, 1, 0, 0, 0}
	pred := []int{1, 1, 0, 1, 0, 0}
	c, err := Confuse(gold, pred)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion: %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", c.F1())
	}
	if math.Abs(c.Accuracy()-2.0/3) > 1e-12 {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
	if _, err := Confuse([]int{1}, []int{1, 0}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestConfusionVacuousConventions(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 || c.F1() != 1 {
		t.Fatal("vacuous precision/recall should be 1")
	}
	if c.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	// No predicted positives but positives exist: P=1, R=0.
	c = Confusion{FN: 5}
	if c.Precision() != 1 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatalf("no-positive-prediction conventions: %+v", c)
	}
	if !strings.Contains(c.String(), "FN=5") {
		t.Fatal("string rendering")
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(10, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("fold count = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) != 2 {
			t.Fatalf("fold size = %d", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Fatal("index in two folds")
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatal("folds do not cover dataset")
	}
	if _, err := KFold(3, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("k > n should error")
	}
	if _, err := KFold(3, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("k < 2 should error")
	}
}

func TestCrossValidateAndSelect(t *testing.T) {
	ds := synthDataset(200, 10)
	res, err := SelectMatcher(DefaultFactories(1), ds, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("results = %d", len(res))
	}
	// Sorted by F1 descending.
	for i := 1; i < len(res); i++ {
		if res[i].F1 > res[i-1].F1 {
			t.Fatal("results not sorted")
		}
	}
	// On near-separable data the best matcher should do well.
	if res[0].F1 < 0.9 {
		t.Fatalf("best matcher F1 = %v", res[0].F1)
	}
	if _, err := SelectMatcher(nil, ds, 5, 1); err == nil {
		t.Fatal("no factories should error")
	}
}

func TestSelectMatcherDeterminism(t *testing.T) {
	ds := synthDataset(150, 11)
	r1, err := SelectMatcher(DefaultFactories(1), ds, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SelectMatcher(DefaultFactories(1), ds, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("selection must be deterministic for a fixed seed")
		}
	}
}

func TestLeaveOneOutDebugFlagsFlippedLabel(t *testing.T) {
	ds := synthDataset(120, 12)
	// Deliberately corrupt one clearly-positive label.
	corrupt := -1
	for i := range ds.X {
		if ds.X[i][0]+ds.X[i][1] > 1.6 && ds.Y[i] == 1 {
			ds.Y[i] = 0
			corrupt = i
			break
		}
	}
	if corrupt < 0 {
		t.Skip("no clearly positive example found")
	}
	mismatches, err := LeaveOneOutDebug(Factory{Name: "rf", New: func() Matcher { return &RandomForest{Trees: 15, Seed: 5} }}, ds)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range mismatches {
		if m.Index == corrupt && m.Predicted == 1 && m.Gold == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("LOOCV did not flag the corrupted label (mismatches: %+v)", mismatches)
	}
	if _, err := LeaveOneOutDebug(Factory{Name: "t", New: func() Matcher { return &DecisionTree{} }}, ds.Subset([]int{0})); err == nil {
		t.Fatal("LOOCV on 1 example should error")
	}
}

func TestSplitDebug(t *testing.T) {
	ds := synthDataset(100, 13)
	mismatches, err := SplitDebug(Factory{Name: "dt", New: func() Matcher { return &DecisionTree{MaxDepth: 2} }}, ds, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(mismatches); i++ {
		if mismatches[i].Index < mismatches[i-1].Index {
			t.Fatal("mismatches not sorted by index")
		}
	}
	if _, err := SplitDebug(Factory{Name: "dt", New: func() Matcher { return &DecisionTree{} }}, ds.Subset([]int{0, 1}), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("tiny dataset should error")
	}
}
