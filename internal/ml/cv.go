package ml

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"emgo/internal/obs"
	"emgo/internal/parallel"
)

// Factory constructs fresh, unfitted matchers so cross-validation can train
// one per fold.
type Factory struct {
	Name string
	New  func() Matcher
}

// DefaultFactories returns the six matchers the case study compares in
// Section 9: decision tree, SVM, random forest, logistic regression, naive
// Bayes, and linear regression. seed makes the stochastic ones
// deterministic.
func DefaultFactories(seed int64) []Factory {
	return []Factory{
		{Name: "decision_tree", New: func() Matcher { return &DecisionTree{} }},
		{Name: "svm", New: func() Matcher { return &SVM{Seed: seed} }},
		{Name: "random_forest", New: func() Matcher { return &RandomForest{Seed: seed} }},
		{Name: "logistic_regression", New: func() Matcher { return &LogisticRegression{} }},
		{Name: "naive_bayes", New: func() Matcher { return &NaiveBayes{} }},
		{Name: "linear_regression", New: func() Matcher { return &LinearRegression{} }},
	}
}

// CVResult is the cross-validated accuracy of one matcher.
type CVResult struct {
	Name      string
	Precision float64
	Recall    float64
	F1        float64
	Folds     int
}

// KFold splits indices 0..n-1 into k shuffled folds of near-equal size.
func KFold(n, k int, rng *rand.Rand) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("ml: k-fold with k=%d over %d examples", k, n)
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	return folds, nil
}

// CrossValidate trains and evaluates the factory's matcher with k-fold
// cross-validation, returning precision/recall/F1 averaged over folds —
// the Section 9 matcher-selection procedure.
func CrossValidate(f Factory, ds *Dataset, k int, rng *rand.Rand) (CVResult, error) {
	folds, err := KFold(ds.Len(), k, rng)
	if err != nil {
		return CVResult{}, err
	}
	res := CVResult{Name: f.Name, Folds: k}
	cvFolds := obs.C("ml.cv.folds")
	for fi := range folds {
		cvFolds.Inc()
		var trainIdx []int
		for fj := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, folds[fj]...)
			}
		}
		train := ds.Subset(trainIdx)
		test := ds.Subset(folds[fi])
		m := f.New()
		if err := m.Fit(train); err != nil {
			return CVResult{}, fmt.Errorf("ml: cv %s fold %d: %w", f.Name, fi, err)
		}
		conf, err := Confuse(test.Y, PredictAll(m, test.X))
		if err != nil {
			return CVResult{}, err
		}
		res.Precision += conf.Precision()
		res.Recall += conf.Recall()
		res.F1 += conf.F1()
	}
	res.Precision /= float64(k)
	res.Recall /= float64(k)
	res.F1 /= float64(k)
	return res, nil
}

// SelectMatcher cross-validates every factory and returns all results
// sorted by F1 descending (ties broken by name for determinism); the first
// entry is the selected matcher. Each factory sees an identically seeded
// fold split so the comparison is paired.
func SelectMatcher(factories []Factory, ds *Dataset, k int, seed int64) ([]CVResult, error) {
	if len(factories) == 0 {
		return nil, fmt.Errorf("ml: no matchers to select from")
	}
	results := make([]CVResult, 0, len(factories))
	for _, f := range factories {
		r, err := CrossValidate(f, ds, k, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].F1 != results[j].F1 {
			return results[i].F1 > results[j].F1
		}
		return results[i].Name < results[j].Name
	})
	return results, nil
}

// Mismatch is one example where a matcher's prediction disagrees with its
// gold label — the unit of both label debugging (Section 8) and matcher
// debugging (Section 9).
type Mismatch struct {
	Index     int // example index in the dataset
	Gold      int
	Predicted int
}

// LeaveOneOutDebug trains the factory's matcher on all examples but one,
// predicts the left-out example, and reports every disagreement — the
// label-debugging procedure of Section 8 ("Debugging the Labeled Sample").
func LeaveOneOutDebug(f Factory, ds *Dataset) ([]Mismatch, error) {
	return LeaveOneOutDebugCtx(context.Background(), f, ds)
}

// LeaveOneOutDebugCtx is LeaveOneOutDebug honouring ctx: the n retrains
// stop dispatching once ctx is done, and a panic inside one fold's fit
// surfaces as an error naming the fold instead of killing the process.
func LeaveOneOutDebugCtx(ctx context.Context, f Factory, ds *Dataset) ([]Mismatch, error) {
	if ds.Len() < 2 {
		return nil, fmt.Errorf("ml: leave-one-out needs at least 2 examples")
	}
	preds := make([]int, ds.Len())
	err := parallel.ForCtx(ctx, ds.Len(), func(leave int) error {
		idx := make([]int, 0, ds.Len()-1)
		for i := 0; i < ds.Len(); i++ {
			if i != leave {
				idx = append(idx, i)
			}
		}
		m := f.New()
		if err := m.Fit(ds.Subset(idx)); err != nil {
			return fmt.Errorf("ml: loocv at %d: %w", leave, err)
		}
		preds[leave] = m.Predict(ds.X[leave])
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Mismatch
	for leave := 0; leave < ds.Len(); leave++ {
		if preds[leave] != ds.Y[leave] {
			out = append(out, Mismatch{Index: leave, Gold: ds.Y[leave], Predicted: preds[leave]})
		}
	}
	return out, nil
}

// SplitDebug implements the Section 9 matcher-debugging procedure: split
// the labeled data in half, train on each half and predict the other,
// reporting all mismatches (indices refer to the full dataset).
func SplitDebug(f Factory, ds *Dataset, rng *rand.Rand) ([]Mismatch, error) {
	if ds.Len() < 4 {
		return nil, fmt.Errorf("ml: split debug needs at least 4 examples")
	}
	perm := rng.Perm(ds.Len())
	half := ds.Len() / 2
	i1, i2 := perm[:half], perm[half:]
	var out []Mismatch
	for _, pass := range [][2][]int{{i1, i2}, {i2, i1}} {
		trainIdx, testIdx := pass[0], pass[1]
		m := f.New()
		if err := m.Fit(ds.Subset(trainIdx)); err != nil {
			return nil, err
		}
		for _, i := range testIdx {
			pred := m.Predict(ds.X[i])
			if pred != ds.Y[i] {
				out = append(out, Mismatch{Index: i, Gold: ds.Y[i], Predicted: pred})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out, nil
}
