package ml

import (
	"encoding/json"
	"testing"
)

func TestTreeExportImportRoundTrip(t *testing.T) {
	ds := synthDataset(200, 21)
	tree := &DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	spec, err := tree.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		if tree.Predict(ds.X[i]) != back.Predict(ds.X[i]) {
			t.Fatal("round-tripped tree predicts differently")
		}
		if tree.Proba(ds.X[i]) != back.Proba(ds.X[i]) {
			t.Fatal("round-tripped tree probabilities differ")
		}
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	ds := synthDataset(100, 22)
	tree := &DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, err := MarshalTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("marshaled tree is not valid JSON")
	}
	back, err := UnmarshalTree(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		if tree.Predict(ds.X[i]) != back.Predict(ds.X[i]) {
			t.Fatal("JSON round trip changed predictions")
		}
	}
	if _, err := UnmarshalTree([]byte("not json")); err == nil {
		t.Fatal("bad JSON should error")
	}
}

func TestExportErrors(t *testing.T) {
	if _, err := (&DecisionTree{}).Export(); err == nil {
		t.Fatal("export of unfitted tree should error")
	}
	if _, err := (&RandomForest{}).Export(); err == nil {
		t.Fatal("export of unfitted forest should error")
	}
	if _, err := ImportTree(nil); err == nil {
		t.Fatal("nil spec should error")
	}
	if _, err := ImportTree(&TreeSpec{}); err == nil {
		t.Fatal("empty spec should error")
	}
	if _, err := ImportForest(nil); err == nil {
		t.Fatal("nil forest spec should error")
	}
	// Corrupt specs.
	if _, err := ImportTree(&TreeSpec{Features: []string{"a"}, Root: &NodeSpec{Leaf: true, Label: 7}}); err == nil {
		t.Fatal("non-binary leaf label should error")
	}
	if _, err := ImportTree(&TreeSpec{Features: []string{"a"}, Root: &NodeSpec{Feature: 0}}); err == nil {
		t.Fatal("split without children should error")
	}
	if _, err := ImportTree(&TreeSpec{
		Features: []string{"a"},
		Root: &NodeSpec{Feature: 5,
			Left:  &NodeSpec{Leaf: true},
			Right: &NodeSpec{Leaf: true}},
	}); err == nil {
		t.Fatal("out-of-range feature should error")
	}
}

func TestForestExportImportRoundTrip(t *testing.T) {
	ds := synthDataset(150, 23)
	f := &RandomForest{Trees: 7, Seed: 9}
	if err := f.Fit(ds); err != nil {
		t.Fatal(err)
	}
	spec, err := f.Export()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Trees) != 7 {
		t.Fatalf("spec trees = %d", len(spec.Trees))
	}
	back, err := ImportForest(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		if f.Predict(ds.X[i]) != back.Predict(ds.X[i]) {
			t.Fatal("round-tripped forest predicts differently")
		}
	}
}

func TestMatcherSpecDispatch(t *testing.T) {
	ds := synthDataset(100, 24)
	tree := &DecisionTree{}
	tree.Fit(ds)
	forest := &RandomForest{Trees: 3, Seed: 1}
	forest.Fit(ds)

	for _, m := range []Matcher{tree, forest} {
		spec, err := ExportMatcher(m)
		if err != nil {
			t.Fatalf("%s export: %v", m.Name(), err)
		}
		back, err := ImportMatcher(spec)
		if err != nil {
			t.Fatalf("%s import: %v", m.Name(), err)
		}
		for i := range ds.X {
			if m.Predict(ds.X[i]) != back.Predict(ds.X[i]) {
				t.Fatalf("%s round trip changed predictions", m.Name())
			}
		}
	}
	lr := &LogisticRegression{}
	lr.Fit(ds)
	if _, err := ExportMatcher(lr); err == nil {
		t.Fatal("non-tree matcher export should error")
	}
	if _, err := ImportMatcher(nil); err == nil {
		t.Fatal("nil matcher spec should error")
	}
	if _, err := ImportMatcher(&MatcherSpec{Kind: "svm"}); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestFeatureImportance(t *testing.T) {
	// Label depends only on f0; importance must concentrate there.
	ds := synthDataset(300, 25)
	for i := range ds.X {
		if ds.X[i][0] > 0.5 {
			ds.Y[i] = 1
		} else {
			ds.Y[i] = 0
		}
	}
	tree := &DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	imp, err := tree.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if imp[0].Feature != "f0" || imp[0].Weight < 0.9 {
		t.Fatalf("importance should concentrate on f0: %+v", imp)
	}
	var sum float64
	for _, x := range imp {
		sum += x.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importance should sum to 1: %v", sum)
	}

	forest := &RandomForest{Trees: 11, Seed: 2}
	if err := forest.Fit(ds); err != nil {
		t.Fatal(err)
	}
	fimp, err := forest.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if fimp[0].Feature != "f0" || fimp[0].Weight < 0.6 {
		t.Fatalf("forest importance should favor f0: %+v", fimp)
	}
}

func TestFeatureImportanceErrorsAndDegenerate(t *testing.T) {
	if _, err := (&DecisionTree{}).FeatureImportance(); err == nil {
		t.Fatal("unfitted tree should error")
	}
	if _, err := (&RandomForest{}).FeatureImportance(); err == nil {
		t.Fatal("unfitted forest should error")
	}
	// A pure dataset yields a single leaf: all-zero importance.
	x := [][]float64{{1}, {2}}
	ds, _ := NewDataset([]string{"a"}, x, []int{1, 1})
	tree := &DecisionTree{}
	tree.Fit(ds)
	imp, err := tree.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if imp[0].Weight != 0 {
		t.Fatalf("single-leaf importance should be zero: %+v", imp)
	}
}
