package ml

import "fmt"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse tallies predictions against gold labels.
func Confuse(gold, pred []int) (Confusion, error) {
	if len(gold) != len(pred) {
		return Confusion{}, fmt.Errorf("ml: %d gold labels vs %d predictions", len(gold), len(pred))
	}
	var c Confusion
	for i := range gold {
		switch {
		case gold[i] == 1 && pred[i] == 1:
			c.TP++
		case gold[i] == 0 && pred[i] == 1:
			c.FP++
		case gold[i] == 0 && pred[i] == 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c, nil
}

// Precision returns TP/(TP+FP); 1 when there are no predicted positives
// (vacuous precision, the convention the IRIS comparison relies on).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN); 1 when there are no actual positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall (0 when both are 0).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.3f R=%.3f F1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}
