package ml

import (
	"encoding/json"
	"fmt"
)

// This file implements model persistence — the Section 12 "package the
// matcher so they could move it into the UMETRICS repository" step. The
// tree-based matchers (the ones the case study deploys) serialize to and
// from JSON-able specs.

// NodeSpec is the serialized form of one decision-tree node. Exactly one
// of Leaf or Split semantics applies: a leaf has Left == Right == nil.
type NodeSpec struct {
	// Leaf payload.
	Leaf  bool    `json:"leaf,omitempty"`
	Label int     `json:"label,omitempty"`
	Proba float64 `json:"proba,omitempty"`
	// Split payload.
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Left      *NodeSpec `json:"left,omitempty"`
	Right     *NodeSpec `json:"right,omitempty"`
}

// TreeSpec is the serialized form of a fitted DecisionTree.
type TreeSpec struct {
	Features []string  `json:"features"`
	Root     *NodeSpec `json:"root"`
}

// Export serializes a fitted tree.
func (t *DecisionTree) Export() (*TreeSpec, error) {
	if t.root == nil {
		return nil, fmt.Errorf("ml: cannot export an unfitted tree")
	}
	features := make([]string, len(t.features))
	copy(features, t.features)
	return &TreeSpec{Features: features, Root: exportNode(t.root)}, nil
}

func exportNode(n *treeNode) *NodeSpec {
	if n == nil {
		return nil
	}
	if n.leaf {
		return &NodeSpec{Leaf: true, Label: n.label, Proba: n.proba}
	}
	return &NodeSpec{
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      exportNode(n.left),
		Right:     exportNode(n.right),
	}
}

// ImportTree rebuilds a DecisionTree from its spec.
func ImportTree(spec *TreeSpec) (*DecisionTree, error) {
	if spec == nil || spec.Root == nil {
		return nil, fmt.Errorf("ml: empty tree spec")
	}
	root, err := importNode(spec.Root, len(spec.Features))
	if err != nil {
		return nil, err
	}
	features := make([]string, len(spec.Features))
	copy(features, spec.Features)
	return &DecisionTree{root: root, features: features}, nil
}

func importNode(s *NodeSpec, numFeatures int) (*treeNode, error) {
	if s.Leaf {
		if s.Label != 0 && s.Label != 1 {
			return nil, fmt.Errorf("ml: leaf label %d is not binary", s.Label)
		}
		return &treeNode{leaf: true, label: s.Label, proba: s.Proba}, nil
	}
	if s.Left == nil || s.Right == nil {
		return nil, fmt.Errorf("ml: split node missing children")
	}
	if numFeatures > 0 && (s.Feature < 0 || s.Feature >= numFeatures) {
		return nil, fmt.Errorf("ml: split feature %d out of range [0,%d)", s.Feature, numFeatures)
	}
	left, err := importNode(s.Left, numFeatures)
	if err != nil {
		return nil, err
	}
	right, err := importNode(s.Right, numFeatures)
	if err != nil {
		return nil, err
	}
	return &treeNode{feature: s.Feature, threshold: s.Threshold, left: left, right: right}, nil
}

// ForestSpec is the serialized form of a fitted RandomForest.
type ForestSpec struct {
	Trees []*TreeSpec `json:"trees"`
}

// Export serializes a fitted forest.
func (f *RandomForest) Export() (*ForestSpec, error) {
	if len(f.trees) == 0 {
		return nil, fmt.Errorf("ml: cannot export an unfitted forest")
	}
	spec := &ForestSpec{Trees: make([]*TreeSpec, len(f.trees))}
	for i, t := range f.trees {
		ts, err := t.Export()
		if err != nil {
			return nil, err
		}
		spec.Trees[i] = ts
	}
	return spec, nil
}

// ImportForest rebuilds a RandomForest from its spec.
func ImportForest(spec *ForestSpec) (*RandomForest, error) {
	if spec == nil || len(spec.Trees) == 0 {
		return nil, fmt.Errorf("ml: empty forest spec")
	}
	f := &RandomForest{Trees: len(spec.Trees), trees: make([]*DecisionTree, len(spec.Trees))}
	for i, ts := range spec.Trees {
		t, err := ImportTree(ts)
		if err != nil {
			return nil, err
		}
		f.trees[i] = t
	}
	return f, nil
}

// MatcherSpec wraps either a tree or a forest with a type tag, so a
// workflow spec can hold "whatever matcher won selection".
type MatcherSpec struct {
	Kind   string      `json:"kind"` // "decision_tree" or "random_forest"
	Tree   *TreeSpec   `json:"tree,omitempty"`
	Forest *ForestSpec `json:"forest,omitempty"`
}

// ExportMatcher serializes a fitted tree or forest matcher; other matcher
// kinds report an error (deploy those by retraining from the labeled
// data, which the workflow spec also references).
func ExportMatcher(m Matcher) (*MatcherSpec, error) {
	switch mm := m.(type) {
	case *DecisionTree:
		ts, err := mm.Export()
		if err != nil {
			return nil, err
		}
		return &MatcherSpec{Kind: "decision_tree", Tree: ts}, nil
	case *RandomForest:
		fs, err := mm.Export()
		if err != nil {
			return nil, err
		}
		return &MatcherSpec{Kind: "random_forest", Forest: fs}, nil
	default:
		return nil, fmt.Errorf("ml: matcher %q is not serializable", m.Name())
	}
}

// ImportMatcher rebuilds a matcher from its spec.
func ImportMatcher(spec *MatcherSpec) (Matcher, error) {
	if spec == nil {
		return nil, fmt.Errorf("ml: nil matcher spec")
	}
	switch spec.Kind {
	case "decision_tree":
		return ImportTree(spec.Tree)
	case "random_forest":
		return ImportForest(spec.Forest)
	default:
		return nil, fmt.Errorf("ml: unknown matcher kind %q", spec.Kind)
	}
}

// MarshalTree is a convenience JSON round trip for one tree.
func MarshalTree(t *DecisionTree) ([]byte, error) {
	spec, err := t.Export()
	if err != nil {
		return nil, err
	}
	return json.Marshal(spec)
}

// UnmarshalTree parses a tree serialized with MarshalTree.
func UnmarshalTree(data []byte) (*DecisionTree, error) {
	var spec TreeSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("ml: parse tree: %w", err)
	}
	return ImportTree(&spec)
}
