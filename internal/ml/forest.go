package ml

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"emgo/internal/fault"
	"emgo/internal/obs"
	"emgo/internal/parallel"
)

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling (sqrt of the feature count). It is the matcher the case
// study initially selects before the case-feature fix (Section 9).
type RandomForest struct {
	// Trees is the ensemble size (default 10, matching scikit-learn's
	// historical default that PyMatcher used).
	Trees int
	// MaxDepth bounds each tree; 0 means unbounded.
	MaxDepth int
	// Seed makes training deterministic.
	Seed int64

	trees []*DecisionTree
}

// Name implements Matcher.
func (f *RandomForest) Name() string { return "random_forest" }

// Fit implements Matcher.
func (f *RandomForest) Fit(ds *Dataset) error {
	return f.FitCtx(context.Background(), ds)
}

// FitCtx is Fit under the hardened runtime: training stops dispatching
// trees on cancellation, and a panic inside one tree's fit surfaces as an
// error naming the failing tree index instead of killing the process.
// Each tree also passes the "ml.forest.fit" fault-injection site. A
// failed fit leaves the forest unfitted.
func (f *RandomForest) FitCtx(ctx context.Context, ds *Dataset) error {
	if ds.Len() == 0 {
		return fmt.Errorf("ml: random forest: empty dataset")
	}
	n := f.Trees
	if n <= 0 {
		n = 10
	}
	rng := rand.New(rand.NewSource(f.Seed))
	subset := int(math.Sqrt(float64(ds.NumFeatures())))
	if subset < 1 {
		subset = 1
	}
	// Draw every tree's bootstrap sample and split seed up front, in a
	// fixed order, so the parallel fit below is bit-identical to a
	// sequential one.
	boots := make([]*Dataset, n)
	seeds := make([]int64, n)
	for k := 0; k < n; k++ {
		idx := make([]int, ds.Len())
		for i := range idx {
			idx[i] = rng.Intn(ds.Len())
		}
		boots[k] = ds.Subset(idx)
		seeds[k] = rng.Int63()
	}
	fctx, sp := obs.StartSpan(ctx, "ml.fit")
	defer sp.End()
	sp.Annotate("matcher", f.Name())
	sp.SetItems(n)
	trees := obs.C("ml.trees_fit")
	f.trees = make([]*DecisionTree, n)
	err := parallel.ForCtx(fctx, n, func(k int) error {
		if err := fault.InjectIdx("ml.forest.fit", k); err != nil {
			return err
		}
		tree := &DecisionTree{
			MaxDepth:      f.MaxDepth,
			featureSubset: subset,
			rng:           rand.New(rand.NewSource(seeds[k])),
		}
		if err := tree.Fit(boots[k]); err != nil {
			return err
		}
		f.trees[k] = tree
		trees.Inc()
		return nil
	})
	if err != nil {
		f.trees = nil
		sp.SetOutcome("aborted")
		return fmt.Errorf("ml: random forest: %w", err)
	}
	sp.SetOutcome("ok")
	return nil
}

// Proba implements ProbabilisticMatcher: the fraction of trees voting
// match.
func (f *RandomForest) Proba(x []float64) float64 {
	if len(f.trees) == 0 {
		panic("ml: random forest used before Fit")
	}
	votes := 0
	for _, t := range f.trees {
		votes += t.Predict(x)
	}
	return float64(votes) / float64(len(f.trees))
}

// Predict implements Matcher by majority vote.
func (f *RandomForest) Predict(x []float64) int {
	if f.Proba(x) >= 0.5 {
		return 1
	}
	return 0
}
