// Package ml implements the learning-based matchers and model-selection
// machinery the case study drives through PyMatcher: decision tree, random
// forest, Gaussian naive Bayes, logistic regression, linear regression and
// linear SVM classifiers, k-fold cross-validation, leave-one-out label
// debugging, and the precision/recall/F1 metrics — the role scikit-learn
// plays for PyMatcher, implemented from scratch on the standard library.
package ml

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"emgo/internal/drift"
	"emgo/internal/fault"
	"emgo/internal/obs"
	"emgo/internal/parallel"
)

// Dataset is a supervised binary-classification dataset: one feature
// vector and one {0,1} label per example. Feature values must be finite
// (impute missing values before constructing a Dataset; see
// internal/feature).
type Dataset struct {
	Features []string    // column names, len = feature count
	X        [][]float64 // row-major examples
	Y        []int       // labels, 0 = non-match, 1 = match
}

// NewDataset validates and wraps the given matrix and labels.
func NewDataset(features []string, x [][]float64, y []int) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d examples but %d labels", len(x), len(y))
	}
	for i, row := range x {
		if len(row) != len(features) {
			return nil, fmt.Errorf("ml: example %d has %d features, want %d", i, len(row), len(features))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("ml: example %d feature %d (%s) is not finite", i, j, features[j])
			}
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return nil, fmt.Errorf("ml: label %d at example %d is not 0/1", label, i)
		}
	}
	return &Dataset{Features: features, X: x, Y: y}, nil
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature count.
func (d *Dataset) NumFeatures() int { return len(d.Features) }

// Positives returns the number of label-1 examples.
func (d *Dataset) Positives() int {
	n := 0
	for _, y := range d.Y {
		n += y
	}
	return n
}

// Subset returns a new dataset containing the examples at idx (rows are
// shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for k, i := range idx {
		x[k] = d.X[i]
		y[k] = d.Y[i]
	}
	return &Dataset{Features: d.Features, X: x, Y: y}
}

// Split partitions the dataset into two halves (the I/J split used for
// matcher debugging in Section 9): a random fraction frac goes to the
// first, the rest to the second.
func (d *Dataset) Split(frac float64, rng *rand.Rand) (*Dataset, *Dataset, error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("ml: split fraction %v out of (0,1)", frac)
	}
	perm := rng.Perm(d.Len())
	cut := int(float64(d.Len()) * frac)
	if cut == 0 || cut == d.Len() {
		return nil, nil, fmt.Errorf("ml: split of %d examples at %v leaves a side empty", d.Len(), frac)
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:]), nil
}

// Matcher is a trainable binary classifier over feature vectors. Fit must
// be called before Predict.
type Matcher interface {
	// Fit trains on ds.
	Fit(ds *Dataset) error
	// Predict returns the 0/1 label for one feature vector.
	Predict(x []float64) int
	// Name identifies the matcher ("decision_tree", "random_forest", ...).
	Name() string
}

// ProbabilisticMatcher is a Matcher that can also report a match
// probability (used for ranking and debugging).
type ProbabilisticMatcher interface {
	Matcher
	// Proba returns P(match) in [0,1] for one feature vector.
	Proba(x []float64) float64
}

// PredictAll applies a fitted matcher to every row of x.
func PredictAll(m Matcher, x [][]float64) []int {
	predictions := obs.C("ml.predictions")
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
		predictions.Inc()
	}
	return out
}

// PredictAllCtx is PredictAll under the hardened runtime: prediction is
// fanned out across workers, stops on cancellation, and a panicking
// matcher (malformed row, unfitted model) surfaces as an error carrying
// the failing row index instead of crashing — the hook workflows use to
// quarantine poison pairs. Each row also passes the "ml.predict"
// fault-injection site.
func PredictAllCtx(ctx context.Context, m Matcher, x [][]float64) ([]int, error) {
	pctx, sp := obs.StartSpan(ctx, "ml.predict")
	defer sp.End()
	sp.Annotate("matcher", m.Name())
	sp.SetItems(len(x))
	predictions := obs.C("ml.predictions")
	// prof is the quality-profile collector of a monitored run, nil
	// otherwise. The scored path (Proba) runs only when a collector is
	// armed, so the disabled path stays one nil check per row.
	prof := drift.FromContext(ctx)
	pm, probabilistic := m.(ProbabilisticMatcher)
	out := make([]int, len(x))
	err := parallel.ForCtx(pctx, len(x), func(i int) error {
		if err := fault.InjectIdx("ml.predict", i); err != nil {
			return err
		}
		out[i] = m.Predict(x[i])
		if prof != nil {
			score, scored := 0.0, false
			if probabilistic {
				score, scored = pm.Proba(x[i]), true
			}
			prof.ObservePrediction(out[i], score, scored)
		}
		predictions.Inc()
		return nil
	})
	if err != nil {
		sp.SetOutcome("aborted")
		return nil, fmt.Errorf("ml: predict: %w", err)
	}
	sp.SetOutcome("ok")
	return out, nil
}
