package ml

import (
	"fmt"
	"sort"
)

// PRPoint is one operating point of a probabilistic matcher: the
// precision and recall obtained by predicting "match" when P(match) >=
// Threshold.
type PRPoint struct {
	Threshold float64
	Confusion Confusion
}

// PRCurve sweeps the decision threshold of a fitted probabilistic matcher
// over the distinct predicted probabilities of a labeled evaluation set
// and returns the operating points sorted by ascending threshold. It is
// the global precision/recall dial a classifier offers — the alternative
// the Section 12 negative rules are implicitly compared against (rules
// make "localized changes"; the threshold moves everything at once).
func PRCurve(m ProbabilisticMatcher, ds *Dataset) ([]PRPoint, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("ml: pr curve needs a non-empty dataset")
	}
	probs := make([]float64, ds.Len())
	for i := range ds.X {
		probs[i] = m.Proba(ds.X[i])
	}
	distinct := append([]float64(nil), probs...)
	sort.Float64s(distinct)
	thresholds := distinct[:0]
	for i, p := range distinct {
		if i == 0 || p != distinct[i-1] {
			thresholds = append(thresholds, p)
		}
	}

	out := make([]PRPoint, 0, len(thresholds))
	for _, th := range thresholds {
		var c Confusion
		for i := range probs {
			pred := 0
			if probs[i] >= th {
				pred = 1
			}
			switch {
			case ds.Y[i] == 1 && pred == 1:
				c.TP++
			case ds.Y[i] == 0 && pred == 1:
				c.FP++
			case ds.Y[i] == 0 && pred == 0:
				c.TN++
			default:
				c.FN++
			}
		}
		out = append(out, PRPoint{Threshold: th, Confusion: c})
	}
	return out, nil
}

// OperatingPointFor returns the lowest-threshold point on the curve whose
// precision reaches minPrecision, and whether one exists — "how much
// recall does threshold tuning alone keep, at the precision the rules
// achieve?".
func OperatingPointFor(curve []PRPoint, minPrecision float64) (PRPoint, bool) {
	for _, pt := range curve {
		if pt.Confusion.Precision() >= minPrecision {
			return pt, true
		}
	}
	return PRPoint{}, false
}
