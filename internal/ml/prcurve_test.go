package ml

import "testing"

func TestPRCurve(t *testing.T) {
	ds := synthDataset(300, 31)
	tree := &DecisionTree{MaxDepth: 3}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	curve, err := PRCurve(tree, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	// Thresholds ascend; recall is non-increasing along the curve.
	for i := 1; i < len(curve); i++ {
		if curve[i].Threshold <= curve[i-1].Threshold {
			t.Fatal("thresholds must ascend")
		}
		if curve[i].Confusion.Recall() > curve[i-1].Confusion.Recall()+1e-12 {
			t.Fatal("recall must not increase with threshold")
		}
	}
	// The lowest threshold predicts everything positive: recall 1.
	if r := curve[0].Confusion.Recall(); r != 1 {
		t.Fatalf("lowest threshold recall = %v", r)
	}
}

func TestPRCurveEmptyDataset(t *testing.T) {
	ds, _ := NewDataset([]string{"a"}, nil, nil)
	tree := &DecisionTree{}
	tree.Fit(synthDataset(50, 1))
	if _, err := PRCurve(tree, ds); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestOperatingPointFor(t *testing.T) {
	ds := synthDataset(300, 32)
	tree := &DecisionTree{MaxDepth: 4}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	curve, err := PRCurve(tree, ds)
	if err != nil {
		t.Fatal(err)
	}
	pt, ok := OperatingPointFor(curve, 0.9)
	if !ok {
		t.Fatal("a 0.9-precision point should exist on training data")
	}
	if pt.Confusion.Precision() < 0.9 {
		t.Fatalf("operating point precision %v", pt.Confusion.Precision())
	}
	if _, ok := OperatingPointFor(nil, 0.5); ok {
		t.Fatal("empty curve has no operating point")
	}
}
