package ml

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fitSmallTree(t *testing.T) *DecisionTree {
	t.Helper()
	ds, err := NewDataset([]string{"f"}, [][]float64{{0}, {0.2}, {0.8}, {1}}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tree := &DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSaveLoadMatcherFile(t *testing.T) {
	tree := fitSmallTree(t)
	path := filepath.Join(t.TempDir(), "sub", "model.json")
	if err := SaveMatcherFile(path, tree); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMatcherFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0.1}, {0.9}} {
		if m.Predict(x) != tree.Predict(x) {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestSaveMatcherFileAtomicOverwrite(t *testing.T) {
	tree := fitSmallTree(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := SaveMatcherFile(path, tree); err != nil {
		t.Fatal(err)
	}
	if err := SaveMatcherFile(path, tree); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestLoadMatcherFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadMatcherFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMatcherFile(empty); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty model file should be a descriptive error, got %v", err)
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, []byte(`{"kind":"decision_tr`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMatcherFile(torn); err == nil {
		t.Fatal("torn model file should error")
	}
	badKind := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badKind, []byte(`{"kind":"martian"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMatcherFile(badKind); err == nil {
		t.Fatal("unknown matcher kind should error")
	}
}

func TestSaveMatcherFileUnserializable(t *testing.T) {
	if err := SaveMatcherFile(filepath.Join(t.TempDir(), "m.json"), &NaiveBayes{}); err == nil {
		t.Fatal("unserializable matcher should error on save")
	}
}
