package ml

import "testing"

func benchData(b *testing.B, n int) *Dataset {
	b.Helper()
	return synthDataset(n, 99)
}

func BenchmarkDecisionTreeFit(b *testing.B) {
	ds := benchData(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := &DecisionTree{}
		if err := tree.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestFit(b *testing.B) {
	ds := benchData(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &RandomForest{Trees: 10, Seed: 1}
		if err := f.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogisticRegressionFit(b *testing.B) {
	ds := benchData(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &LogisticRegression{}
		if err := m.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreePredict(b *testing.B) {
	ds := benchData(b, 500)
	tree := &DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(ds.X[i%ds.Len()])
	}
}

func BenchmarkCrossValidateTree(b *testing.B) {
	ds := benchData(b, 300)
	f := Factory{Name: "decision_tree", New: func() Matcher { return &DecisionTree{} }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectMatcher([]Factory{f}, ds, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}
