package contprof

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

// quickCfg builds a profiler config for tests: tiny CPU window, no
// periodic ticker (tests drive captures explicitly), no runtime
// sampling-rate changes so tests don't fight over global state.
func quickCfg(dir string) Config {
	return Config{
		Dir:           dir,
		Interval:      -1,
		CPUDuration:   10 * time.Millisecond,
		MutexFraction: -1,
		BlockRate:     -1,
	}
}

func TestCaptureWritesProfilesAndSidecar(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	p, err := Open(quickCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	m, err := p.CaptureNow(TriggerManual, "unit test", "req-abc")
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "cap-000000" {
		t.Fatalf("first capture id = %q, want cap-000000", m.ID)
	}
	if m.Trigger != TriggerManual || m.RequestID != "req-abc" {
		t.Fatalf("meta trigger/request = %q/%q", m.Trigger, m.RequestID)
	}
	// Every kind should have been captured (no other CPU profile runs
	// during tests), and every named file must exist and be a valid
	// gzip stream — pprof files are gzipped protos.
	wantKinds := append([]string{KindCPU}, profileKinds...)
	for _, kind := range wantKinds {
		f, ok := m.Profiles[kind]
		if !ok {
			t.Fatalf("capture missing kind %q (errors: %v)", kind, m.Errors)
		}
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Fatalf("%s: not a gzip stream (len %d)", f, len(data))
		}
	}
	// Sidecar on disk must round-trip to the same meta.
	raw, err := os.ReadFile(filepath.Join(dir, m.ID+".meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Meta
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("sidecar not valid JSON: %v", err)
	}
	if onDisk.ID != m.ID || len(onDisk.Profiles) != len(m.Profiles) {
		t.Fatalf("sidecar mismatch: %+v vs %+v", onDisk, m)
	}
	if onDisk.GoVersion == "" || onDisk.GOMAXPROCS == 0 {
		t.Fatalf("sidecar missing build info: %+v", onDisk)
	}
}

func TestRingPrunesAtCapacity(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.MaxCaptures = 3
	cfg.CPUDuration = time.Millisecond
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	for i := 0; i < 7; i++ {
		if _, err := p.CaptureNow(TriggerManual, fmt.Sprint(i), ""); err != nil {
			t.Fatal(err)
		}
	}
	got := p.List()
	if len(got) != 3 {
		t.Fatalf("ring holds %d captures, want 3", len(got))
	}
	// Newest three survive, oldest first.
	for i, wantDetail := range []string{"4", "5", "6"} {
		if got[i].Detail != wantDetail {
			t.Fatalf("ring[%d].Detail = %q, want %q", i, got[i].Detail, wantDetail)
		}
	}
	// Pruned captures' files must be gone from disk: only 3 sidecars
	// and 3 sets of profiles remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var metas, profiles int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".meta.json") {
			metas++
		} else {
			profiles++
		}
	}
	if metas != 3 {
		t.Fatalf("%d sidecars on disk, want 3", metas)
	}
	perCapture := len(got[0].Profiles)
	if profiles != 3*perCapture {
		t.Fatalf("%d profile files on disk, want %d", profiles, 3*perCapture)
	}
}

func TestReloadDiscardsTornWrites(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	p, err := Open(quickCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CaptureNow(TriggerManual, "keep", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CaptureNow(TriggerManual, "tear-files", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CaptureNow(TriggerManual, "tear-sidecar", ""); err != nil {
		t.Fatal(err)
	}
	p.Stop()

	// Tear capture 1 by deleting one of the files its sidecar names,
	// and capture 2 by corrupting the sidecar itself. Also drop a stray
	// profile with no sidecar at all (a crash before the sidecar wrote)
	// and a leftover temp file.
	if err := os.Remove(filepath.Join(dir, "cap-000001.heap.pprof")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cap-000002.meta.json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{"cap-000007.cpu.pprof", ".tmp-cap-000008"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	p2, err := Open(quickCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Stop()
	got := p2.List()
	if len(got) != 1 || got[0].Detail != "keep" {
		t.Fatalf("reload kept %d captures (%+v), want only the intact one", len(got), got)
	}
	// The torn captures' remnants and strays must have been swept.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "cap-000000.") {
			t.Fatalf("sweep left %q behind", e.Name())
		}
	}
	// New captures must not reuse torn ids: the sequence continues past
	// every capture-shaped name ever seen on disk (the stray
	// cap-000007 included), so fetch URLs stay unambiguous.
	m, err := p2.CaptureNow(TriggerManual, "next", "")
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "cap-000008" {
		t.Fatalf("post-reload capture id = %q, want cap-000008", m.ID)
	}
}

func TestTriggerDedupUnderBreachStorm(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.TriggerCooldown = time.Hour
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// A breach storm: every failing request fires a trigger. Exactly
	// one capture must be scheduled for the reason.
	var scheduled int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.Trigger(TriggerSLOBreach, "burn", "") {
				mu.Lock()
				scheduled++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if scheduled != 1 {
		t.Fatalf("%d captures scheduled during the storm, want 1", scheduled)
	}
	waitForCaptures(t, p, 1)
	if got := p.List(); got[0].Trigger != TriggerSLOBreach {
		t.Fatalf("capture trigger = %q", got[0].Trigger)
	}
	// Still inside the cooldown: further triggers for the same reason
	// are deduplicated, but a different reason passes.
	if p.Trigger(TriggerSLOBreach, "burn again", "") {
		t.Fatal("trigger inside cooldown was not deduplicated")
	}
	if !p.Trigger(TriggerTailOutlier, "slow request", "req-1") {
		t.Fatal("different reason was wrongly deduplicated")
	}
	waitForCaptures(t, p, 2)
}

func TestTriggerRejectsHostileReasons(t *testing.T) {
	leakcheck.Check(t)
	p, err := Open(quickCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	for _, reason := range []string{"", "../../etc/passwd", "a b", strings.Repeat("x", 65)} {
		if p.Trigger(reason, "", "") {
			t.Fatalf("hostile reason %q accepted", reason)
		}
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.Start()
	p.Stop()
	p.SetBreachProbe(func() (bool, string) { return true, "" })
	if p.Trigger(TriggerManual, "", "") {
		t.Fatal("nil profiler scheduled a capture")
	}
	if p.List() != nil || p.Lookup("cap-000000") != nil || p.Dir() != "" {
		t.Fatal("nil profiler returned non-zero state")
	}
	if _, err := p.CaptureNow(TriggerManual, "", ""); err == nil {
		t.Fatal("nil CaptureNow did not error")
	}
	// The HTTP handler on a nil profiler answers 404, not a panic.
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contprof", nil))
	if rr.Code != 404 {
		t.Fatalf("nil handler status = %d, want 404", rr.Code)
	}
}

func TestPeriodicIntervalCaptures(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.Interval = 50 * time.Millisecond
	cfg.BreachPoll = 10 * time.Millisecond
	cfg.CPUDuration = 5 * time.Millisecond
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	waitForCaptures(t, p, 1)
	p.Stop()
	var interval int
	for _, m := range p.List() {
		if m.Trigger == TriggerInterval {
			interval++
		}
	}
	if interval == 0 {
		t.Fatal("periodic loop produced no interval captures")
	}
	// Stop is idempotent and Start-after-Stop stays stopped.
	p.Stop()
	p.Start()
	p.Stop()
}

func TestBreachProbeFiresTrigger(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.Interval = time.Hour // only the probe can fire
	cfg.BreachPoll = 10 * time.Millisecond
	cfg.CPUDuration = 5 * time.Millisecond
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetBreachProbe(func() (bool, string) { return true, "availability burning" })
	p.Start()
	waitForCaptures(t, p, 1)
	p.Stop()
	got := p.List()
	if got[0].Trigger != TriggerSLOBreach || got[0].Detail != "availability burning" {
		t.Fatalf("probe capture = %+v", got[0])
	}
}

func TestHandlerListFetchTrigger(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := quickCfg(dir)
	cfg.TriggerCooldown = time.Hour
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	m, err := p.CaptureNow(TriggerManual, "seed", "")
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handler()

	// List.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contprof", nil))
	if rr.Code != 200 {
		t.Fatalf("list status = %d", rr.Code)
	}
	var listing struct {
		Dir      string  `json:"dir"`
		Captures []*Meta `json:"captures"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if len(listing.Captures) != 1 || listing.Captures[0].ID != m.ID {
		t.Fatalf("listing = %+v", listing)
	}

	// Fetch a real profile: must be the gzip bytes from disk.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contprof/fetch?id="+m.ID+"&kind=heap", nil))
	if rr.Code != 200 {
		t.Fatalf("fetch status = %d: %s", rr.Code, rr.Body.String())
	}
	if b := rr.Body.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("fetched profile is not gzip")
	}

	// Fetch must refuse ids and kinds outside the ring — including
	// traversal-shaped ones.
	for _, q := range []string{
		"id=nope&kind=heap",
		"id=" + m.ID + "&kind=nope",
		"id=../" + m.ID + "&kind=heap",
		"id=" + m.ID + "&kind=../../etc/passwd",
	} {
		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contprof/fetch?"+q, nil))
		if rr.Code != 404 {
			t.Fatalf("fetch %q status = %d, want 404", q, rr.Code)
		}
	}

	// Trigger over HTTP: first fires (202), the duplicate inside the
	// cooldown reports deduplication (200, scheduled=false). GET is
	// refused — captures mutate disk.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/contprof/trigger?reason=loadtest&detail=plateau", nil))
	if rr.Code != 202 {
		t.Fatalf("trigger status = %d: %s", rr.Code, rr.Body.String())
	}
	waitForCaptures(t, p, 2)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/contprof/trigger?reason=loadtest", nil))
	if rr.Code != 200 {
		t.Fatalf("dup trigger status = %d", rr.Code)
	}
	var resp struct {
		Scheduled bool `json:"scheduled"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil || resp.Scheduled {
		t.Fatalf("dup trigger resp = %s (err %v)", rr.Body.String(), err)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/contprof/trigger?reason=x", nil))
	if rr.Code != 405 {
		t.Fatalf("GET trigger status = %d, want 405", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/contprof/trigger?reason=no+spaces+allowed", nil))
	if rr.Code != 400 {
		t.Fatalf("hostile reason status = %d, want 400", rr.Code)
	}
}

func TestDoAppliesLabels(t *testing.T) {
	var route string
	Do(context.Background(), func(ctx context.Context) {
		if v, ok := pprof.Label(ctx, "route"); ok {
			route = v
		}
	}, "route", "/v1/match")
	if route != "/v1/match" {
		t.Fatalf("label route = %q", route)
	}
	// Odd/empty label sets still run f, unlabeled.
	ran := false
	Do(context.Background(), func(ctx context.Context) { ran = true }, "odd")
	if !ran {
		t.Fatal("Do with odd labels did not run f")
	}
}

// waitForCaptures polls until the ring holds at least n captures
// (triggered captures land asynchronously).
func waitForCaptures(t *testing.T, p *Profiler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.List()) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ring never reached %d captures (have %d)", n, len(p.List()))
}
