// Package contprof is continuous profiling for the serving tier: it
// periodically captures CPU, heap, goroutine, mutex, and block profiles
// into a bounded on-disk retention ring, and arms *triggered* captures
// so that when an SLO starts burning or the tail buffer admits a
// latency outlier, the profile taken is of the fire — not of the quiet
// minute after an operator notices.
//
// (The name avoids colliding with internal/profile, the data profiler
// from the paper's Section 3; this package profiles the process, not
// the tables.)
//
// Each capture is a set of pprof files plus one JSON metadata sidecar
// (timestamp, build info, trigger, request id, allocation deltas). The
// sidecar is written last, atomically, after every profile file it
// names: a capture without a parseable sidecar is a torn write and is
// swept on reload, so a SIGKILL mid-capture can never leave a capture
// that lists profiles which do not exist. The ring holds at most
// MaxCaptures captures; the oldest is pruned, files and all, when a new
// one lands.
//
// Captures come from four places:
//
//   - the interval ticker (trigger "interval"),
//   - Trigger(), the deduplicated async entry point the serving tier
//     calls on tail-outlier admissions and burn-rate breaches (and the
//     /debug/contprof/trigger endpoint exposes over HTTP),
//   - the armed breach probe (SetBreachProbe), polled between interval
//     captures so a fast SLO burn is profiled within seconds,
//   - the final drain-time capture emserve takes on SIGTERM.
//
// Do tags work with runtime/pprof labels (route/stage/job) so CPU
// captures slice by endpoint in `go tool pprof -tags`.
package contprof

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"emgo/internal/ckpt"
	"emgo/internal/obs"
)

// Defaults used when Config fields are zero.
const (
	DefaultInterval        = 60 * time.Second
	DefaultMaxCaptures     = 32
	DefaultCPUDuration     = time.Second
	DefaultTriggerCooldown = 30 * time.Second
	DefaultBreachPoll      = 10 * time.Second
	// The mutex/block sampling defaults are deliberately sparse: this
	// profiler is carried by every serving process all the time, and
	// aggressive rates (fraction 16, 1ms) measured ~40% overhead on the
	// batch endpoint's fan-out path. 1-in-500 contention events and a
	// 100ms block threshold keep the steady-state cost inside the <5%
	// budget (see BenchmarkMatchBatch32ObservedProfiled) while sustained
	// contention — the thing a triggered capture is fetched to explain —
	// still accumulates samples within one capture interval.
	DefaultMutexFraction = 500
	DefaultBlockRate     = int(100 * time.Millisecond)
)

// Built-in trigger reasons. Trigger accepts any sanitized reason; these
// are the ones the serving tier uses.
const (
	TriggerInterval    = "interval"
	TriggerDrain       = "drain"
	TriggerSLOBreach   = "slo_breach"
	TriggerTailOutlier = "tail_outlier"
	TriggerManual      = "manual"
)

// profileKinds are the profiles every capture attempts, in the order
// they are written. CPU is handled separately (it needs a sampling
// window); the rest are instantaneous pprof.Lookup snapshots.
var profileKinds = []string{"heap", "goroutine", "mutex", "block"}

// KindCPU names the CPU profile in Meta.Profiles and fetch requests.
const KindCPU = "cpu"

// Config sizes a Profiler.
type Config struct {
	// Dir is the retention-ring directory (created if missing).
	Dir string
	// Interval between periodic captures; <0 disables the periodic
	// ticker (triggered captures still work), 0 selects the default.
	Interval time.Duration
	// MaxCaptures bounds the ring; the oldest capture is pruned when a
	// new one would exceed it.
	MaxCaptures int
	// CPUDuration is the CPU-profile sampling window per capture,
	// clamped to half the interval so captures never overlap.
	CPUDuration time.Duration
	// TriggerCooldown is the per-reason dedup window for Trigger: a
	// breach storm produces one capture, not one per failing request.
	TriggerCooldown time.Duration
	// BreachPoll is how often the armed breach probe is evaluated
	// between interval captures (clamped to the interval).
	BreachPoll time.Duration
	// MutexFraction and BlockRate arm runtime mutex/block sampling for
	// the profiler's lifetime (restored to off on Stop). <0 leaves the
	// runtime setting untouched, 0 selects the defaults.
	MutexFraction int
	BlockRate     int
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = DefaultMaxCaptures
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = DefaultCPUDuration
	}
	if c.Interval > 0 && c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if c.TriggerCooldown <= 0 {
		c.TriggerCooldown = DefaultTriggerCooldown
	}
	if c.BreachPoll <= 0 {
		c.BreachPoll = DefaultBreachPoll
	}
	if c.Interval > 0 && c.BreachPoll > c.Interval {
		c.BreachPoll = c.Interval
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = DefaultMutexFraction
	}
	if c.BlockRate == 0 {
		c.BlockRate = DefaultBlockRate
	}
	return c
}

// Meta is one capture's JSON sidecar: everything an operator needs to
// decide whether the capture is the one worth pulling, without fetching
// a single profile byte.
type Meta struct {
	ID        string    `json:"id"`
	Time      time.Time `json:"time"`
	Trigger   string    `json:"trigger"`
	Detail    string    `json:"detail,omitempty"`
	RequestID string    `json:"request_id,omitempty"`

	GoVersion  string `json:"go_version"`
	Build      string `json:"build,omitempty"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Goroutines int `json:"goroutines"`
	// HeapAllocBytes is live heap at capture time; AllocDeltaBytes and
	// GCCycleDelta are since the previous capture, so consecutive ring
	// entries read as an allocation-rate series (and `go tool pprof
	// -diff_base` between their heap profiles shows where the delta
	// went).
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	AllocDeltaBytes uint64 `json:"alloc_delta_bytes"`
	GCCycles        uint32 `json:"gc_cycles"`
	GCCycleDelta    uint32 `json:"gc_cycle_delta"`

	// Profiles maps kind -> filename (relative to the ring dir).
	// Errors records kinds that could not be captured (e.g. the CPU
	// profiler was already claimed by /debug/pprof/profile).
	Profiles map[string]string `json:"profiles"`
	Errors   map[string]string `json:"errors,omitempty"`
}

// Profiler owns the retention ring. The nil *Profiler is valid: every
// method no-ops (List returns nil, Trigger returns false), matching the
// obs nil-handle posture so callers wire it unconditionally.
type Profiler struct {
	cfg Config

	// captureMu serializes captures (the CPU window makes them long).
	captureMu sync.Mutex

	mu             sync.Mutex
	captures       []*Meta // oldest first
	seq            int
	lastByReason   map[string]time.Time
	breachProbe    func() (bool, string)
	prevTotalAlloc uint64
	prevGCCycles   uint32

	prevMutexFraction int
	prevBlockRate     int

	stop    chan struct{}
	stopped chan struct{}
	started bool
	wg      sync.WaitGroup
}

// Open creates (or reopens) the retention ring under cfg.Dir: existing
// captures are reloaded from their sidecars, torn captures (profile
// files without a parseable sidecar, or sidecars naming missing files)
// are swept, and the ring is pruned to MaxCaptures. Open does not start
// the periodic ticker; call Start.
func Open(cfg Config) (*Profiler, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("contprof: empty dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("contprof: %w", err)
	}
	p := &Profiler{
		cfg:          cfg,
		lastByReason: map[string]time.Time{},
		stop:         make(chan struct{}),
		stopped:      make(chan struct{}),
	}
	if err := p.reload(); err != nil {
		return nil, err
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.prevTotalAlloc, p.prevGCCycles = ms.TotalAlloc, ms.NumGC
	return p, nil
}

// reload scans the ring dir, keeps captures with valid sidecars, and
// deletes everything else (torn writes from a crash mid-capture).
func (p *Profiler) reload() error {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return fmt.Errorf("contprof: %w", err)
	}
	valid := map[string]*Meta{} // capture id -> meta
	claimed := map[string]bool{}
	var metas []*Meta
	maxSeq := -1
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		// Advance the sequence past every capture-shaped name on disk —
		// torn ones included — so a new capture never reuses the id of
		// a file the sweep is about to delete.
		if id, _, ok := strings.Cut(name, "."); ok {
			if n := seqOf(id); n > maxSeq {
				maxSeq = n
			}
		}
		if !strings.HasSuffix(name, ".meta.json") {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(p.cfg.Dir, name))
		if rerr != nil {
			continue
		}
		var m Meta
		if json.Unmarshal(data, &m) != nil || m.ID == "" ||
			name != m.ID+".meta.json" {
			continue // corrupt sidecar: swept below with its files
		}
		torn := false
		for _, f := range m.Profiles {
			if _, serr := os.Stat(filepath.Join(p.cfg.Dir, f)); serr != nil {
				torn = true
				break
			}
		}
		if torn {
			continue
		}
		valid[m.ID] = &m
		claimed[name] = true
		for _, f := range m.Profiles {
			claimed[f] = true
		}
		metas = append(metas, &m)
	}
	// Sweep everything a valid sidecar does not claim: torn captures,
	// corrupt sidecars, stray temp files.
	for _, e := range entries {
		if e.IsDir() || claimed[e.Name()] {
			continue
		}
		os.Remove(filepath.Join(p.cfg.Dir, e.Name())) //nolint:errcheck // best-effort sweep
	}
	sort.Slice(metas, func(i, j int) bool {
		if !metas[i].Time.Equal(metas[j].Time) {
			return metas[i].Time.Before(metas[j].Time)
		}
		return metas[i].ID < metas[j].ID
	})
	p.mu.Lock()
	p.captures = metas
	p.seq = maxSeq + 1
	p.mu.Unlock()
	p.pruneToCap()
	return nil
}

// seqOf parses the numeric sequence out of a "cap-000042" id (-1 when
// the id is foreign).
func seqOf(id string) int {
	s, ok := strings.CutPrefix(id, "cap-")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// SetBreachProbe arms the burn-rate probe polled between interval
// captures: when it reports a breach, a TriggerSLOBreach capture fires
// (deduplicated under the trigger cooldown). Safe on nil.
func (p *Profiler) SetBreachProbe(probe func() (bool, string)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.breachProbe = probe
	p.mu.Unlock()
}

// Start launches the periodic capture loop (no-op when the interval is
// negative or the profiler nil). Captures run until Stop.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	if p.cfg.MutexFraction > 0 {
		p.prevMutexFraction = runtime.SetMutexProfileFraction(p.cfg.MutexFraction)
	}
	if p.cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(p.cfg.BlockRate)
	}
	if p.cfg.Interval < 0 {
		close(p.stopped)
		return
	}
	go p.loop()
}

// loop is the periodic engine: a breach-poll ticker with an interval
// countdown, so a burning SLO is profiled within BreachPoll seconds
// instead of waiting out the rest of the interval.
func (p *Profiler) loop() {
	defer close(p.stopped)
	tick := time.NewTicker(p.cfg.BreachPoll)
	defer tick.Stop()
	nextInterval := time.Now().Add(p.cfg.Interval)
	for {
		select {
		case <-p.stop:
			return
		case now := <-tick.C:
			p.mu.Lock()
			probe := p.breachProbe
			p.mu.Unlock()
			if probe != nil {
				if breached, detail := probe(); breached {
					p.Trigger(TriggerSLOBreach, detail, "")
				}
			}
			if now.After(nextInterval) {
				nextInterval = now.Add(p.cfg.Interval)
				if _, err := p.CaptureNow(TriggerInterval, "", ""); err != nil {
					obs.C("contprof.capture_errors").Inc()
				}
			}
		}
	}
}

// Stop halts the periodic loop, waits for in-flight triggered captures,
// and restores the runtime mutex/block sampling rates. Safe on nil and
// idempotent.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.started {
		p.started = true // mark so a later Start stays a no-op
		close(p.stopped)
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	select {
	case <-p.stop:
		p.mu.Unlock()
		<-p.stopped
		p.wg.Wait()
		return
	default:
	}
	close(p.stop)
	p.mu.Unlock()
	<-p.stopped
	p.wg.Wait()
	if p.cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(p.prevMutexFraction)
	}
	if p.cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(0)
	}
}

// reasonRe bounds what a trigger reason may look like (the HTTP
// endpoint feeds this from the network).
var reasonRe = regexp.MustCompile(`^[a-zA-Z0-9._@=-]{1,64}$`)

// Trigger requests an asynchronous capture for reason (e.g. a tail
// outlier admission or an SLO breach). Storms deduplicate two ways:
// per-reason cooldown (one slo_breach capture per cooldown window, no
// matter how many requests burn) and in-flight coalescing (a trigger
// while any capture is running is dropped). Returns whether a capture
// was actually scheduled. Safe on nil and for concurrent use.
func (p *Profiler) Trigger(reason, detail, requestID string) bool {
	return p.trigger(reason, func() string { return detail }, requestID)
}

// TriggerFunc is Trigger with the detail built lazily, only once the
// capture has cleared the cooldown and coalescing gates. Hot paths that
// fire on every candidate event (the tail-outlier hook fires per heap
// displacement) use this so the common deduplicated case formats
// nothing.
func (p *Profiler) TriggerFunc(reason string, detail func() string, requestID string) bool {
	return p.trigger(reason, detail, requestID)
}

func (p *Profiler) trigger(reason string, detail func() string, requestID string) bool {
	if p == nil || !reasonRe.MatchString(reason) {
		return false
	}
	now := time.Now()
	p.mu.Lock()
	if last, ok := p.lastByReason[reason]; ok && now.Sub(last) < p.cfg.TriggerCooldown {
		p.mu.Unlock()
		obs.C("contprof.trigger.deduped").Inc()
		return false
	}
	p.lastByReason[reason] = now
	p.mu.Unlock()

	if !p.captureMu.TryLock() {
		// A capture is already running; this trigger's fire is being
		// profiled right now. Do not queue a second one behind it.
		obs.C("contprof.trigger.coalesced").Inc()
		return false
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.captureMu.Unlock()
		if _, err := p.captureLocked(reason, detail(), requestID); err != nil {
			obs.C("contprof.capture_errors").Inc()
		}
	}()
	return true
}

// CaptureNow captures synchronously (the interval loop and the
// drain-time final capture use it). Safe on nil (returns an error).
func (p *Profiler) CaptureNow(trigger, detail, requestID string) (*Meta, error) {
	if p == nil {
		return nil, fmt.Errorf("contprof: nil profiler")
	}
	p.captureMu.Lock()
	defer p.captureMu.Unlock()
	return p.captureLocked(trigger, detail, requestID)
}

// captureLocked runs one full capture under captureMu: every profile
// file first (each written atomically), the sidecar last, then the ring
// prune. A crash at any point leaves either a complete capture or files
// the next Open sweeps.
func (p *Profiler) captureLocked(trigger, detail, requestID string) (*Meta, error) {
	p.mu.Lock()
	id := fmt.Sprintf("cap-%06d", p.seq)
	p.seq++
	p.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m := &Meta{
		ID:         id,
		Time:       time.Now().UTC(),
		Trigger:    trigger,
		Detail:     detail,
		RequestID:  requestID,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Goroutines: runtime.NumGoroutine(),

		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		GCCycles:        ms.NumGC,
		Profiles:        map[string]string{},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Build = bi.Main.Path
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m.Build += "@" + s.Value
				break
			}
		}
	}
	p.mu.Lock()
	m.AllocDeltaBytes = ms.TotalAlloc - p.prevTotalAlloc
	m.GCCycleDelta = ms.NumGC - p.prevGCCycles
	p.prevTotalAlloc, p.prevGCCycles = ms.TotalAlloc, ms.NumGC
	p.mu.Unlock()

	// CPU first: it is the only profile with a sampling window, and the
	// snapshot profiles taken after it describe the window's end state.
	if err := p.writeCPU(id); err != nil {
		m.errored(KindCPU, err)
	} else {
		m.Profiles[KindCPU] = id + "." + KindCPU + ".pprof"
	}
	for _, kind := range profileKinds {
		if err := p.writeLookup(id, kind); err != nil {
			m.errored(kind, err)
		} else {
			m.Profiles[kind] = id + "." + kind + ".pprof"
		}
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("contprof: sidecar: %w", err)
	}
	if err := ckpt.AtomicWriteFile(filepath.Join(p.cfg.Dir, id+".meta.json"), data, 0o644); err != nil {
		return nil, fmt.Errorf("contprof: sidecar: %w", err)
	}

	p.mu.Lock()
	p.captures = append(p.captures, m)
	n := len(p.captures)
	p.mu.Unlock()
	p.pruneToCap()
	obs.C("contprof.captures").Inc()
	obs.G("contprof.ring_size").Set(int64(min(n, p.cfg.MaxCaptures)))
	return m, nil
}

func (m *Meta) errored(kind string, err error) {
	if m.Errors == nil {
		m.Errors = map[string]string{}
	}
	m.Errors[kind] = err.Error()
}

// writeCPU samples the CPU profile for the configured window into the
// capture's cpu file. StartCPUProfile fails when another CPU profile is
// in flight (e.g. an operator's /debug/pprof/profile); that is recorded
// in the sidecar's Errors, not fatal to the capture.
func (p *Profiler) writeCPU(id string) error {
	path := filepath.Join(p.cfg.Dir, id+"."+KindCPU+".pprof")
	return ckpt.AtomicWriteTo(path, 0o644, func(w io.Writer) error {
		if err := pprof.StartCPUProfile(w); err != nil {
			return err
		}
		timer := time.NewTimer(p.cfg.CPUDuration)
		select {
		case <-timer.C:
		case <-p.stop:
			timer.Stop() // draining: cut the window short, keep the sample
		}
		pprof.StopCPUProfile()
		return nil
	})
}

// writeLookup writes one instantaneous pprof.Lookup profile atomically.
func (p *Profiler) writeLookup(id, kind string) error {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return fmt.Errorf("unknown profile %q", kind)
	}
	path := filepath.Join(p.cfg.Dir, id+"."+kind+".pprof")
	return ckpt.AtomicWriteTo(path, 0o644, func(w io.Writer) error {
		return prof.WriteTo(w, 0)
	})
}

// pruneToCap removes the oldest captures past MaxCaptures, files first
// so a crash mid-prune leaves torn captures the next Open sweeps.
func (p *Profiler) pruneToCap() {
	for {
		p.mu.Lock()
		if len(p.captures) <= p.cfg.MaxCaptures {
			p.mu.Unlock()
			return
		}
		victim := p.captures[0]
		p.captures = p.captures[1:]
		p.mu.Unlock()
		for _, f := range victim.Profiles {
			os.Remove(filepath.Join(p.cfg.Dir, f)) //nolint:errcheck // best-effort prune
		}
		os.Remove(filepath.Join(p.cfg.Dir, victim.ID+".meta.json")) //nolint:errcheck
		obs.C("contprof.pruned").Inc()
	}
}

// List returns the ring's capture metadata, oldest first. Safe on nil.
func (p *Profiler) List() []*Meta {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Meta(nil), p.captures...)
}

// Dir returns the ring directory ("" on nil).
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.cfg.Dir
}

// Lookup returns one capture's metadata by id (nil when absent).
func (p *Profiler) Lookup(id string) *Meta {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.captures {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Do runs f with the given pprof label pairs attached to the goroutine,
// so CPU captures slice by route/stage/job in `go tool pprof -tags`.
// With no pairs (or an odd count) f runs unlabeled. Do builds the label
// map on every call; for hot paths with a fixed label set, precompute a
// Labels value instead.
func Do(ctx context.Context, f func(context.Context), kv ...string) {
	if len(kv) == 0 || len(kv)%2 != 0 {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(kv...), f)
}

// Labels is a precomputed, reusable pprof label set. pprof.Do allocates
// a fresh label map per call, which measured as the profiler's dominant
// steady-state cost at serving request rates; building the map once per
// route and re-arming it per request keeps labeling inside the <5%
// overhead budget (see BenchmarkMatchSingleObservedProfiled).
type Labels struct {
	ctx context.Context
}

// NewLabels precomputes a label set from key-value pairs. With no pairs
// (or an odd count) the set is empty and Do runs f unlabeled.
func NewLabels(kv ...string) Labels {
	if len(kv) == 0 || len(kv)%2 != 0 {
		return Labels{}
	}
	return Labels{ctx: pprof.WithLabels(context.Background(), pprof.Labels(kv...))}
}

// unlabeled resets goroutine labels after a Labels.Do; package-level so
// the reset allocates nothing.
var unlabeled = context.Background()

// Do runs f with the precomputed set applied to the current goroutine
// — and restored on return, panics included — forwarding ctx untouched.
// Unlike pprof.Do the labels are not woven into ctx, so goroutines f
// spawns inherit nothing; workers that matter label themselves (the job
// tier does).
func (l Labels) Do(ctx context.Context, f func(context.Context)) {
	if l.ctx == nil {
		f(ctx)
		return
	}
	pprof.SetGoroutineLabels(l.ctx)
	defer pprof.SetGoroutineLabels(unlabeled)
	f(ctx)
}
