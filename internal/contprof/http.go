package contprof

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// Handler serves the retention ring over HTTP, for mounting on the
// serving debug mux at /debug/contprof:
//
//	GET  /debug/contprof                      ring listing (JSON metas)
//	GET  /debug/contprof/fetch?id=&kind=      one raw pprof file
//	POST /debug/contprof/trigger?reason=&detail=  request a capture
//
// Fetch resolves ids through the in-memory ring only — never by
// joining request input into a path — so the handler cannot be walked
// out of the ring directory.
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p == nil {
			http.Error(w, "continuous profiling disabled", http.StatusNotFound)
			return
		}
		// Route on the path suffix so the handler works under any
		// mount prefix (http.ServeMux strips nothing here).
		switch {
		case strings.HasSuffix(r.URL.Path, "/fetch"):
			p.handleFetch(w, r)
		case strings.HasSuffix(r.URL.Path, "/trigger"):
			p.handleTrigger(w, r)
		default:
			p.handleList(w, r)
		}
	})
}

func (p *Profiler) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct { //nolint:errcheck // client gone mid-write
		Dir      string  `json:"dir"`
		Captures []*Meta `json:"captures"`
	}{p.cfg.Dir, p.List()})
}

func (p *Profiler) handleFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	kind := r.URL.Query().Get("kind")
	m := p.Lookup(id)
	if m == nil {
		http.Error(w, "unknown capture id", http.StatusNotFound)
		return
	}
	file, ok := m.Profiles[kind]
	if !ok {
		http.Error(w, "capture has no such profile kind", http.StatusNotFound)
		return
	}
	data, err := os.ReadFile(filepath.Join(p.cfg.Dir, file))
	if err != nil {
		// Pruned between Lookup and read: the ring moved on.
		http.Error(w, "capture no longer retained", http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+file+`"`)
	w.Write(data) //nolint:errcheck // client gone mid-write
}

func (p *Profiler) handleTrigger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = TriggerManual
	}
	if !reasonRe.MatchString(reason) {
		http.Error(w, "invalid reason", http.StatusBadRequest)
		return
	}
	detail := r.URL.Query().Get("detail")
	if len(detail) > 256 {
		detail = detail[:256]
	}
	scheduled := p.Trigger(reason, detail, r.Header.Get("X-Request-Id"))
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusAccepted
	if !scheduled {
		// Deduplicated or coalesced — a capture for this storm already
		// exists or is in flight. Not an error.
		status = http.StatusOK
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"scheduled": scheduled,
		"reason":    reason,
	})
}
