// Package tokenize provides the tokenizers and string normalization used
// throughout the EM pipeline: whitespace and word (alphanumeric) tokenizers
// for overlap blocking and set similarities, q-gram tokenizers for
// character-level similarities, and the lowercasing / punctuation-stripping
// normalization applied before blocking in Section 7 of the case study.
package tokenize

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenizer splits a string into tokens.
type Tokenizer interface {
	// Tokens returns the token sequence of s (duplicates preserved).
	Tokens(s string) []string
	// Name identifies the tokenizer, e.g. for feature naming ("word",
	// "qgram3").
	Name() string
}

// Whitespace tokenizes on runs of Unicode whitespace.
type Whitespace struct{}

// Tokens implements Tokenizer.
func (Whitespace) Tokens(s string) []string { return strings.Fields(s) }

// Name implements Tokenizer.
func (Whitespace) Name() string { return "ws" }

// Word tokenizes into maximal runs of letters and digits; everything else
// is a separator. This is the "word-level tokenizer" of Section 7.
type Word struct{}

// Tokens implements Tokenizer.
func (Word) Tokens(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// Name implements Tokenizer.
func (Word) Name() string { return "word" }

// QGram tokenizes into overlapping character q-grams. When Pad is true the
// string is padded with q-1 '#' markers on each side (the usual convention
// for edit-distance-style filtering); otherwise plain sliding windows are
// used and strings shorter than Q yield a single token of the whole string.
type QGram struct {
	Q   int
	Pad bool
}

// Tokens implements Tokenizer.
func (g QGram) Tokens(s string) []string {
	q := g.Q
	if q <= 0 {
		q = 3
	}
	runes := []rune(s)
	if g.Pad {
		pad := make([]rune, 0, len(runes)+2*(q-1))
		for i := 0; i < q-1; i++ {
			pad = append(pad, '#')
		}
		pad = append(pad, runes...)
		for i := 0; i < q-1; i++ {
			pad = append(pad, '$')
		}
		runes = pad
	}
	if len(runes) == 0 {
		return nil
	}
	if len(runes) < q {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		out = append(out, string(runes[i:i+q]))
	}
	return out
}

// Name implements Tokenizer.
func (g QGram) Name() string {
	q := g.Q
	if q <= 0 {
		q = 3
	}
	name := "qgram" + itoa(q)
	if g.Pad {
		name += "p"
	}
	return name
}

// Delimiter tokenizes on any of the runes in Delims.
type Delimiter struct {
	Delims string
}

// Tokens implements Tokenizer.
func (d Delimiter) Tokens(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return strings.ContainsRune(d.Delims, r)
	})
}

// Name implements Tokenizer.
func (d Delimiter) Name() string { return "delim" }

// itoa is a tiny positive-int formatter to avoid importing strconv for one
// call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Lower lowercases s (the case normalization of Section 7).
func Lower(s string) string { return strings.ToLower(s) }

// StripSpecial removes the special characters listed in Section 7
// (quotation marks, hash symbols, exclamation marks, braces, and similar
// punctuation), replacing them with spaces so tokens do not fuse.
func StripSpecial(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch r {
		case '\'', '"', '#', '!', '(', ')', '{', '}', '[', ']', '`',
			'*', '?', ';', ':', '%', '&', '@', '^', '~', '|', '\\', '/':
			b.WriteByte(' ')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Normalize applies the Section 7 pre-blocking normalization: lowercase
// then strip special characters.
func Normalize(s string) string { return StripSpecial(Lower(s)) }

// Set returns the distinct tokens of toks as a set.
func Set(toks []string) map[string]struct{} {
	out := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		out[t] = struct{}{}
	}
	return out
}

// SortedSet returns the distinct tokens in lexicographic order (used by
// prefix filtering in the overlap-coefficient blocker).
func SortedSet(toks []string) []string {
	set := Set(toks)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
