package tokenize_test

import (
	"fmt"

	"emgo/internal/tokenize"
)

func ExampleWord() {
	fmt.Println(tokenize.Word{}.Tokens("IPM-based corn fungicide, 2008"))
	// Output: [IPM based corn fungicide 2008]
}

func ExampleQGram() {
	fmt.Println(tokenize.QGram{Q: 3}.Tokens("corn"))
	// Output: [cor orn]
}

func ExampleNormalize() {
	fmt.Println(tokenize.Normalize(`SWAMP DODDER (Cuscuta) "Ecology"!`))
	// Output: swamp dodder  cuscuta   ecology
}
