package tokenize

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"unicode"
)

func TestWhitespace(t *testing.T) {
	got := Whitespace{}.Tokens("  corn  fungicide guidelines ")
	want := []string{"corn", "fungicide", "guidelines"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if (Whitespace{}).Name() != "ws" {
		t.Fatal("name")
	}
}

func TestWord(t *testing.T) {
	got := Word{}.Tokens("IPM-based (corn) fungicide, 2008!")
	want := []string{"IPM", "based", "corn", "fungicide", "2008"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if len((Word{}).Tokens("")) != 0 {
		t.Fatal("empty string should have no word tokens")
	}
	if got := (Word{}).Tokens("abc"); !reflect.DeepEqual(got, []string{"abc"}) {
		t.Fatalf("trailing token lost: %v", got)
	}
}

func TestQGram(t *testing.T) {
	g := QGram{Q: 3}
	got := g.Tokens("corn")
	want := []string{"cor", "orn"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// Shorter than q: one whole-string token.
	if got := g.Tokens("ab"); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("short string: %v", got)
	}
	if g.Tokens("") != nil {
		t.Fatal("empty string should yield nil")
	}
	if g.Name() != "qgram3" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestQGramPadded(t *testing.T) {
	g := QGram{Q: 2, Pad: true}
	got := g.Tokens("ab")
	want := []string{"#a", "ab", "b$"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if g.Name() != "qgram2p" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestQGramDefaultQ(t *testing.T) {
	g := QGram{}
	if g.Name() != "qgram3" {
		t.Fatalf("default name = %q", g.Name())
	}
	if got := g.Tokens("abcd"); len(got) != 2 {
		t.Fatalf("default q: %v", got)
	}
}

func TestQGramUnicode(t *testing.T) {
	g := QGram{Q: 2}
	got := g.Tokens("日本語")
	want := []string{"日本", "本語"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDelimiter(t *testing.T) {
	d := Delimiter{Delims: "-|"}
	got := d.Tokens("2008-34103-19449|x")
	want := []string{"2008", "34103", "19449", "x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if d.Name() != "delim" {
		t.Fatal("name")
	}
}

func TestNormalize(t *testing.T) {
	in := `SWAMP DODDER (Cuscuta gronovii) "Applied" Ecology!`
	got := Normalize(in)
	want := `swamp dodder  cuscuta gronovii   applied  ecology `
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestStripSpecialKeepsWordChars(t *testing.T) {
	if got := StripSpecial("a-b.c,d"); got != "a-b.c,d" {
		t.Fatalf("hyphen/dot/comma should survive: %q", got)
	}
	if got := StripSpecial("a#b"); got != "a b" {
		t.Fatalf("hash should become space: %q", got)
	}
}

func TestSetAndSortedSet(t *testing.T) {
	toks := []string{"b", "a", "b", "c"}
	s := Set(toks)
	if len(s) != 3 {
		t.Fatalf("set size = %d", len(s))
	}
	ss := SortedSet(toks)
	if !reflect.DeepEqual(ss, []string{"a", "b", "c"}) {
		t.Fatalf("sorted set = %v", ss)
	}
}

// Property: q-gram token count equals max(len-q+1, 1) for non-empty strings
// without padding.
func TestQGramCountProperty(t *testing.T) {
	g := QGram{Q: 3}
	f := func(s string) bool {
		runes := []rune(s)
		got := len(g.Tokens(s))
		if len(runes) == 0 {
			return got == 0
		}
		want := len(runes) - 3 + 1
		if want < 1 {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SortedSet output is sorted and duplicate-free.
func TestSortedSetProperty(t *testing.T) {
	f := func(toks []string) bool {
		ss := SortedSet(toks)
		if !sort.StringsAreSorted(ss) {
			return false
		}
		for i := 1; i < len(ss); i++ {
			if ss[i] == ss[i-1] {
				return false
			}
		}
		return len(ss) == len(Set(toks))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Word tokens contain only letters and digits.
func TestWordTokensAlnumProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range (Word{}).Tokens(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
