package cliutil

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"emgo/internal/leakcheck"
)

func TestSignalContextCancelsOnSIGTERM(t *testing.T) {
	leakcheck.Check(t)
	ctx, stop := SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("SIGTERM did not cancel the context")
	}
	if !Interrupted(ctx, ctx.Err()) {
		t.Fatal("signal cancellation not reported as interrupted")
	}
}

func TestSignalContextStopWithoutSignal(t *testing.T) {
	leakcheck.Check(t)
	ctx, stop := SignalContext(context.Background())
	// No signal arrived: the run is not interrupted. (Callers must check
	// Interrupted before stop — stop itself cancels the context.)
	if Interrupted(ctx, nil) {
		t.Fatal("un-cancelled context reported interrupted")
	}
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not cancel the context")
	}
}

func TestInterrupted(t *testing.T) {
	live := context.Background()
	done, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want bool
	}{
		{"live ctx, no error", live, nil, false},
		{"live ctx, cancel-shaped error", live, context.Canceled, false},
		{"cancelled ctx, no error", done, nil, true},
		{"cancelled ctx, canceled error", done, context.Canceled, true},
		{"cancelled ctx, wrapped canceled", done, fmt.Errorf("stage: %w", context.Canceled), true},
		{"cancelled ctx, deadline error", done, context.DeadlineExceeded, true},
		{"cancelled ctx, unrelated error", done, errors.New("disk full"), false},
	}
	for _, tc := range cases {
		if got := Interrupted(tc.ctx, tc.err); got != tc.want {
			t.Errorf("%s: Interrupted = %v, want %v", tc.name, got, tc.want)
		}
	}
}
