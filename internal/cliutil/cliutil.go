// Package cliutil is the shared signal-handling seam for the repo's
// binaries. Every CLI runs its work under a context cancelled by
// SIGINT/SIGTERM, so an operator's Ctrl-C (or a supervisor's TERM
// during redeploy) propagates through the same ctx plumbing the
// pipeline already honors: stages stop at their next cancellation
// check, pending checkpoints and run reports flush on the way out, and
// the process exits with the conventional interrupted status instead of
// dying mid-write.
package cliutil

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the exit status for a run stopped by SIGINT or
// SIGTERM after flushing its state (128+SIGINT, the shell convention —
// distinct from 1 "the run failed" and 2 "the invocation was wrong").
const ExitInterrupted = 130

// SignalContext derives a context cancelled on SIGINT or SIGTERM. The
// first signal cancels ctx and lets the program wind down gracefully; a
// second signal restores default handling, so an operator's repeated
// Ctrl-C still force-kills a wedged shutdown. The returned stop releases
// the signal registration.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	go func() {
		// Once cancelled (first signal or parent cancellation), drop the
		// registration so the next signal gets default handling.
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// Interrupted reports whether a run's failure was the operator's
// interrupt rather than the program's fault: the signal context was
// cancelled and the error (if any) is cancellation-shaped. Callers map
// this to ExitInterrupted.
func Interrupted(ctx context.Context, err error) bool {
	if ctx.Err() == nil {
		return false
	}
	return err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
