package simfunc

import (
	"math"
	"testing"
)

func TestAbsDiff(t *testing.T) {
	if d := AbsDiff(5, 3); d != 2 {
		t.Errorf("AbsDiff = %v", d)
	}
	if d := AbsDiff(3, 5); d != 2 {
		t.Errorf("AbsDiff sym = %v", d)
	}
	if !math.IsNaN(AbsDiff(math.NaN(), 1)) || !math.IsNaN(AbsDiff(1, math.NaN())) {
		t.Error("NaN should propagate")
	}
}

func TestRelDiff(t *testing.T) {
	if d := RelDiff(10, 5); d != 0.5 {
		t.Errorf("RelDiff = %v", d)
	}
	if d := RelDiff(0, 0); d != 0 {
		t.Errorf("both zero = %v", d)
	}
	if !math.IsNaN(RelDiff(math.NaN(), 1)) {
		t.Error("NaN should propagate")
	}
}

func TestExactNumeric(t *testing.T) {
	if ExactNumeric(2008, 2008) != 1 || ExactNumeric(2008, 2009) != 0 {
		t.Error("ExactNumeric wrong")
	}
	if !math.IsNaN(ExactNumeric(math.NaN(), 1)) {
		t.Error("NaN should propagate")
	}
}

func TestYearDiff(t *testing.T) {
	if d := YearDiff(2008, 2011); d != 3 {
		t.Errorf("YearDiff = %v", d)
	}
	if !math.IsNaN(YearDiff(1, math.NaN())) {
		t.Error("NaN should propagate")
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // H is transparent
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", ""},
		{"123", ""},
		{"Kermicle", "K652"},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexCaseInsensitive(t *testing.T) {
	if Soundex("ESKER") != Soundex("esker") {
		t.Error("soundex should be case-insensitive")
	}
}
