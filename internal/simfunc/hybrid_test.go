package simfunc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAffineGap(t *testing.T) {
	if s := AffineGap("", ""); s != 0 {
		t.Errorf("empty = %v", s)
	}
	if s := AffineGap("abc", "abc"); s != 3 {
		t.Errorf("identical = %v", s)
	}
	// One long gap must beat the same total length of scattered gaps:
	// "davidsmith" vs "david michael smith"-style truncation.
	longGap := AffineGap("dsmith", "davidsmith") // one 4-rune gap
	if longGap <= 0 {
		t.Errorf("long-gap alignment should stay positive: %v", longGap)
	}
	// Affine gap cost: open -1 + 3 extends -1.5 = -2.5, plus 6 matches.
	if math.Abs(longGap-3.5) > 1e-9 {
		t.Errorf("gap arithmetic = %v want 3.5", longGap)
	}
	if s := AffineGap("", "ab"); math.Abs(s-(-1.5)) > 1e-9 {
		t.Errorf("pure gap = %v want -1.5", s)
	}
}

func TestAffineGapSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 || len(b) > 12 {
			a, b = truncate(a, 12), truncate(b, 12)
		}
		return math.Abs(AffineGap(a, b)-AffineGap(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func truncate(s string, n int) string {
	r := []rune(s)
	if len(r) > n {
		return string(r[:n])
	}
	return s
}

func TestBagDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"abc", "cba", 0}, // bags equal
		{"abc", "abd", 1},
		{"aab", "ab", 1},
	}
	for _, c := range cases {
		if got := BagDistance(c.a, c.b); got != c.want {
			t.Errorf("BagDistance(%q,%q) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: bag distance is a lower bound on Levenshtein distance.
func TestBagDistanceLowerBoundProperty(t *testing.T) {
	f := func(a, b string) bool {
		a, b = truncate(a, 15), truncate(b, 15)
		return BagDistance(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTversky(t *testing.T) {
	a := []string{"corn", "fungicide", "guidelines"}
	b := []string{"corn", "fungicide", "rules"}
	// alpha=beta=1 == Jaccard.
	if got, want := Tversky(a, b, 1, 1), Jaccard(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Tversky(1,1) = %v, Jaccard = %v", got, want)
	}
	// alpha=beta=0.5 == Dice.
	if got, want := Tversky(a, b, 0.5, 0.5), Dice(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Tversky(.5,.5) = %v, Dice = %v", got, want)
	}
	// Asymmetric weights ignore one side's extras entirely.
	if got := Tversky(a, b, 0, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Tversky(0,1) = %v", got)
	}
	if Tversky(nil, nil, 1, 1) != 1 {
		t.Error("both empty should be 1")
	}
}

func TestGeneralizedJaccard(t *testing.T) {
	// Exact tokens behave like Jaccard.
	a := []string{"corn", "fungicide"}
	b := []string{"corn", "rules"}
	if got := GeneralizedJaccard(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("exact tokens = %v", got)
	}
	// Token-level typo is soft-matched where Jaccard sees nothing.
	typo := GeneralizedJaccard([]string{"fungicide"}, []string{"fungicde"})
	if typo <= 0.8 {
		t.Errorf("typo should soft-match: %v", typo)
	}
	if Jaccard([]string{"fungicide"}, []string{"fungicde"}) != 0 {
		t.Error("baseline check: plain jaccard should be 0")
	}
	if GeneralizedJaccard(nil, nil) != 1 || GeneralizedJaccard(a, nil) != 0 {
		t.Error("empty handling")
	}
	// Identical sets are fully similar.
	if got := GeneralizedJaccard(a, a); got != 1 {
		t.Errorf("self = %v", got)
	}
}

func TestGeneralizedJaccardRangeProperty(t *testing.T) {
	f := func(a, b []string) bool {
		if len(a) > 6 {
			a = a[:6]
		}
		if len(b) > 6 {
			b = b[:6]
		}
		s := GeneralizedJaccard(a, b)
		return s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"abc", "abc", 1},
		{"abcd", "abxy", 0.5},
		{"WIS01040", "WIS04059", 0.5},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := PrefixSim(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PrefixSim(%q,%q) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}
