// Package simfunc implements the string, set, and numeric similarity
// functions used for blocking and for automatic feature generation — the
// role py_stringmatching plays for PyMatcher. All similarities are in
// [0, 1] with 1 meaning identical, unless documented otherwise.
package simfunc

import "strings"

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete, substitute), computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim converts edit distance to a similarity:
// 1 - dist/max(len(a), len(b)). Two empty strings are fully similar.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := len(ra)
	if len(rb) > window {
		window = len(rb)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions.
	trans := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale of 0.1 and a maximum considered prefix of 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NeedlemanWunsch returns the global-alignment score of a and b with match
// score +1, mismatch -1, gap -1 (raw score, not normalized).
func NeedlemanWunsch(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = -j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = -i
		for j := 1; j <= len(rb); j++ {
			s := -1
			if ra[i-1] == rb[j-1] {
				s = 1
			}
			cur[j] = max3(prev[j-1]+s, prev[j]-1, cur[j-1]-1)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// SmithWaterman returns the local-alignment score of a and b with match +2,
// mismatch -1, gap -1 (raw score; 0 means no positive-scoring local
// alignment).
func SmithWaterman(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		cur[0] = 0
		for j := 1; j <= len(rb); j++ {
			s := -1
			if ra[i-1] == rb[j-1] {
				s = 2
			}
			v := max3(prev[j-1]+s, prev[j]-1, cur[j-1]-1)
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// Hamming returns the number of positions at which equal-length strings
// differ; it returns -1 when lengths differ (Hamming is undefined there).
func Hamming(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) != len(rb) {
		return -1
	}
	d := 0
	for i := range ra {
		if ra[i] != rb[i] {
			d++
		}
	}
	return d
}

// ExactString reports 1 when the strings are byte-identical, else 0.
func ExactString(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// ExactStringFold reports 1 when the strings are equal ignoring ASCII and
// Unicode simple case, else 0. This is one of the case-insensitive features
// added during matcher debugging in Section 9.
func ExactStringFold(a, b string) float64 {
	if strings.EqualFold(a, b) {
		return 1
	}
	return 0
}

func min3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func max3(a, b, c int) int {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}
