package simfunc_test

import (
	"fmt"

	"emgo/internal/simfunc"
)

func ExampleJaccard() {
	a := []string{"corn", "fungicide", "guidelines"}
	b := []string{"corn", "fungicide", "rules"}
	fmt.Printf("%.2f\n", simfunc.Jaccard(a, b))
	// Output: 0.50
}

func ExampleOverlapCoefficient() {
	// Short titles reach a high coefficient even when the raw overlap is
	// small — the reason the case study needed a second title blocker.
	a := []string{"swamp", "dodder"}
	b := []string{"swamp", "dodder", "ecology", "management"}
	fmt.Printf("%.2f\n", simfunc.OverlapCoefficient(a, b))
	// Output: 1.00
}

func ExampleJaroWinkler() {
	fmt.Printf("%.3f\n", simfunc.JaroWinkler("MARTHA", "MARHTA"))
	// Output: 0.961
}

func ExampleSoundex() {
	fmt.Println(simfunc.Soundex("Robert"), simfunc.Soundex("Rupert"))
	// Output: R163 R163
}

func ExampleLevenshtein() {
	fmt.Println(simfunc.Levenshtein("kitten", "sitting"))
	// Output: 3
}

func ExampleGeneralizedJaccard() {
	// A token-level typo that plain Jaccard scores as disjoint.
	fmt.Printf("%.2f %.2f\n",
		simfunc.Jaccard([]string{"fungicide"}, []string{"fungicde"}),
		simfunc.GeneralizedJaccard([]string{"fungicide"}, []string{"fungicde"}))
	// Output: 0.00 0.96
}
