package simfunc

import (
	"strings"
	"testing"
)

var (
	benchA = "DEVELOPMENT OF IPM-BASED CORN FUNGICIDE GUIDELINES FOR THE NORTH CENTRAL STATES"
	benchB = "Development of IPM-Based Corn Fungicide Guidelines for the North Central States"
	tokA   = strings.Fields(strings.ToLower(benchA))
	tokB   = strings.Fields(strings.ToLower(benchB))
	sink   float64
	sinkI  int
)

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkI = Levenshtein(benchA, benchB)
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = JaroWinkler(benchA, benchB)
	}
}

func BenchmarkJaccardTokens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = Jaccard(tokA, tokB)
	}
}

func BenchmarkMongeElkan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = MongeElkan(tokA, tokB)
	}
}

func BenchmarkGeneralizedJaccard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = GeneralizedJaccard(tokA, tokB)
	}
}

func BenchmarkAffineGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = AffineGap("David Michael Smith", "D. M. Smith")
	}
}

func BenchmarkSoundex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Soundex("Zimmermann")
	}
}

func BenchmarkTFIDFCosine(b *testing.B) {
	c := NewCorpus()
	for i := 0; i < 1000; i++ {
		c.Add(tokA)
		c.Add(tokB)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.TFIDFCosine(tokA, tokB)
	}
}
