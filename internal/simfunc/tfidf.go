package simfunc

import "math"

// Corpus accumulates document frequencies so TF-IDF cosine similarity can
// weight rare tokens (e.g. distinctive title words) above generic ones
// (e.g. "lab", "supplies" — the Section 5 problem of generic titles).
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// Add registers one document's tokens (duplicates within a document count
// once toward document frequency).
func (c *Corpus) Add(tokens []string) {
	c.docs++
	for t := range set(tokens) {
		c.df[t]++
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of token:
// log(1 + N/df). Unseen tokens get the maximum weight log(1 + N).
func (c *Corpus) IDF(token string) float64 {
	if c.docs == 0 {
		return 0
	}
	df := c.df[token]
	if df == 0 {
		df = 1
	}
	return math.Log(1 + float64(c.docs)/float64(df))
}

// TFIDFCosine returns the cosine similarity of the TF-IDF vectors of two
// token lists under this corpus.
func (c *Corpus) TFIDFCosine(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	wa := c.weights(a)
	wb := c.weights(b)
	var dot, na, nb float64
	for t, w := range wa {
		na += w * w
		if wbv, ok := wb[t]; ok {
			dot += w * wbv
		}
	}
	for _, w := range wb {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// weights builds the TF-IDF weight vector for tokens.
func (c *Corpus) weights(tokens []string) map[string]float64 {
	tf := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	for t, f := range tf {
		tf[t] = f * c.IDF(t)
	}
	return tf
}
