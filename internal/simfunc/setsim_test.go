package simfunc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaccard(t *testing.T) {
	if s := Jaccard(nil, nil); s != 1 {
		t.Errorf("empty = %v", s)
	}
	if s := Jaccard([]string{"a"}, nil); s != 0 {
		t.Errorf("one empty = %v", s)
	}
	a := []string{"corn", "fungicide", "guidelines"}
	b := []string{"corn", "fungicide", "rules"}
	if s := Jaccard(a, b); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("2/4 = %v", s)
	}
	// Duplicates collapse.
	if s := Jaccard([]string{"a", "a"}, []string{"a"}); s != 1 {
		t.Errorf("dup collapse = %v", s)
	}
}

func TestOverlapSize(t *testing.T) {
	a := []string{"development", "of", "ipm", "based", "corn"}
	b := []string{"ipm", "corn", "soy"}
	if n := OverlapSize(a, b); n != 2 {
		t.Errorf("overlap = %d", n)
	}
	if n := OverlapSize(nil, b); n != 0 {
		t.Errorf("empty overlap = %d", n)
	}
}

func TestOverlapCoefficient(t *testing.T) {
	// The Section 7 motivation: short titles can reach high coefficient
	// even when raw overlap is below K=3.
	a := []string{"swamp", "dodder"}
	b := []string{"swamp", "dodder", "ecology"}
	if s := OverlapCoefficient(a, b); s != 1 {
		t.Errorf("contained set = %v", s)
	}
	if s := OverlapCoefficient(nil, nil); s != 1 {
		t.Errorf("both empty = %v", s)
	}
	if s := OverlapCoefficient(nil, b); s != 0 {
		t.Errorf("one empty = %v", s)
	}
	if s := OverlapCoefficient([]string{"x"}, b); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
}

func TestDice(t *testing.T) {
	a := []string{"a", "b"}
	b := []string{"b", "c"}
	if s := Dice(a, b); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("dice = %v", s)
	}
	if s := Dice(nil, nil); s != 1 {
		t.Errorf("empty = %v", s)
	}
}

func TestCosineSet(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"a", "b", "c", "x"}
	if s := Cosine(a, b); math.Abs(s-0.75) > 1e-12 {
		t.Errorf("cosine = %v", s)
	}
	if Cosine(nil, nil) != 1 || Cosine(a, nil) != 0 {
		t.Error("cosine empty handling")
	}
}

func TestMongeElkan(t *testing.T) {
	a := []string{"PAUL", "ESKER"}
	b := []string{"ESKER", "PAUL"}
	if s := MongeElkan(a, b); s != 1 {
		t.Errorf("reordered names = %v", s)
	}
	if MongeElkan(nil, nil) != 1 || MongeElkan(a, nil) != 0 || MongeElkan(nil, a) != 0 {
		t.Error("empty handling")
	}
	// Near-match names should score high.
	if s := MongeElkan([]string{"Colquhoun"}, []string{"Colquhoun", "J"}); s < 0.99 {
		t.Errorf("best-match = %v", s)
	}
}

// Properties shared by the set similarities: range [0,1], symmetry,
// self-similarity 1.
func TestSetSimProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	type simFn struct {
		name string
		fn   func(a, b []string) float64
	}
	fns := []simFn{
		{"jaccard", Jaccard},
		{"overlapcoeff", OverlapCoefficient},
		{"dice", Dice},
		{"cosine", Cosine},
	}
	for _, sf := range fns {
		sf := sf
		rangeOK := func(a, b []string) bool {
			s := sf.fn(a, b)
			return s >= 0 && s <= 1+1e-12
		}
		if err := quick.Check(rangeOK, cfg); err != nil {
			t.Errorf("%s range: %v", sf.name, err)
		}
		sym := func(a, b []string) bool {
			return math.Abs(sf.fn(a, b)-sf.fn(b, a)) < 1e-12
		}
		if err := quick.Check(sym, cfg); err != nil {
			t.Errorf("%s symmetry: %v", sf.name, err)
		}
		self := func(a []string) bool { return sf.fn(a, a) == 1 }
		if err := quick.Check(self, cfg); err != nil {
			t.Errorf("%s self: %v", sf.name, err)
		}
	}
}

func TestTFIDFCosine(t *testing.T) {
	c := NewCorpus()
	c.Add([]string{"lab", "supplies"})
	c.Add([]string{"lab", "supplies"})
	c.Add([]string{"lab", "supplies"})
	c.Add([]string{"corn", "fungicide", "lab"})
	c.Add([]string{"swamp", "dodder", "ecology"})

	if c.Docs() != 5 {
		t.Fatalf("docs = %d", c.Docs())
	}
	// Rare tokens weigh more than ubiquitous ones.
	if c.IDF("corn") <= c.IDF("lab") {
		t.Error("rare token should have higher IDF")
	}
	// Identical docs are fully similar.
	if s := c.TFIDFCosine([]string{"corn", "fungicide"}, []string{"corn", "fungicide"}); math.Abs(s-1) > 1e-12 {
		t.Errorf("identical = %v", s)
	}
	// Sharing only a generic token scores lower than sharing a rare one.
	generic := c.TFIDFCosine([]string{"lab", "corn"}, []string{"lab", "dodder"})
	rare := c.TFIDFCosine([]string{"lab", "corn"}, []string{"corn", "dodder"})
	if generic >= rare {
		t.Errorf("generic overlap %v should score below rare overlap %v", generic, rare)
	}
	if c.TFIDFCosine(nil, nil) != 1 {
		t.Error("both empty should be 1")
	}
	if c.TFIDFCosine([]string{"a"}, nil) != 0 {
		t.Error("one empty should be 0")
	}
}

func TestTFIDFEmptyCorpus(t *testing.T) {
	c := NewCorpus()
	if c.IDF("x") != 0 {
		t.Error("empty corpus IDF should be 0")
	}
	if s := c.TFIDFCosine([]string{"a"}, []string{"a"}); s != 0 {
		t.Errorf("zero-weight vectors should score 0, got %v", s)
	}
}
