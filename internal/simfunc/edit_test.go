package simfunc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"corn", "corn", 0},
		{"corn", "cord", 1},
		{"WIS01040", "WIS04059", 3},
		{"日本語", "日本", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if s := LevenshteinSim("", ""); s != 1 {
		t.Errorf("empty/empty = %v", s)
	}
	if s := LevenshteinSim("abc", "abc"); s != 1 {
		t.Errorf("identical = %v", s)
	}
	if s := LevenshteinSim("abc", "xyz"); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
	if s := LevenshteinSim("abcd", "abcx"); s != 0.75 {
		t.Errorf("3/4 = %v", s)
	}
}

// Properties of edit distance: symmetry, identity, triangle inequality,
// and bounds.
func TestLevenshteinProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	sym := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(sym, cfg); err != nil {
		t.Error("symmetry:", err)
	}
	ident := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(ident, cfg); err != nil {
		t.Error("identity:", err)
	}
	tri := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("triangle:", err)
	}
	bounds := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		lo := la - lb
		if lo < 0 {
			lo = -lo
		}
		hi := la
		if lb > hi {
			hi = lb
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(bounds, cfg); err != nil {
		t.Error("bounds:", err)
	}
}

func TestJaro(t *testing.T) {
	if s := Jaro("", ""); s != 1 {
		t.Errorf("empty = %v", s)
	}
	if s := Jaro("a", ""); s != 0 {
		t.Errorf("one empty = %v", s)
	}
	if s := Jaro("MARTHA", "MARHTA"); math.Abs(s-0.944444) > 1e-5 {
		t.Errorf("MARTHA/MARHTA = %v", s)
	}
	if s := Jaro("DIXON", "DICKSONX"); math.Abs(s-0.766667) > 1e-5 {
		t.Errorf("DIXON/DICKSONX = %v", s)
	}
	if s := Jaro("abc", "xyz"); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
}

func TestJaroWinkler(t *testing.T) {
	if s := JaroWinkler("MARTHA", "MARHTA"); math.Abs(s-0.961111) > 1e-5 {
		t.Errorf("MARTHA/MARHTA = %v", s)
	}
	if s := JaroWinkler("abc", "abc"); s != 1 {
		t.Errorf("identical = %v", s)
	}
	// Prefix boost: jw >= jaro always.
	if JaroWinkler("prefixed", "prefixes") < Jaro("prefixed", "prefixes") {
		t.Error("JW should not be below Jaro")
	}
}

func TestJaroWinklerRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNeedlemanWunsch(t *testing.T) {
	if s := NeedlemanWunsch("abc", "abc"); s != 3 {
		t.Errorf("identical = %d", s)
	}
	if s := NeedlemanWunsch("", "abc"); s != -3 {
		t.Errorf("gap cost = %d", s)
	}
	if s := NeedlemanWunsch("abc", "abd"); s != 1 {
		t.Errorf("one mismatch = %d", s)
	}
}

func TestSmithWaterman(t *testing.T) {
	if s := SmithWaterman("xxcornxx", "yycornyy"); s != 8 {
		t.Errorf("local align corn = %d", s)
	}
	if s := SmithWaterman("abc", "xyz"); s != 0 {
		t.Errorf("disjoint = %d", s)
	}
	if s := SmithWaterman("", ""); s != 0 {
		t.Errorf("empty = %d", s)
	}
}

func TestHamming(t *testing.T) {
	if d := Hamming("karolin", "kathrin"); d != 3 {
		t.Errorf("karolin/kathrin = %d", d)
	}
	if d := Hamming("abc", "ab"); d != -1 {
		t.Errorf("unequal lengths should be -1, got %d", d)
	}
	if d := Hamming("", ""); d != 0 {
		t.Errorf("empty = %d", d)
	}
}

func TestExactString(t *testing.T) {
	if ExactString("a", "a") != 1 || ExactString("a", "b") != 0 {
		t.Error("ExactString wrong")
	}
	if ExactStringFold("Corn", "CORN") != 1 {
		t.Error("fold should match case-insensitively")
	}
	if ExactStringFold("corn", "cord") != 0 {
		t.Error("fold should not match different strings")
	}
}
