package simfunc

import "math"

// AffineGap returns the affine-gap alignment score of a and b: match +1,
// mismatch -1, gap opening -1, gap extension -0.5 (raw score). It scores
// "D. M. Smith" vs "David Michael Smith" style truncations better than
// plain edit distance because one long gap is cheaper than many unit
// gaps.
func AffineGap(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 && m == 0 {
		return 0
	}
	const (
		match     = 1.0
		mismatch  = -1.0
		gapOpen   = -1.0
		gapExtend = -0.5
	)
	negInf := math.Inf(-1)
	// M: align i,j; X: gap in b (consume a); Y: gap in a (consume b).
	M := make([][]float64, n+1)
	X := make([][]float64, n+1)
	Y := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		M[i] = make([]float64, m+1)
		X[i] = make([]float64, m+1)
		Y[i] = make([]float64, m+1)
	}
	for i := 1; i <= n; i++ {
		M[i][0] = negInf
		X[i][0] = gapOpen + float64(i-1)*gapExtend
		Y[i][0] = negInf
	}
	for j := 1; j <= m; j++ {
		M[0][j] = negInf
		X[0][j] = negInf
		Y[0][j] = gapOpen + float64(j-1)*gapExtend
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s := mismatch
			if ra[i-1] == rb[j-1] {
				s = match
			}
			M[i][j] = s + max3f(M[i-1][j-1], X[i-1][j-1], Y[i-1][j-1])
			X[i][j] = math.Max(M[i-1][j]+gapOpen, X[i-1][j]+gapExtend)
			Y[i][j] = math.Max(M[i][j-1]+gapOpen, Y[i][j-1]+gapExtend)
		}
	}
	return max3f(M[n][m], X[n][m], Y[n][m])
}

func max3f(a, b, c float64) float64 {
	return math.Max(a, math.Max(b, c))
}

// BagDistance returns the bag distance of a and b: a cheap lower bound on
// edit distance (max of the two one-sided multiset differences), used as
// an edit-distance filter.
func BagDistance(a, b string) int {
	counts := make(map[rune]int)
	for _, r := range a {
		counts[r]++
	}
	for _, r := range b {
		counts[r]--
	}
	var pos, neg int
	for _, c := range counts {
		if c > 0 {
			pos += c
		} else {
			neg -= c
		}
	}
	if pos > neg {
		return pos
	}
	return neg
}

// Tversky returns the Tversky index of two token sets with weights alpha
// (for A\B) and beta (for B\A): |A∩B| / (|A∩B| + α|A−B| + β|B−A|).
// alpha = beta = 1 gives Jaccard; alpha = beta = 0.5 gives Dice. Two
// empty sets are fully similar.
func Tversky(a, b []string, alpha, beta float64) float64 {
	sa, sb := set(a), set(b)
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	onlyA := len(sa) - inter
	onlyB := len(sb) - inter
	den := float64(inter) + alpha*float64(onlyA) + beta*float64(onlyB)
	if den == 0 {
		return 1
	}
	return float64(inter) / den
}

// GeneralizedJaccard returns the generalized Jaccard similarity: tokens
// are soft-matched with Jaro (threshold 0.8) via greedy best-first
// pairing, and the pair similarities replace exact-match counts. It
// handles token-level typos ("fungicide" vs "fungicde") that plain
// Jaccard scores as disjoint.
func GeneralizedJaccard(a, b []string) float64 {
	ta := dedupe(a)
	tb := dedupe(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	const threshold = 0.8
	type cand struct {
		i, j int
		sim  float64
	}
	var cands []cand
	for i, x := range ta {
		for j, y := range tb {
			if s := Jaro(x, y); s >= threshold {
				cands = append(cands, cand{i, j, s})
			}
		}
	}
	// Greedy best-first matching (stable order for determinism).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			if cands[j].sim > cands[j-1].sim {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			} else {
				break
			}
		}
	}
	usedA := make([]bool, len(ta))
	usedB := make([]bool, len(tb))
	var total float64
	matched := 0
	for _, c := range cands {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i] = true
		usedB[c.j] = true
		total += c.sim
		matched++
	}
	union := float64(len(ta) + len(tb) - matched)
	return total / union
}

// dedupe returns distinct tokens preserving first-seen order.
func dedupe(toks []string) []string {
	seen := make(map[string]struct{}, len(toks))
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// PrefixSim returns the normalized length of the common prefix:
// |lcp| / min(len(a), len(b)). Empty strings are fully similar to each
// other and dissimilar to anything else.
func PrefixSim(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	minLen := len(ra)
	if len(rb) < minLen {
		minLen = len(rb)
	}
	if minLen == 0 {
		if len(ra) == 0 && len(rb) == 0 {
			return 1
		}
		return 0
	}
	lcp := 0
	for lcp < minLen && ra[lcp] == rb[lcp] {
		lcp++
	}
	return float64(lcp) / float64(minLen)
}
