package simfunc

import (
	"math"
	"strings"
)

// AbsDiff returns |a-b|, a distance (not a similarity); NaN inputs yield
// NaN so missing values propagate into feature vectors as missing.
func AbsDiff(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	return math.Abs(a - b)
}

// RelDiff returns |a-b| / max(|a|,|b|), in [0,1] for same-sign inputs;
// both-zero yields 0 and NaN inputs propagate.
func RelDiff(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// ExactNumeric reports 1 when a == b, else 0; NaN inputs propagate.
func ExactNumeric(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == b {
		return 1
	}
	return 0
}

// YearDiff returns |yearA - yearB|. It is the feature behind the D3 label
// revision ("matches if the transaction dates are within a difference of a
// few years"). NaN inputs propagate.
func YearDiff(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	return math.Abs(a - b)
}

// Soundex returns the American Soundex code of s (letter + 3 digits) or ""
// for strings with no ASCII letter. Used as a phonetic feature on person
// names (the M3 "individuals involved" signal).
func Soundex(s string) string {
	s = strings.ToUpper(s)
	first := byte(0)
	var digits []byte
	var prev byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 'A' || c > 'Z' {
			prev = 0
			continue
		}
		d := soundexDigit(c)
		if first == 0 {
			first = c
			prev = d
			continue
		}
		if d != 0 && d != prev {
			digits = append(digits, d)
			if len(digits) == 3 {
				break
			}
		}
		// H and W are transparent: they do not reset prev.
		if c != 'H' && c != 'W' {
			prev = d
		}
	}
	if first == 0 {
		return ""
	}
	for len(digits) < 3 {
		digits = append(digits, '0')
	}
	return string(first) + string(digits)
}

func soundexDigit(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return '1'
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return '2'
	case 'D', 'T':
		return '3'
	case 'L':
		return '4'
	case 'M', 'N':
		return '5'
	case 'R':
		return '6'
	}
	return 0
}
