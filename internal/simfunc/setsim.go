package simfunc

import "math"

// set materializes the distinct tokens of toks.
func set(toks []string) map[string]struct{} {
	s := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		s[t] = struct{}{}
	}
	return s
}

// intersectionSize returns |set(a) ∩ set(b)|.
func intersectionSize(a, b []string) (inter, sizeA, sizeB int) {
	sa, sb := set(a), set(b)
	if len(sa) > len(sb) {
		sa, sb = sb, sa
	}
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return inter, len(set(a)), len(set(b))
}

// Jaccard returns |A∩B| / |A∪B| over the distinct tokens. Two empty sets
// are fully similar.
func Jaccard(a, b []string) float64 {
	inter, la, lb := intersectionSize(a, b)
	union := la + lb - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// OverlapSize returns |A∩B|: the raw shared-token count the overlap
// blocker thresholds on (Section 7 step 2).
func OverlapSize(a, b []string) int {
	inter, _, _ := intersectionSize(a, b)
	return inter
}

// OverlapCoefficient returns |A∩B| / min(|A|, |B|) (Section 7 step 3).
// Two empty sets are fully similar; one empty set scores 0.
func OverlapCoefficient(a, b []string) float64 {
	inter, la, lb := intersectionSize(a, b)
	m := la
	if lb < m {
		m = lb
	}
	if m == 0 {
		if la == 0 && lb == 0 {
			return 1
		}
		return 0
	}
	return float64(inter) / float64(m)
}

// Dice returns 2|A∩B| / (|A|+|B|).
func Dice(a, b []string) float64 {
	inter, la, lb := intersectionSize(a, b)
	if la+lb == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(la+lb)
}

// Cosine returns |A∩B| / sqrt(|A|·|B|) over distinct tokens (set cosine).
func Cosine(a, b []string) float64 {
	inter, la, lb := intersectionSize(a, b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(la)*float64(lb))
}

// MongeElkan returns the Monge-Elkan similarity: for each token of a, the
// best Jaro-Winkler match in b, averaged. It is asymmetric; callers wanting
// symmetry should average both directions. Empty a scores 0 against
// non-empty b; two empties score 1.
func MongeElkan(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	total := 0.0
	for _, ta := range a {
		best := 0.0
		for _, tb := range b {
			if s := JaroWinkler(ta, tb); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(a))
}
