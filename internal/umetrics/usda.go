package umetrics

import (
	"fmt"
	"strings"

	"emgo/internal/table"
)

// usdaRecord is everything needed to render one USDA row.
type usdaRecord struct {
	accession  string
	words      []string
	titleExtra string // appended verbatim to the rendered title (NC/NRSP)
	fedNum     string // "" renders as null AwardNumber
	wisNum     string // "" renders as null ProjectNumber
	director   string
	startYear  int
	duration   int
	multistate string
	generic    bool
	genericRaw string // the exact generic title text
}

// directorVariant renders an UMETRICS employee name the way USDA records
// it: usually title case ("Kermicle, J.L"), sometimes left uppercase.
func (g *generator) directorVariant(name string) string {
	if g.rng.Float64() < 0.3 {
		return name // keep UMETRICS's uppercase form
	}
	comma := strings.IndexByte(name, ',')
	if comma <= 0 {
		return name
	}
	last := name[:comma]
	return strings.ToUpper(last[:1]) + strings.ToLower(last[1:]) + name[comma:]
}

// buildUSDA builds the USDAAwardMatching table and records the ground
// truth for every generated pair.
func (g *generator) buildUSDA() (*table.Table, error) {
	t := table.New("USDAAwardMatching", USDASchema())
	var records []usdaRecord

	// Per-grant USDA records (the true matches).
	for _, gr := range g.grants {
		director := g.directorVariant(gr.employees[0])
		for k := 0; k < gr.usdaRecs; k++ {
			heavy := gr.class == ClassFederal || gr.class == ClassState
			words := g.usdaTitleVariant(gr.words, heavy)
			if gr.class == ClassState && len(gr.words) == 2 && g.rng.Float64() < 0.7 {
				// Some state projects are recorded under entirely
				// different titles in the two systems ("the same research
				// project can have different research titles recorded in
				// UMETRICS and at universities"): blocking loses the pair
				// and the blocking debugger cannot see it — only the
				// project-number rule of Section 10 recovers it.
				words = []string{g.rare(), g.rare()}
			}
			rec := usdaRecord{
				accession: g.newAccession(),
				words:     words,
				director:  director,
				startYear: gr.startYear + k, // annual reports
				// End dates drift a year either way between the systems.
				duration: gr.duration - k + g.rng.Intn(3) - 1,
			}
			switch gr.class {
			case ClassFederal:
				rec.fedNum = gr.fedNum
				rec.wisNum = gr.wisNum
			case ClassState, ClassTitle, ClassTitleVeto:
				rec.wisNum = gr.wisNum
			}
			records = append(records, rec)
			g.truth.AddMatch(gr.uan(), rec.accession, gr.class)
		}
		// Lookalike sibling (trap): a different project in the same
		// series — same director, near-identical title, a comparable but
		// different identifier, shifted years. NOT a match.
		if gr.trap {
			sib := usdaRecord{
				accession: g.newAccession(),
				words:     g.trapTitleVariant(gr.words),
				director:  director,
				startYear: gr.startYear + g.rng.Intn(3),
				duration:  gr.duration + g.rng.Intn(2),
			}
			if gr.class == ClassFederal {
				sib.fedNum = g.newFedNum(sib.startYear)
			} else {
				sib.wisNum = g.newWisNum()
			}
			records = append(records, sib)
			g.truth.AddTrap(gr.uan(), sib.accession, ClassTrap)
		}
		// Far-dated lookalike: same series, no comparable identifier, a
		// project window years away (the D3 date criterion is the only
		// way to call it, and the negative rule cannot veto it).
		if gr.trapFar {
			sib := usdaRecord{
				accession: g.newAccession(),
				words:     g.trapTitleVariant(gr.words),
				director:  director,
				startYear: gr.startYear + 3 + g.rng.Intn(3),
				duration:  gr.duration,
				wisNum:    g.newWisNum(),
			}
			records = append(records, sib)
			g.truth.AddTrap(gr.uan(), sib.accession, ClassTrap)
		}
		// NC/NRSP multistate sibling (the D1 pathology): same title plus
		// the multistate suffix; even the experts could not call it.
		if gr.ncnrsp {
			sib := usdaRecord{
				accession:  g.newAccession(),
				words:      gr.words,
				titleExtra: " NC/NRSP",
				director:   director,
				startYear:  gr.startYear,
				duration:   gr.duration,
				multistate: fmt.Sprintf("NC-%03d", g.rng.Intn(1000)),
			}
			records = append(records, sib)
			g.truth.AddHard(gr.uan(), sib.accession, ClassNCNRSP)
		}
	}

	// Generic-title USDA records; cross pairs with same-titled generic
	// UMETRICS records are undecidable.
	for i := 0; i < g.p.GenericUSDA; i++ {
		base := genericTitles[g.rng.Intn(len(genericTitles))]
		rec := usdaRecord{
			accession:  g.newAccession(),
			generic:    true,
			genericRaw: base,
			director:   g.directorVariant(g.employeesFor()[0]),
			startYear:  1997 + g.rng.Intn(14),
			duration:   2 + g.rng.Intn(3),
			wisNum:     g.newWisNum(),
		}
		records = append(records, rec)
		for _, um := range g.genericUM {
			if um.title == strings.ToLower(base) {
				g.truth.AddHard(um.id, rec.accession, ClassGeneric)
			}
		}
	}

	// USDA-only filler: state agricultural experiment station projects
	// and federal grants outside the UMETRICS window.
	if len(records) > g.p.USDARows {
		return nil, fmt.Errorf("umetrics: %d USDA records exceed target %d", len(records), g.p.USDARows)
	}
	for i := 0; len(records) < g.p.USDARows; i++ {
		rec := usdaRecord{
			accession: g.newAccession(),
			words:     g.title(false),
			director:  g.directorVariant(g.employeesFor()[0]),
			startYear: 1997 + g.rng.Intn(14),
			duration:  2 + g.rng.Intn(4),
		}
		if i%5 < 3 {
			rec.wisNum = g.newWisNum() // state project, no award number
		} else {
			rec.fedNum = g.newFedNum(rec.startYear)
		}
		records = append(records, rec)
	}

	for i := range records {
		t.MustAppend(g.usdaRow(&records[i]))
	}
	return t, nil
}

// usdaRow renders one 78-column USDA row.
func (g *generator) usdaRow(rec *usdaRecord) table.Row {
	schema := USDASchema()
	row := make(table.Row, schema.Len())
	for i := range row {
		row[i] = table.Null(schema.Field(i).Kind)
	}
	set := func(col string, v table.Value) {
		j, ok := schema.Lookup(col)
		if !ok {
			panic("umetrics: unknown USDA column " + col)
		}
		row[j] = v
	}

	title := renderTitleCase(rec.words) + rec.titleExtra
	agency := sponsoringAgencies[g.rng.Intn(len(sponsoringAgencies))]
	mechanism := fundingMechanisms[g.rng.Intn(len(fundingMechanisms))]
	if rec.fedNum == "" {
		mechanism = "State Funding"
		agency = "State Agricultural Experiment Station"
	}
	if rec.generic {
		title = rec.genericRaw
	}

	set("AccessionNumber", table.S(rec.accession))
	set("ProjectTitle", table.S(title))
	set("SponsoringAgency", table.S(agency))
	set("FundingMechanism", table.S(mechanism))
	if rec.fedNum != "" {
		set("AwardNumber", table.S(rec.fedNum))
	}
	set("InitialAwardFiscalYear", table.I(int64(rec.startYear)))
	set("RecipientOrganization", table.S("SAES - UNIVERSITY OF WISCONSIN"))
	if g.rng.Float64() < 0.4 {
		set("RecipientDUNS", table.S(fmt.Sprintf("%09d", 100000000+g.rng.Intn(900000000))))
	}
	set("ProjectDirector", table.S(rec.director))
	if rec.multistate != "" {
		set("MultistateProjectNumber", table.S(rec.multistate))
	}
	if rec.wisNum != "" {
		set("ProjectNumber", table.S(rec.wisNum))
	}
	endYear := rec.startYear + rec.duration
	set("ProjectStartDate", date(rec.startYear, 1+g.rng.Intn(12), 1+g.rng.Intn(28)))
	set("ProjectEndDate", date(endYear, 1+g.rng.Intn(12), 1+g.rng.Intn(28)))
	set("ProjectStartFiscalYear", table.I(int64(rec.startYear)))

	// A sparse scattering of administrative fields; most stay null, as in
	// the real extract.
	set("PerformingOrganization", table.S("UNIVERSITY OF WISCONSIN"))
	set("PerformingState", table.S("WISCONSIN"))
	set("StatusCode", table.S([]string{"TERMINATED", "ACTIVE", "COMPLETE"}[g.rng.Intn(3)]))
	set("GrantYear", table.I(int64(rec.startYear)))
	if rec.fedNum != "" {
		set("Financial: USDA Contracts, Grants, Coop Agmt",
			table.F(float64(25000+g.rng.Intn(400000))))
	}
	fyCol := fmt.Sprintf("FY%dFunds", clampYear(rec.startYear))
	set(fyCol, table.F(float64(10000+g.rng.Intn(150000))))
	return row
}

// clampYear keeps fiscal-year column references inside FY1997..FY2012.
func clampYear(y int) int {
	if y < 1997 {
		return 1997
	}
	if y > 2012 {
		return 2012
	}
	return y
}
