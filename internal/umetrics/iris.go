package umetrics

import (
	"emgo/internal/block"
	"emgo/internal/rules"
	"emgo/internal/table"
)

// IRIS reproduces the rule-based matcher deployed in the UMETRICS
// repository (IRIS is the organization that manages UMETRICS): exact,
// case-sensitive, un-normalized string equality between the raw
// UniqueAwardNumber suffix and the USDA award number or project number.
// Because it never normalizes formatting (case, stray spaces), it misses
// matches our cleaned-up rules catch — the accuracy gap the whole case
// study set out to close ("the accuracy remains unsatisfactory").
type IRIS struct {
	engine *rules.Engine
}

// NewIRIS binds the IRIS rules to a pair of projected tables. The USDA
// table must carry ProjectNumber.
func NewIRIS(um, usda *table.Table) (*IRIS, error) {
	rawEq := func(name, usdaCol string) (rules.Rule, error) {
		return rules.NewEqual(name, um, "AwardNumber", RawSuffix,
			usda, usdaCol, nil, rules.Match)
	}
	r1, err := rawEq("iris_award", "AwardNumber")
	if err != nil {
		return nil, err
	}
	r2, err := rawEq("iris_project", "ProjectNumber")
	if err != nil {
		return nil, err
	}
	return &IRIS{engine: rules.NewEngine(r1, r2)}, nil
}

// Match returns IRIS's predicted matches over the full Cartesian product.
func (ir *IRIS) Match(um, usda *table.Table) *block.CandidateSet {
	return ir.engine.SureMatches(um, usda)
}
