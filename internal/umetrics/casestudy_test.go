package umetrics

import (
	"testing"

	"emgo/internal/label"
)

// runStudy caches one scaled case-study run across tests (it is the
// expensive fixture).
var studyReport *Report

func caseStudy(t *testing.T) *Report {
	t.Helper()
	if studyReport != nil {
		return studyReport
	}
	if testing.Short() {
		t.Skip("case study is expensive; skipped with -short")
	}
	rep, err := Run(TestConfig(0.3))
	if err != nil {
		t.Fatal(err)
	}
	studyReport = rep
	return rep
}

func TestCaseStudyBlockingShape(t *testing.T) {
	rep := caseStudy(t)
	t.Logf("cartesian=%d C1=%d C2=%d C3=%d C=%d sweep=%v",
		rep.CartesianPairs, rep.C1, rep.C2, rep.C3, rep.ConsolidatedC, rep.OverlapSweep)
	if rep.ConsolidatedC == 0 {
		t.Fatal("empty candidate set")
	}
	// Blocking must cut the Cartesian product by orders of magnitude.
	if rep.ConsolidatedC*50 > rep.CartesianPairs {
		t.Fatalf("blocking too weak: %d of %d", rep.ConsolidatedC, rep.CartesianPairs)
	}
	// The sweep must be monotone: K=1 >> K=3 >= K=7.
	if !(rep.OverlapSweep[1] > rep.OverlapSweep[3] && rep.OverlapSweep[3] >= rep.OverlapSweep[7]) {
		t.Fatalf("sweep not monotone: %v", rep.OverlapSweep)
	}
	// Both title blockers contribute uniquely (footnote 3).
	if rep.C2MinusC3 == 0 || rep.C3MinusC2 == 0 {
		t.Fatalf("C2/C3 should each contribute: C2-C3=%d C3-C2=%d", rep.C2MinusC3, rep.C3MinusC2)
	}
	// The pairs a user eyeballs first are not matches (the Section 7
	// stopping criterion) ...
	if rep.DebuggerMatchesTop10 > 1 {
		t.Fatalf("top debugger pairs should not be matches: %d of 10", rep.DebuggerMatchesTop10)
	}
	// ... but blocking DID silently lose some true matches (the drifted
	// short-title pairs Section 10 later recovers with the new rule).
	t.Logf("debugger: %d true matches hidden in top %d (top-10: %d)",
		rep.DebuggerMatches, rep.DebuggerTop, rep.DebuggerMatchesTop10)
}

func TestCaseStudyLabelingShape(t *testing.T) {
	rep := caseStudy(t)
	t.Logf("rounds=%v crossMismatch=%d flipped=%d loocv=%d revisions=%d final=%+v",
		rep.RoundCounts, rep.CrossMismatch, rep.CrossFlipped, rep.LOOCVFlagged,
		rep.LabelRevisions, rep.FinalLabels)
	if rep.FinalLabels.Yes == 0 || rep.FinalLabels.No == 0 {
		t.Fatal("labels must include both classes")
	}
	if rep.FinalLabels.Unsure == 0 {
		t.Fatal("expected some Unsure labels (hard pairs + hesitation)")
	}
	// Non-matches dominate, as in the paper (68/200/32).
	if rep.FinalLabels.No <= rep.FinalLabels.Yes {
		t.Fatalf("expected more No than Yes: %+v", rep.FinalLabels)
	}
	// The cross-check episode found disagreements.
	if rep.CrossMismatch == 0 {
		t.Fatal("expected labeler disagreements in round 1")
	}
}

func TestCaseStudyMatcherSelection(t *testing.T) {
	rep := caseStudy(t)
	t.Logf("initial best=%s F1=%.3f withCase best=%s F1=%.3f",
		rep.BestInitial, rep.CVInitial[0].F1, rep.BestFinal, rep.CVWithCase[0].F1)
	for _, r := range rep.CVInitial {
		t.Logf("  initial %-20s P=%.3f R=%.3f F1=%.3f", r.Name, r.Precision, r.Recall, r.F1)
	}
	for _, r := range rep.CVWithCase {
		t.Logf("  withcase %-20s P=%.3f R=%.3f F1=%.3f", r.Name, r.Precision, r.Recall, r.F1)
	}
	if len(rep.CVInitial) != 6 || len(rep.CVWithCase) != 6 {
		t.Fatal("expected 6 matchers compared")
	}
	// The case-insensitive features must improve the best matcher (the
	// Section 9 debugging fix).
	if rep.CVWithCase[0].F1 <= rep.CVInitial[0].F1 {
		t.Fatalf("case features should improve F1: %.3f -> %.3f",
			rep.CVInitial[0].F1, rep.CVWithCase[0].F1)
	}
	if rep.CVWithCase[0].F1 < 0.8 {
		t.Fatalf("final matcher too weak: F1=%.3f", rep.CVWithCase[0].F1)
	}
}

func TestCaseStudyWorkflowTotals(t *testing.T) {
	rep := caseStudy(t)
	t.Logf("fig8: M1inC=%d learned=%d total=%d", rep.M1InC, rep.LearnedFig8, rep.TotalFig8)
	t.Logf("rule2: cartesian=%d inC=%d predicted=%d", rep.Rule2Cartesian, rep.Rule2InC, rep.Rule2Predicted)
	t.Logf("fig9: sure=%d/%d cand=%d/%d learned=%d/%d total=%d",
		rep.SureOriginal, rep.SureExtra, rep.CandOriginal, rep.CandExtra,
		rep.LearnedOriginal, rep.LearnedExtra, rep.TotalFig9)
	t.Logf("fig10: vetoed=%d/%d final=%d", rep.VetoedOriginal, rep.VetoedExtra, rep.FinalMatches)

	if rep.M1InC == 0 {
		t.Fatal("M1 pairs must appear in C")
	}
	if rep.LearnedFig8 == 0 {
		t.Fatal("the learner must find matches beyond M1")
	}
	// The discovered rule matters: blocking lost some rule-2 pairs, and
	// the matcher caught most of the kept ones (the Section 10 analysis).
	if rep.Rule2Cartesian == 0 || rep.Rule2InC > rep.Rule2Cartesian {
		t.Fatalf("rule2 accounting wrong: %d in C of %d", rep.Rule2InC, rep.Rule2Cartesian)
	}
	if rep.Rule2Predicted > rep.Rule2InC {
		t.Fatal("predicted rule2 pairs cannot exceed those in C")
	}
	// Figure 9 sure matches must exceed the Figure 8 M1-only count.
	if rep.SureOriginal <= rep.M1InC {
		t.Fatalf("sure matches should grow with rule 2: %d vs %d", rep.SureOriginal, rep.M1InC)
	}
	if rep.SureExtra == 0 {
		t.Fatal("extra slice should contribute sure matches")
	}
	// The negative rule vetoes a substantial share of learned matches.
	if rep.VetoedOriginal == 0 {
		t.Fatal("negative rules should veto some learned matches")
	}
	if rep.FinalMatches >= rep.TotalFig9 {
		t.Fatal("final matches must shrink after vetoes")
	}
	if len(rep.Matches) != rep.FinalMatches {
		t.Fatalf("ID pairs %d != final matches %d", len(rep.Matches), rep.FinalMatches)
	}
}

func TestCaseStudyAccuracyShape(t *testing.T) {
	rep := caseStudy(t)
	t.Logf("est ours first: P=%s R=%s", rep.EstOursFirst.Precision, rep.EstOursFirst.Recall)
	t.Logf("est ours all:   P=%s R=%s", rep.EstOursAll.Precision, rep.EstOursAll.Recall)
	t.Logf("est iris all:   P=%s R=%s", rep.EstIRISAll.Precision, rep.EstIRISAll.Recall)
	t.Logf("est final:      P=%s R=%s", rep.EstFinal.Precision, rep.EstFinal.Recall)
	t.Logf("gold iris=%v", rep.GoldIRIS)
	t.Logf("gold fig8=%v", rep.GoldFig8)
	t.Logf("gold fig9=%v", rep.GoldFig9)
	t.Logf("gold final=%v", rep.GoldFinal)
	t.Logf("eval labels=%+v irisOutsideE=%d", rep.EvalLabels, rep.IRISOutsideE)

	// The paper's headline shape, on gold labels:
	// 1. IRIS: perfect precision, poor recall.
	if p := rep.GoldIRIS.Precision(); p < 0.999 {
		t.Errorf("IRIS precision should be ~1, got %.3f", p)
	}
	if r := rep.GoldIRIS.Recall(); r < 0.45 || r > 0.85 {
		t.Errorf("IRIS recall should be mediocre (~0.65), got %.3f", r)
	}
	// 2. Learning workflow: much higher recall, lower precision. (The
	// bands here are loose — this test runs at 0.3 scale where the tiny
	// training set is noisy; the tight full-scale bands live in the root
	// experiment harness.)
	if r := rep.GoldFig9.Recall(); r < 0.85 {
		t.Errorf("Fig9 recall should be high, got %.3f", r)
	}
	if rep.GoldFig9.Recall() <= rep.GoldIRIS.Recall() {
		t.Error("learning workflow must beat IRIS recall")
	}
	if p := rep.GoldFig9.Precision(); p > 0.99 {
		t.Errorf("Fig9 precision should show the trap false positives, got %.3f", p)
	}
	// 3. Negative rules restore precision at a small recall cost.
	if rep.GoldFinal.Precision() < rep.GoldFig9.Precision() {
		t.Error("negative rules must not hurt precision")
	}
	if p := rep.GoldFinal.Precision(); p < 0.9 {
		t.Errorf("final precision should be ~0.97, got %.3f", p)
	}
	if r := rep.GoldFinal.Recall(); r < 0.85 {
		t.Errorf("final recall should stay high, got %.3f", r)
	}
	if rep.GoldFinal.Recall() > rep.GoldFig9.Recall() {
		t.Error("vetoes cannot raise recall")
	}
}

func TestCaseStudyEstimatesTrackGold(t *testing.T) {
	rep := caseStudy(t)
	// The Corleone interval should bracket (or nearly bracket) the gold
	// value; allow slack for sampling error at test scale.
	within := func(iv, gold float64) bool {
		return gold >= iv-0.15 && gold <= iv+0.15
	}
	if !within(rep.EstFinal.Precision.Point, rep.GoldFinal.Precision()) {
		t.Errorf("final precision estimate %.3f far from gold %.3f",
			rep.EstFinal.Precision.Point, rep.GoldFinal.Precision())
	}
	if !within(rep.EstIRISAll.Recall.Point, rep.GoldIRIS.Recall()) {
		t.Errorf("IRIS recall estimate %.3f far from gold %.3f",
			rep.EstIRISAll.Recall.Point, rep.GoldIRIS.Recall())
	}
	// More labels must not widen the interval.
	if rep.EstOursAll.Precision.Width() > rep.EstOursFirst.Precision.Width()+1e-9 {
		t.Error("second estimation round should narrow the precision interval")
	}
	// The evaluation sample has some unsures, which estimation ignores.
	if rep.EvalLabels.Unsure == 0 {
		t.Log("note: no unsure labels in evaluation sample at this scale")
	}
}

func TestCaseStudyFigure2Stats(t *testing.T) {
	rep := caseStudy(t)
	if len(rep.TableStats) != 7 {
		t.Fatalf("expected 7 tables, got %d", len(rep.TableStats))
	}
	for _, ts := range rep.TableStats {
		if ts.Rows == 0 || ts.Cols == 0 {
			t.Errorf("table %s has %dx%d", ts.Name, ts.Rows, ts.Cols)
		}
	}
}

func TestCaseStudyLabelCountsConsistent(t *testing.T) {
	rep := caseStudy(t)
	want := 0
	for range rep.RoundCounts {
		want++
	}
	if want != len(TestConfig(0.3).SampleRounds) {
		t.Fatalf("round counts = %d", len(rep.RoundCounts))
	}
	// Counts are cumulative and non-decreasing.
	prev := label.Counts{}
	for _, c := range rep.RoundCounts {
		if c.Total() < prev.Total() {
			t.Fatal("cumulative counts decreased")
		}
		prev = c
	}
}
