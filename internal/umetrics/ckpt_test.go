package umetrics

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"emgo/internal/ckpt"
)

// studyTestConfig is the shared small-scale configuration; the golden
// report is computed once per test binary because a full study run is
// the expensive part of every resume test.
func studyTestConfig() Config { return TestConfig(0.15) }

var goldenReport *Report

func golden(t *testing.T) *Report {
	t.Helper()
	if testing.Short() {
		t.Skip("expensive; skipped with -short")
	}
	if goldenReport == nil {
		rep, err := Run(studyTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		goldenReport = rep
	}
	return goldenReport
}

func openStudyStore(t *testing.T, dir string) *ckpt.Store {
	t.Helper()
	store, err := ckpt.Open(dir, studyTestConfig().Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// reportsEqual compares two reports field by field so a failure names
// the diverging section instead of dumping two multi-KB structs.
func reportsEqual(t *testing.T, want, got *Report, context string) {
	t.Helper()
	wv := reflect.ValueOf(*want)
	gv := reflect.ValueOf(*got)
	for i := 0; i < wv.NumField(); i++ {
		name := wv.Type().Field(i).Name
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("%s: report field %s diverges", context, name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
}

// TestCaseStudyResumeEquivalence kills the study (via the haltAfter
// hook) right after each checkpointed section in turn, resumes it from
// the store, and asserts the resumed run's report is deeply identical
// to an uncheckpointed golden run — the tentpole property: a crash plus
// a resume is indistinguishable from a run that never crashed.
func TestCaseStudyResumeEquivalence(t *testing.T) {
	want := golden(t)
	for _, section := range []string{"blocking", "labeling", "matching", "updating", "estimating"} {
		t.Run(section, func(t *testing.T) {
			dir := t.TempDir()

			halted := studyTestConfig()
			halted.Checkpoints = openStudyStore(t, dir)
			halted.haltAfter = section
			if _, err := Run(halted); !errors.Is(err, errHalted) {
				t.Fatalf("halted run: err = %v, want errHalted", err)
			}

			// A fresh store handle simulates the restarted process.
			resumed := studyTestConfig()
			resumed.Checkpoints = openStudyStore(t, dir)
			got, err := Run(resumed)
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, want, got, "resume after "+section)
		})
	}
}

// TestCaseStudyResumeFullStore resumes from a store holding every
// section checkpoint: only generate/preprocess/refining recompute, and
// the report still matches the golden run exactly.
func TestCaseStudyResumeFullStore(t *testing.T) {
	want := golden(t)
	dir := t.TempDir()

	full := studyTestConfig()
	full.Checkpoints = openStudyStore(t, dir)
	first, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, want, first, "checkpointed run")

	again := studyTestConfig()
	again.Checkpoints = openStudyStore(t, dir)
	got, err := Run(again)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, want, got, "full-store resume")
}

// TestCaseStudyResumeCorruptArtifact flips bytes in one checkpoint on
// disk: the resumed run must quarantine it, recompute that section, and
// still converge to the golden report.
func TestCaseStudyResumeCorruptArtifact(t *testing.T) {
	want := golden(t)
	dir := t.TempDir()

	full := studyTestConfig()
	full.Checkpoints = openStudyStore(t, dir)
	if _, err := Run(full); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, ckptLabeling)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := studyTestConfig()
	resumed.Checkpoints = openStudyStore(t, dir)
	got, err := Run(resumed)
	if err != nil {
		t.Fatalf("corrupt checkpoint must fall back to recomputing: %v", err)
	}
	reportsEqual(t, want, got, "resume with corrupt labeling artifact")

	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("corrupt artifact not quarantined: %v (%d entries)", err, len(entries))
	}
}

// TestCaseStudyFingerprintInvalidatesStore reopens the store under a
// changed Config fingerprint: every checkpoint is discarded and the run
// recomputes from scratch rather than resuming foreign state.
func TestCaseStudyFingerprintInvalidatesStore(t *testing.T) {
	want := golden(t)
	dir := t.TempDir()

	full := studyTestConfig()
	full.Checkpoints = openStudyStore(t, dir)
	if _, err := Run(full); err != nil {
		t.Fatal(err)
	}

	changed := studyTestConfig()
	changed.Seed++
	store, err := ckpt.Open(dir, changed.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if store.Discarded() == "" {
		t.Fatal("fingerprint change must discard the old manifest")
	}
	if len(store.Names()) != 0 {
		t.Fatalf("foreign checkpoints still visible: %v", store.Names())
	}
	if changed.Fingerprint() == studyTestConfig().Fingerprint() {
		t.Fatal("seed change must change the fingerprint")
	}

	// And the original config still reproduces golden from the now-empty
	// store.
	fresh := studyTestConfig()
	fresh.Checkpoints = store
	got, err := Run(fresh)
	if err != nil {
		t.Fatal(err)
	}
	_ = want
	if got.FinalMatches != want.FinalMatches || len(got.Matches) != len(want.Matches) {
		t.Fatal("recomputed run diverges from golden")
	}
}

// TestCountedSource pins the stream-position bookkeeping the resume
// logic depends on.
func TestCountedSource(t *testing.T) {
	a := newCountedSource(42)
	for i := 0; i < 10; i++ {
		a.Int63()
	}
	target := a.counts

	b := newCountedSource(42)
	if !b.canReach(target) {
		t.Fatal("fresh source must reach a pure-Int63 position")
	}
	b.ffwd(target)
	if a.Int63() != b.Int63() {
		t.Fatal("fast-forwarded stream diverges")
	}

	// A stream already past the target cannot rewind.
	c := newCountedSource(42)
	for i := 0; i < 20; i++ {
		c.Int63()
	}
	if c.canReach(target) {
		t.Fatal("cannot rewind a stream")
	}

	// Mixed-method deltas are ambiguous and must refuse.
	d := newCountedSource(42)
	mixed := rngCounts{Int63: 5, Uint64: 5}
	if d.canReach(mixed) {
		t.Fatal("interleaved draws must refuse fast-forward")
	}
	d.Int63()
	d.Uint64()
	if !d.canReach(rngCounts{Int63: 1, Uint64: 7}) {
		t.Fatal("single-method delta from a mixed position is replayable")
	}
}
