package umetrics

import (
	"fmt"
	"io"
	"sort"
)

// paperRef holds the number the paper reports for one artifact, for
// side-by-side rendering.
type paperRef struct {
	label string
	paper string
	ours  string
}

// Write renders the report section by section, next to the numbers the
// paper states, in the order the paper presents them.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "=== Section 4 / Figure 2: table statistics ===\n")
	fmt.Fprintf(w, "%-34s %9s %5s\n", "table", "rows", "cols")
	for _, ts := range r.TableStats {
		fmt.Fprintf(w, "%-34s %9d %5d\n", ts.Name, ts.Rows, ts.Cols)
	}

	fmt.Fprintf(w, "\n=== Section 6: pre-processing ===\n")
	fmt.Fprintf(w, "UniqueAwardNumber is key: %v, AccessionNumber is key: %v\n",
		r.Preprocess.UMETRICSKeyOK, r.Preprocess.USDAKeyOK)
	fmt.Fprintf(w, "employee FK violations vs original award table: %d (the missing-records foreshadow)\n",
		r.Preprocess.EmployeeFKViolations)
	fmt.Fprintf(w, "vendor OrgName/DUNS values shared with USDA: %d/%d (paper: none — table ruled out)\n",
		r.VendorOrgOverlap, r.VendorDUNSOverlap)

	rows := []paperRef{
		{"Cartesian product", "~2.56M", fmt.Sprint(r.CartesianPairs)},
		{"C1 (attr-equivalence on M1)", "(subsumed in C)", fmt.Sprint(r.C1)},
		{"C2 (overlap, K=3)", "2937", fmt.Sprint(r.C2)},
		{"C3 (overlap coefficient, 0.7)", "1375", fmt.Sprint(r.C3)},
		{"|C2 ∩ C3|", "1140", fmt.Sprint(r.C2AndC3)},
		{"|C2 − C3|", "1797", fmt.Sprint(r.C2MinusC3)},
		{"|C3 − C2|", "235", fmt.Sprint(r.C3MinusC2)},
		{"consolidated C", "3177", fmt.Sprint(r.ConsolidatedC)},
	}
	var ks []int
	for k := range r.OverlapSweep {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		paper := ""
		switch k {
		case 1:
			paper = "~200K"
		case 3:
			paper = "2937"
		case 7:
			paper = "few hundred"
		}
		rows = append(rows, paperRef{fmt.Sprintf("overlap sweep K=%d", k), paper, fmt.Sprint(r.OverlapSweep[k])})
	}
	rows = append(rows,
		paperRef{"debugger: matches in top-10", "0 (user saw none)", fmt.Sprint(r.DebuggerMatchesTop10)},
		paperRef{"debugger: matches in top-100", "0 visible", fmt.Sprint(r.DebuggerMatches)},
	)
	fmt.Fprintf(w, "\n=== Section 7: blocking ===\n")
	writeRefs(w, rows)

	fmt.Fprintf(w, "\n=== Section 8: sampling and labeling ===\n")
	for i, c := range r.RoundCounts {
		fmt.Fprintf(w, "after round %d: %d Yes / %d No / %d Unsure\n", i+1, c.Yes, c.No, c.Unsure)
	}
	writeRefs(w, []paperRef{
		{"cross-check mismatches", "22", fmt.Sprint(r.CrossMismatch)},
		{"labels flipped after meeting", "4", fmt.Sprint(r.CrossFlipped)},
		{"LOOCV-flagged pairs", "(D1-D3)", fmt.Sprint(r.LOOCVFlagged)},
		{"labels revised after discussion", "(D1-D3)", fmt.Sprint(r.LabelRevisions)},
		{"final labels", "68/200/32", fmt.Sprintf("%d/%d/%d", r.FinalLabels.Yes, r.FinalLabels.No, r.FinalLabels.Unsure)},
	})

	fmt.Fprintf(w, "\n=== Section 9: matcher selection (5-fold CV) ===\n")
	fmt.Fprintf(w, "initial features:\n")
	for _, cv := range r.CVInitial {
		fmt.Fprintf(w, "  %-20s P=%.3f R=%.3f F1=%.3f\n", cv.Name, cv.Precision, cv.Recall, cv.F1)
	}
	fmt.Fprintf(w, "after case-insensitive feature fix:\n")
	for _, cv := range r.CVWithCase {
		fmt.Fprintf(w, "  %-20s P=%.3f R=%.3f F1=%.3f\n", cv.Name, cv.Precision, cv.Recall, cv.F1)
	}
	writeRefs(w, []paperRef{
		{"initial best", "random forest", r.BestInitial},
		{"best after fix", "decision tree (97P/95R/94.7F1)", fmt.Sprintf("%s (P=%.3f R=%.3f F1=%.3f)",
			r.BestFinal, r.CVWithCase[0].Precision, r.CVWithCase[0].Recall, r.CVWithCase[0].F1)},
	})

	fmt.Fprintf(w, "\n=== Figure 8: initial workflow ===\n")
	writeRefs(w, []paperRef{
		{"M1 sure pairs in C", "210", fmt.Sprint(r.M1InC)},
		{"matcher predictions", "807", fmt.Sprint(r.LearnedFig8)},
		{"total matches", "1017", fmt.Sprint(r.TotalFig8)},
	})

	fmt.Fprintf(w, "\n=== Section 10 / Figure 9: handling complications ===\n")
	writeRefs(w, []paperRef{
		{"rule-2 pairs in Cartesian", "473", fmt.Sprint(r.Rule2Cartesian)},
		{"rule-2 pairs kept by blocking", "411", fmt.Sprint(r.Rule2InC)},
		{"rule-2 pairs matcher predicted", "397", fmt.Sprint(r.Rule2Predicted)},
		{"sure matches C1 (original)", "683", fmt.Sprint(r.SureOriginal)},
		{"sure matches D1 (extra)", "55", fmt.Sprint(r.SureExtra)},
		{"candidates C (original)", "2556", fmt.Sprint(r.CandOriginal)},
		{"candidates D (extra)", "1220", fmt.Sprint(r.CandExtra)},
		{"learned R1 (original)", "399", fmt.Sprint(r.LearnedOriginal)},
		{"learned R2 (extra)", "0", fmt.Sprint(r.LearnedExtra)},
		{"Figure 9 total", "1137", fmt.Sprint(r.TotalFig9)},
	})

	fmt.Fprintf(w, "\n=== Section 11: accuracy estimation (Corleone) ===\n")
	writeRefs(w, []paperRef{
		{"ours P (first round)", "(79.6%, 86.0%)", r.EstOursFirst.Precision.String()},
		{"ours R (first round)", "(96.8%, 99.4%)", r.EstOursFirst.Recall.String()},
		{"ours P (all rounds)", "(75.2%, 80.3%)", r.EstOursAll.Precision.String()},
		{"ours R (all rounds)", "(98.1%, 99.6%)", r.EstOursAll.Recall.String()},
		{"IRIS P", "(100%, 100%)", r.EstIRISAll.Precision.String()},
		{"IRIS R", "(65.1%, 71.8%)", r.EstIRISAll.Recall.String()},
		{"eval labels Y/N/U", "92/292/16", fmt.Sprintf("%d/%d/%d", r.EvalLabels.Yes, r.EvalLabels.No, r.EvalLabels.Unsure)},
		{"IRIS pairs outside E", "1 (terminated award)", fmt.Sprint(r.IRISOutsideE)},
	})

	fmt.Fprintf(w, "\n=== Section 12 / Figure 10: negative rules ===\n")
	writeRefs(w, []paperRef{
		{"vetoed (original/extra)", "292 total", fmt.Sprintf("%d/%d", r.VetoedOriginal, r.VetoedExtra)},
		{"final matches", "845", fmt.Sprint(r.FinalMatches)},
		{"final P", "(96.7%, 98.8%)", r.EstFinal.Precision.String()},
		{"final R", "(94.2%, 97.1%)", r.EstFinal.Recall.String()},
	})

	fmt.Fprintf(w, "\n=== Section 10: match multiplicity (original slice, final matches) ===\n")
	fmt.Fprintf(w, "%s across %d entity clusters\n", r.MatchDegrees, r.EntityClusters)
	fmt.Fprintf(w, "(the paper's teams decided the one-to-many tail was acceptable and kept record-level matching)\n")

	fmt.Fprintf(w, "\n=== Gold accuracy vs generator ground truth (not available to the paper) ===\n")
	fmt.Fprintf(w, "IRIS:      %v\n", r.GoldIRIS)
	fmt.Fprintf(w, "Figure 8:  %v\n", r.GoldFig8)
	fmt.Fprintf(w, "Figure 9:  %v\n", r.GoldFig9)
	fmt.Fprintf(w, "Figure 10: %v\n", r.GoldFinal)
}

func writeRefs(w io.Writer, rows []paperRef) {
	fmt.Fprintf(w, "%-36s %-32s %s\n", "artifact", "paper", "this run")
	for _, row := range rows {
		fmt.Fprintf(w, "%-36s %-32s %s\n", row.label, row.paper, row.ours)
	}
}
