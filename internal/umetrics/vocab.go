// Package umetrics implements the case-study domain of the paper: the
// seven UMETRICS/USDA tables, a seeded synthetic data generator calibrated
// to the structural properties the paper reports (Figure 2 sizes, award
// number formats, title distributions, one-to-many sub-award structure,
// missing values, the NC/NRSP pathology), the ground truth behind the
// generator, the Section 6 pre-processing pipeline, the match definition
// (M1 plus the later-discovered rules), the IRIS rule-based baseline, and
// an end-to-end CaseStudy runner that reproduces every number the paper
// walks through.
//
// The real UMETRICS and USDA data are proprietary; see DESIGN.md for why
// this synthetic substitute preserves the behaviour that matters.
package umetrics

// commonWords are high-frequency title words; they give unrelated titles
// enough token overlap that blocking has real work to do (the paper's C2
// had ~3x more candidates than true matches).
var commonWords = []string{
	"research", "development", "wisconsin", "production", "management",
	"analysis", "study", "systems", "agricultural", "improvement",
	"evaluation", "effects", "applications", "program", "assessment",
	"north", "central", "states", "integrated", "sustainable",
}

// rareWords are the domain-specific title vocabulary.
var rareWords = []string{
	"corn", "maize", "soybean", "wheat", "oat", "barley", "alfalfa",
	"cranberry", "potato", "carrot", "ginseng", "hops", "canola",
	"dairy", "cattle", "swine", "poultry", "sheep", "bovine", "calf",
	"genetics", "genomics", "epigenetic", "silencing", "genes", "qtl",
	"breeding", "phenotype", "heritability", "genotype", "markers",
	"fungicide", "herbicide", "pesticide", "insecticide", "nematode",
	"pathogen", "rust", "blight", "mosaic", "wilt", "rot", "scab",
	"dodder", "cuscuta", "gronovii", "weed", "invasive", "biocontrol",
	"ecology", "habitat", "wetland", "prairie", "watershed", "runoff",
	"nitrogen", "phosphorus", "potassium", "soil", "tillage", "erosion",
	"irrigation", "drainage", "nutrient", "manure", "compost", "silage",
	"economics", "markets", "policy", "trade", "cooperatives", "finance",
	"rural", "urban", "interface", "wildland", "forestry", "timber",
	"maple", "aspen", "conifer", "hardwood", "biomass", "bioenergy",
	"ethanol", "cellulosic", "fermentation", "enzymes", "microbial",
	"bacteria", "fungi", "mycorrhizae", "rhizosphere", "microbiome",
	"nutrition", "dietary", "protein", "lipids", "vitamins", "minerals",
	"food", "safety", "processing", "storage", "packaging", "quality",
	"cheese", "butter", "yogurt", "whey", "lactose", "casein",
	"milk", "lactation", "mastitis", "reproduction", "fertility",
	"embryo", "ovulation", "hormones", "metabolism", "immunology",
	"vaccine", "parasites", "johnes", "brucellosis", "tuberculosis",
	"climate", "drought", "frost", "temperature", "precipitation",
	"modeling", "simulation", "remote", "sensing", "spatial",
	"landscape", "conservation", "biodiversity", "pollinators", "bees",
	"apple", "cherry", "grape", "strawberry", "raspberry", "vegetable",
	"greenhouse", "hydroponic", "organic", "certification", "extension",
	"outreach", "education", "communities", "labor", "migration",
	"dodder2", "agroforestry", "silvopasture", "grazing", "pasture",
	"forage", "rotation", "cover", "crops", "residue", "mulch",
	"aquaculture", "fisheries", "trout", "perch", "walleye", "sturgeon",
	"epidemiology", "surveillance", "diagnostics", "biosecurity",
	"transgenic", "crispr", "transcriptome", "proteomics", "metabolomics",
	"kernel", "endosperm", "germplasm", "cultivar", "hybrid", "inbred",
	"tassel", "pollen", "anthesis", "senescence", "photosynthesis",
	"chlorophyll", "stomata", "roots", "canopy", "biometrics",
}

// genericTitles are the "not unique enough" titles of Section 8 that even
// the domain experts could not decide on.
var genericTitles = []string{
	"Lab Supplies",
	"Equipment Purchase",
	"Research Support",
	"Graduate Student Support",
	"Field Station Operations",
	"General Operating Funds",
}

// lastNames and firstInitials build employee and project-director names.
var lastNames = []string{
	"Kermicle", "Hammer", "Esker", "Colquhoun", "Smith", "Johnson",
	"Anderson", "Nelson", "Larson", "Olson", "Thompson", "Peterson",
	"Schmidt", "Mueller", "Meyer", "Wagner", "Becker", "Schultz",
	"Hoffman", "Weber", "Fischer", "Koch", "Richter", "Wolf",
	"Zimmerman", "Krueger", "Lehmann", "Huber", "Mayer", "Fuchs",
	"Tracy", "Shaver", "Wattiaux", "Goldberg", "Jackson", "Barak",
	"Bland", "Ruark", "Lauer", "Conley", "Gaska", "Mourtzinis",
	"Silva", "Ortiz", "Gutierrez", "Rivera", "Chen", "Wang",
	"Kim", "Patel", "Singh", "Kumar", "Ahmed", "Ali",
}

var firstInitials = []string{
	"J.L", "R", "P.D", "J", "A.M", "K.E", "M", "S.T", "D.R", "C",
	"B.W", "E.J", "T.M", "L", "N.K", "G.H", "W.F", "V", "H.R", "F.O",
}

// agencies and mechanisms fill the USDA categorical columns.
var sponsoringAgencies = []string{
	"NIFA", "State Agricultural Experiment Station", "ARS", "CSREES",
	"Forest Service", "Animal and Plant Health Inspection Service",
}

var fundingMechanisms = []string{
	"Federal Grant", "State Funding", "Hatch", "McIntire-Stennis",
	"Special Grant", "Competitive Grant",
}

// cfdaPrefixes are the CFDA program numbers seen in UniqueAwardNumber
// ("10.200 2008-34103-19449").
var cfdaPrefixes = []string{
	"10.200", "10.203", "10.205", "10.215", "10.216", "10.250",
	"10.303", "10.310", "10.500", "10.652",
}

// orgUnitNames fill the UMETRICSOrgUnitsMatching table.
var orgUnitNames = []string{
	"Agronomy", "Animal Sciences", "Bacteriology", "Biochemistry",
	"Dairy Science", "Entomology", "Food Science", "Forest Ecology",
	"Genetics", "Horticulture", "Plant Pathology", "Soil Science",
	"Agricultural Economics", "Biological Systems Engineering",
	"Nutritional Sciences", "Life Sciences Communication",
}

// vendorNames fill the UMETRICSVendorMatching table.
var vendorNames = []string{
	"Fisher Scientific", "VWR International", "Sigma-Aldrich",
	"Midwest Seed Supply", "Badger Laboratory Services", "Dane Count Ag Co-op",
	"Promega", "Bio-Rad Laboratories", "Thermo Electron", "Agilent",
	"Madison Gas and Electric", "University Housing", "DigiKey",
	"Grainger Industrial", "McMaster-Carr", "Airgas USA",
}

// jobTitles and occupations fill the employees table.
var jobTitles = []string{
	"Professor", "Associate Professor", "Assistant Professor",
	"Research Associate", "Postdoctoral Fellow", "Research Assistant",
	"Graduate Student", "Undergraduate Assistant", "Lab Manager",
	"Research Specialist", "Field Technician", "Data Analyst",
}

var occupationalClasses = []string{
	"Faculty", "Post Graduate Research", "Graduate Student",
	"Undergraduate", "Research Staff", "Technical Staff",
}

// objectCodeTexts fill the object-codes lookup table.
var objectCodeTexts = []string{
	"Salaries", "Fringe Benefits", "Supplies", "Equipment", "Travel",
	"Tuition Remission", "Subcontracts", "Publication Costs",
	"Facilities Rental", "Communications", "Maintenance", "Overhead",
}
