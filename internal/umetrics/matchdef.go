package umetrics

import (
	"strings"

	"emgo/internal/block"
	"emgo/internal/rules"
	"emgo/internal/table"
)

// KnownPatterns is the identifier pattern list the UMETRICS team supplied
// for the Section 12 negative rule: federal award numbers, Wisconsin
// project numbers, and forest-service style contract numbers.
func KnownPatterns() rules.Set {
	return rules.Set{
		"YYYY-#####-#####",
		"XXX#####",
		"##-XX-#########-###",
	}
}

// SuffixNormalize extracts the second part of a UMETRICS
// UniqueAwardNumber ("10.200 2008-34103-19449" → "2008-34103-19449") and
// normalizes formatting noise: embedded spaces are removed and letters
// uppercased. This is the transform behind the M1 blocking/matching rule
// (Section 7 step 1).
func SuffixNormalize(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[i+1:]
	} else {
		return "" // no suffix part: withhold
	}
	return NormalizeNumber(s)
}

// RawSuffix extracts the suffix without any normalization — the IRIS
// baseline's comparison key.
func RawSuffix(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[i+1:]
	}
	return ""
}

// NormalizeNumber uppercases an identifier and strips spaces.
func NormalizeNumber(s string) string {
	return strings.ToUpper(strings.ReplaceAll(s, " ", ""))
}

// M1Rule builds the M1 positive rule over projected tables: the
// UniqueAwardNumber suffix equals the USDA award number (Figure 5).
func M1Rule(um, usda *table.Table) (rules.Rule, error) {
	return rules.NewEqual("M1", um, "AwardNumber", SuffixNormalize,
		usda, "AwardNumber", NormalizeNumber, rules.Match)
}

// ProjectNumberRule builds the positive rule discovered in Section 10:
// the UniqueAwardNumber suffix equals the USDA project number. The USDA
// table must already carry the ProjectNumber column (AddProjectNumber).
func ProjectNumberRule(um, usda *table.Table) (rules.Rule, error) {
	return rules.NewEqual("award_eq_project", um, "AwardNumber", SuffixNormalize,
		usda, "ProjectNumber", NormalizeNumber, rules.Match)
}

// NegativeRules builds the Section 12 veto engine: a pair is a non-match
// when the UMETRICS number is comparable to — but different from — the
// USDA award number or the USDA project number.
func NegativeRules(um, usda *table.Table) (*rules.Engine, error) {
	patterns := KnownPatterns()
	negAward, err := rules.NewComparableMismatch("neg_award", um, "AwardNumber", SuffixNormalize,
		usda, "AwardNumber", NormalizeNumber, patterns)
	if err != nil {
		return nil, err
	}
	negProject, err := rules.NewComparableMismatch("neg_project", um, "AwardNumber", SuffixNormalize,
		usda, "ProjectNumber", NormalizeNumber, patterns)
	if err != nil {
		return nil, err
	}
	return rules.NewEngine(negAward, negProject), nil
}

// SureMatchEngine bundles the positive rules of the Figure 9 workflow.
// includeProjectRule reflects the chronology: false before the Section 10
// discovery, true after.
func SureMatchEngine(um, usda *table.Table, includeProjectRule bool) (*rules.Engine, error) {
	m1, err := M1Rule(um, usda)
	if err != nil {
		return nil, err
	}
	e := rules.NewEngine(m1)
	if includeProjectRule {
		pr, err := ProjectNumberRule(um, usda)
		if err != nil {
			return nil, err
		}
		e.Add(pr)
	}
	return e, nil
}

// TruthOracle adapts the generator's ground truth to row-index pairs over
// projected tables, for the simulated expert and evaluation code.
type TruthOracle struct {
	truth *Truth
	umUAN []string
	usAcc []string
}

// NewTruthOracle resolves the ID columns of the projected tables once.
func NewTruthOracle(truth *Truth, um, usda *table.Table) (*TruthOracle, error) {
	uj, err := um.Col("AwardNumber")
	if err != nil {
		return nil, err
	}
	aj, err := usda.Col("AccessionNumber")
	if err != nil {
		return nil, err
	}
	o := &TruthOracle{
		truth: truth,
		umUAN: make([]string, um.Len()),
		usAcc: make([]string, usda.Len()),
	}
	for i := 0; i < um.Len(); i++ {
		o.umUAN[i] = um.Row(i)[uj].Str()
	}
	for i := 0; i < usda.Len(); i++ {
		o.usAcc[i] = usda.Row(i)[aj].Str()
	}
	return o, nil
}

// IsMatch reports ground truth for a row-index pair.
func (o *TruthOracle) IsMatch(p block.Pair) bool {
	return o.truth.IsMatch(o.umUAN[p.A], o.usAcc[p.B])
}

// IsHard reports whether the pair is inherently undecidable.
func (o *TruthOracle) IsHard(p block.Pair) bool {
	return o.truth.IsHard(o.umUAN[p.A], o.usAcc[p.B])
}

// IsTrap reports whether the pair is a deliberate lookalike non-match.
func (o *TruthOracle) IsTrap(p block.Pair) bool {
	return o.truth.IsTrap(o.umUAN[p.A], o.usAcc[p.B])
}

// Class returns the match class of a true-match pair (ClassNone
// otherwise).
func (o *TruthOracle) Class(p block.Pair) PairClass {
	return o.truth.MatchClass(o.umUAN[p.A], o.usAcc[p.B])
}

// Key returns the ID key of a row pair.
func (o *TruthOracle) Key(p block.Pair) IDKey {
	return IDKey{UAN: o.umUAN[p.A], Accession: o.usAcc[p.B]}
}
