package umetrics

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"emgo/internal/table"
)

// Params controls the synthetic generator. Counts are record/grant counts;
// the *Rows fields are exact table-size targets (Figure 2). Class counts
// must fit inside the table totals; the remainder becomes UMETRICS-only /
// USDA-only filler records.
type Params struct {
	Seed int64

	// Grant classes (each grant yields one UMETRICS record and one or
	// more USDA records).
	FederalGrants int // matched via federal award number (M1)
	StateGrants   int // matched via WIS project number (the later rule)
	TitleGrants   int // matched only via title/director similarity
	// TitleVetoFraction is the fraction of TitleGrants whose UMETRICS
	// number is a WIS number that differs from the USDA project number
	// (renumbered projects); the negative rule wrongly vetoes these.
	TitleVetoFraction float64

	// TrapFamilies is how many federal/state grants get a lookalike
	// USDA-only sibling record (near-identical title, comparable but
	// different identifier) — the learner's false-positive source, and
	// the target of the Section 12 negative rule.
	TrapFamilies int

	// TrapTitleFamilies is how many title-class grants get a lookalike
	// sibling with a far-off date range and a non-comparable identifier;
	// the negative rule cannot veto these, so they survive into the
	// final match set as its residual false positives.
	TrapTitleFamilies int

	// GenericUMETRICS / GenericUSDA are records with undecidable generic
	// titles ("Lab Supplies").
	GenericUMETRICS int
	GenericUSDA     int

	// NCNRSP is how many USDA-only records carry a matched grant's title
	// plus the "NC/NRSP" multistate suffix (the D1 pathology).
	NCNRSP int

	// Extra* describe the 496 missing records discovered in Section 10:
	// a separate UMETRICS slice whose USDA counterparts are already in
	// the USDA table.
	ExtraFederal int
	ExtraState   int

	// Exact table sizes (Figure 2).
	UMETRICSRows   int // original UMETRICSAwardAggMatching
	ExtraRows      int // the extra UMETRICS slice
	USDARows       int
	EmployeeRows   int
	VendorRows     int
	SubAwardRows   int
	ObjectCodeRows int
	OrgUnitRows    int

	// NumberNoiseRate is the probability a UMETRICS award-number suffix
	// carries formatting noise (case, stray spaces) that the IRIS
	// baseline's raw string comparison cannot handle.
	NumberNoiseRate float64
}

// PaperParams returns the full-scale parameters matching Figure 2 exactly.
func PaperParams() Params {
	return Params{
		Seed:              1,
		FederalGrants:     160,
		StateGrants:       330,
		TitleGrants:       150,
		TitleVetoFraction: 0.15,
		TrapFamilies:      280,
		TrapTitleFamilies: 25,
		GenericUMETRICS:   12,
		GenericUSDA:       13,
		NCNRSP:            15,
		ExtraFederal:      25,
		ExtraState:        12,
		UMETRICSRows:      1336,
		ExtraRows:         496,
		USDARows:          1915,
		EmployeeRows:      1454070,
		VendorRows:        377746,
		SubAwardRows:      21470,
		ObjectCodeRows:    4574,
		OrgUnitRows:       264,
		NumberNoiseRate:   0.17,
	}
}

// TestParams returns PaperParams scaled down (with compact auxiliary
// tables) for fast tests and the case-study pipeline, which does not need
// the 1.45M-row employees table — only the distinct award/employee pairs.
func TestParams(scale float64) Params {
	p := PaperParams()
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	p.FederalGrants = s(p.FederalGrants)
	p.StateGrants = s(p.StateGrants)
	p.TitleGrants = s(p.TitleGrants)
	p.TrapFamilies = s(p.TrapFamilies)
	p.TrapTitleFamilies = s(p.TrapTitleFamilies)
	p.GenericUMETRICS = s(p.GenericUMETRICS)
	p.GenericUSDA = s(p.GenericUSDA)
	p.NCNRSP = s(p.NCNRSP)
	p.ExtraFederal = s(p.ExtraFederal)
	p.ExtraState = s(p.ExtraState)
	p.UMETRICSRows = s(p.UMETRICSRows)
	p.ExtraRows = s(p.ExtraRows)
	p.USDARows = s(p.USDARows)
	// Compact aux tables: enough rows for the pre-processing joins.
	p.EmployeeRows = 0 // 0 means "one row per award-employee pair"
	p.VendorRows = s(200)
	p.SubAwardRows = s(200)
	p.ObjectCodeRows = len(objectCodeTexts)
	p.OrgUnitRows = len(orgUnitNames)
	return p
}

// Dataset is the generated raw data: the seven tables of Figure 2, the
// extra UMETRICS slice of Section 10, and the ground truth.
type Dataset struct {
	AwardAgg    *table.Table
	Employees   *table.Table
	ObjectCodes *table.Table
	OrgUnits    *table.Table
	SubAward    *table.Table
	Vendor      *table.Table
	USDA        *table.Table
	// ExtraAwardAgg is the 496-record slice that was missing from
	// AwardAgg and surfaced only later (Section 10, "Handling More
	// Data").
	ExtraAwardAgg *table.Table
	Truth         *Truth
	Params        Params
}

// grant is one research grant in the synthetic world.
type grant struct {
	class     PairClass // ClassFederal, ClassState, ClassTitle, ClassTitleVeto
	words     []string  // base title tokens (lowercase)
	cfda      string
	suffix    string // UniqueAwardNumber part after the CFDA prefix
	fedNum    string // federal award number ("" when none)
	wisNum    string // USDA project number ("" when none)
	startYear int
	duration  int
	employees []string // "LASTNAME, F.I"
	inExtra   bool
	usdaRecs  int  // how many USDA records this grant has
	trap      bool // gets a lookalike USDA-only sibling (comparable number)
	trapFar   bool // gets a far-dated lookalike sibling (no comparable number)
	ncnrsp    bool // gets an NC/NRSP USDA-only sibling
}

// uan returns the grant's full UniqueAwardNumber.
func (g *grant) uan() string { return g.cfda + " " + g.suffix }

// awardEmp records the employees paid on one UMETRICS award (grant or
// filler); it feeds the employees table and the pre-processing join.
type awardEmp struct {
	uan   string
	names []string
}

// genericRec tracks a generic-title record so undecidable cross pairs can
// be registered in the truth.
type genericRec struct {
	id    string // UAN on the UMETRICS side, accession on the USDA side
	title string // lowercase generic title
}

// generator carries the mutable generation state.
type generator struct {
	p         Params
	rng       *rand.Rand
	truth     *Truth
	grants    []*grant
	awardEmps []awardEmp
	genericUM []genericRec
	wisSeq    int
	fedSeq    int
	accSeq    int
	acctSeq   int
}

// Generate builds the full synthetic dataset for the given parameters.
func Generate(p Params) (*Dataset, error) {
	if p.UMETRICSRows < p.FederalGrants+p.StateGrants+p.TitleGrants+p.GenericUMETRICS {
		return nil, fmt.Errorf("umetrics: UMETRICSRows %d too small for grant classes", p.UMETRICSRows)
	}
	if p.ExtraRows < p.ExtraFederal+p.ExtraState {
		return nil, fmt.Errorf("umetrics: ExtraRows %d too small for extra grants", p.ExtraRows)
	}
	if p.TrapFamilies > p.FederalGrants+p.StateGrants {
		return nil, fmt.Errorf("umetrics: TrapFamilies %d exceeds federal+state grants", p.TrapFamilies)
	}
	g := &generator{
		p:      p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		truth:  NewTruth(),
		wisSeq: 1000,
		fedSeq: 10000,
		accSeq: 100000,
	}
	g.makeGrants()

	ds := &Dataset{Truth: g.truth, Params: p}
	var err error
	if ds.AwardAgg, ds.ExtraAwardAgg, err = g.buildAwardAgg(); err != nil {
		return nil, err
	}
	if ds.USDA, err = g.buildUSDA(); err != nil {
		return nil, err
	}
	ds.Employees = g.buildEmployees()
	ds.Vendor = g.buildVendor()
	ds.SubAward = g.buildSubAward()
	ds.ObjectCodes = g.buildObjectCodes()
	ds.OrgUnits = g.buildOrgUnits()
	return ds, nil
}

// title draws base title tokens: a mix of common (collision-producing) and
// rare (distinctive) vocabulary. About 8% of title-class grants get very
// short 2-token titles (the C3 overlap-coefficient motivation).
func (g *generator) title(short bool) []string {
	if short {
		return []string{g.rare(), g.rare()}
	}
	n := 4 + g.rng.Intn(5) // 4..8 words
	words := make([]string, 0, n)
	seen := make(map[string]bool)
	for len(words) < n {
		var w string
		if g.rng.Float64() < 0.38 {
			w = commonWords[g.rng.Intn(len(commonWords))]
		} else {
			w = g.rare()
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		words = append(words, w)
	}
	return words
}

func (g *generator) rare() string {
	return rareWords[g.rng.Intn(len(rareWords))]
}

// newFedNum mints a unique federal award number "YYYY-#####-#####".
func (g *generator) newFedNum(year int) string {
	g.fedSeq++
	return fmt.Sprintf("%d-%05d-%05d", year, 34000+g.fedSeq%1000, g.fedSeq)
}

// newWisNum mints a unique project number "WIS#####".
func (g *generator) newWisNum() string {
	g.wisSeq++
	return fmt.Sprintf("WIS%05d", g.wisSeq)
}

// newAccession mints a unique USDA accession number.
func (g *generator) newAccession() string {
	g.accSeq++
	return fmt.Sprintf("%d", g.accSeq)
}

// newAccount mints a UW internal account number ("###-XX##" shape, which
// matches none of the known award-number patterns).
func (g *generator) newAccount() string {
	g.acctSeq++
	return fmt.Sprintf("%03d-%c%c%02d", 100+g.acctSeq%900,
		'A'+byte(g.acctSeq%26), 'A'+byte((g.acctSeq/26)%26), g.acctSeq%100)
}

// noisySuffix injects the formatting noise (case, stray spaces) that the
// IRIS baseline's raw comparison cannot normalize away.
func (g *generator) noisySuffix(s string) string {
	switch g.rng.Intn(3) {
	case 0:
		return strings.ToLower(s)
	case 1:
		// Space after the alpha prefix or first hyphen.
		if i := strings.IndexByte(s, '-'); i >= 0 {
			return s[:i+1] + " " + s[i+1:]
		}
		if len(s) > 3 {
			return s[:3] + " " + s[3:]
		}
		return s + " "
	default:
		return s + " "
	}
}

// employeesFor draws 2-4 employee names.
func (g *generator) employeesFor() []string {
	n := 2 + g.rng.Intn(3)
	out := make([]string, n)
	for i := range out {
		last := lastNames[g.rng.Intn(len(lastNames))]
		ini := firstInitials[g.rng.Intn(len(firstInitials))]
		out[i] = strings.ToUpper(last) + ", " + ini
	}
	return out
}

// usdaRecCount allocates 1-2 USDA records per grant, alternating so the
// one-to-many structure of Section 10 appears.
func usdaRecCount(i int) int {
	if i%2 == 0 {
		return 2
	}
	return 1
}

// makeGrants creates every grant entity, original and extra.
func (g *generator) makeGrants() {
	add := func(class PairClass, inExtra bool, i int) *grant {
		year := 1997 + g.rng.Intn(14)
		// A slice of state and title grants have very short titles — the
		// pairs the overlap-coefficient blocker exists for (and, with
		// drift, the pairs blocking loses entirely).
		short := (class == ClassTitle || class == ClassState) && g.rng.Float64() < 0.1
		gr := &grant{
			class:     class,
			words:     g.title(short),
			cfda:      cfdaPrefixes[g.rng.Intn(len(cfdaPrefixes))],
			startYear: year,
			duration:  2 + g.rng.Intn(4),
			employees: g.employeesFor(),
			inExtra:   inExtra,
			usdaRecs:  usdaRecCount(i),
		}
		switch class {
		case ClassFederal:
			gr.fedNum = g.newFedNum(year)
			gr.suffix = gr.fedNum
		case ClassState:
			gr.wisNum = g.newWisNum()
			gr.suffix = gr.wisNum
		case ClassTitle:
			gr.wisNum = g.newWisNum()
			gr.suffix = g.newAccount() // matches neither USDA field
			gr.usdaRecs = 1
			if i%12 == 0 {
				gr.usdaRecs = 2
			}
		case ClassTitleVeto:
			gr.wisNum = g.newWisNum()
			gr.suffix = g.newWisNum() // a different WIS number: comparable, unequal
			gr.usdaRecs = 1
		}
		// Formatting noise on the suffix (state and federal grants).
		if (class == ClassFederal || class == ClassState) && g.rng.Float64() < g.p.NumberNoiseRate {
			gr.suffix = g.noisySuffix(gr.suffix)
		}
		g.grants = append(g.grants, gr)
		return gr
	}

	for i := 0; i < g.p.FederalGrants; i++ {
		add(ClassFederal, false, i)
	}
	for i := 0; i < g.p.StateGrants; i++ {
		add(ClassState, false, i)
	}
	veto := int(float64(g.p.TitleGrants) * g.p.TitleVetoFraction)
	for i := 0; i < g.p.TitleGrants; i++ {
		if i < veto {
			add(ClassTitleVeto, false, i)
		} else {
			add(ClassTitle, false, i)
		}
	}
	for i := 0; i < g.p.ExtraFederal; i++ {
		add(ClassFederal, true, i)
	}
	for i := 0; i < g.p.ExtraState; i++ {
		add(ClassState, true, i)
	}

	// Assign trap siblings to the first TrapFamilies federal/state
	// original grants (round-robin across both classes for variety).
	assigned := 0
	for _, gr := range g.grants {
		if assigned >= g.p.TrapFamilies {
			break
		}
		if gr.inExtra || (gr.class != ClassFederal && gr.class != ClassState) {
			continue
		}
		gr.trap = true
		assigned++
	}
	// Far-dated lookalike siblings hang off title-class grants (whose
	// internal account numbers the negative rule cannot compare).
	assigned = 0
	for _, gr := range g.grants {
		if assigned >= g.p.TrapTitleFamilies {
			break
		}
		if gr.inExtra || gr.class != ClassTitle || len(gr.words) < 3 {
			continue
		}
		gr.trapFar = true
		assigned++
	}
	// NC/NRSP siblings hang off title-class grants.
	assigned = 0
	for _, gr := range g.grants {
		if assigned >= g.p.NCNRSP {
			break
		}
		if gr.inExtra || gr.class != ClassTitle || gr.trapFar {
			continue
		}
		gr.ncnrsp = true
		assigned++
	}
}

// renderUpper renders title words as the UMETRICS side stores them
// (uppercase, Figure 3 style).
func renderUpper(words []string) string {
	return strings.ToUpper(strings.Join(words, " "))
}

// renderTitleCase renders title words as the USDA side stores them
// (Figure 4 style).
func renderTitleCase(words []string) string {
	parts := make([]string, len(words))
	for i, w := range words {
		if len(w) > 0 {
			parts[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(parts, " ")
}

// usdaTitleVariant perturbs a grant's words for one USDA record: most
// records keep the words; some drop or add a token (the real data's title
// drift). allowHeavy additionally permits drift strong enough to evade
// the overlap-coefficient blocker; it is only enabled for grants whose
// pairs the number rules recover, so heavy drift costs blocking coverage
// (the footnote 3 phenomenon) without making the learning problem
// unsolvable.
func (g *generator) usdaTitleVariant(words []string, allowHeavy bool) []string {
	out := make([]string, len(words))
	copy(out, words)
	r := g.rng.Float64()
	switch {
	case r < 0.2 && len(out) > 4:
		// Drop one word.
		i := g.rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	case r < 0.35:
		out = append(out, g.rare())
	case r < 0.45 && len(out) > 3:
		out[g.rng.Intn(len(out))] = g.rare()
	case r < 0.53 && len(out) >= 6 && allowHeavy:
		// Heavy drift: still shares >= 3 tokens (the overlap blocker
		// keeps it) but the overlap coefficient drops below 0.7 (the
		// coefficient blocker loses it) — footnote 3's reason the union
		// of both blockers is required.
		out = out[:len(out)-2]
		out[g.rng.Intn(len(out))] = g.rare()
		out = append(out, g.rare())
	}
	return out
}

// trapTitleVariant perturbs a host grant's words for its lookalike
// sibling: about half are token-identical (indistinguishable to the
// learner), the rest swap one word.
func (g *generator) trapTitleVariant(words []string) []string {
	out := make([]string, len(words))
	copy(out, words)
	if g.rng.Float64() < 0.5 {
		return out
	}
	i := g.rng.Intn(len(out))
	out[i] = g.rare()
	return out
}

func date(year, month, day int) table.Value {
	return table.D(time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC))
}

// buildAwardAgg builds the original and extra UMETRICSAwardAggMatching
// tables.
func (g *generator) buildAwardAgg() (original, extra *table.Table, err error) {
	original = table.New("UMETRICSAwardAggMatching", AwardAggSchema())
	extra = table.New("UMETRICSAwardAggExtra", AwardAggSchema())

	appendGrant := func(t *table.Table, gr *grant) {
		endYear := gr.startYear + gr.duration
		g.awardEmps = append(g.awardEmps, awardEmp{uan: gr.uan(), names: gr.employees})
		t.MustAppend(table.Row{
			table.S(gr.uan()),
			table.S(renderUpper(gr.words)),
			table.S("USDA"),
			// Transactions start and stop with a year or so of slack
			// around the project window (real spending lags awards).
			date(gr.startYear+g.rng.Intn(2), 1+g.rng.Intn(12), 1+g.rng.Intn(28)),
			date(endYear+g.rng.Intn(2), 1+g.rng.Intn(12), 1+g.rng.Intn(28)),
			table.S(g.newAccount()),
			table.F(float64(5000 + g.rng.Intn(200000))),
			table.F(float64(20000 + g.rng.Intn(900000))),
			table.I(int64(10 + g.rng.Intn(500))),
			table.I(int64(gr.startYear)),
			table.I(int64(endYear)),
			table.S(orgUnitNames[g.rng.Intn(len(orgUnitNames))]),
			table.S("UWMSN"),
		})
	}
	appendFiller := func(t *table.Table, generic bool) {
		uan := cfdaPrefixes[g.rng.Intn(len(cfdaPrefixes))] + " " + g.newAccount()
		var title string
		if generic {
			base := genericTitles[g.rng.Intn(len(genericTitles))]
			title = strings.ToUpper(base)
			g.genericUM = append(g.genericUM, genericRec{id: uan, title: strings.ToLower(base)})
		} else {
			title = renderUpper(g.title(false))
		}
		g.awardEmps = append(g.awardEmps, awardEmp{uan: uan, names: g.employeesFor()})
		year := 1997 + g.rng.Intn(14)
		t.MustAppend(table.Row{
			table.S(uan),
			table.S(title),
			table.S("USDA"),
			date(year, 1+g.rng.Intn(12), 1+g.rng.Intn(28)),
			date(year+2+g.rng.Intn(4), 1+g.rng.Intn(12), 1+g.rng.Intn(28)),
			table.S(g.newAccount()),
			table.F(float64(5000 + g.rng.Intn(200000))),
			table.F(float64(20000 + g.rng.Intn(900000))),
			table.I(int64(10 + g.rng.Intn(500))),
			table.I(int64(year)),
			table.I(int64(year + 3)),
			table.S(orgUnitNames[g.rng.Intn(len(orgUnitNames))]),
			table.S("UWMSN"),
		})
	}

	for _, gr := range g.grants {
		if gr.inExtra {
			appendGrant(extra, gr)
		} else {
			appendGrant(original, gr)
		}
	}
	for i := 0; i < g.p.GenericUMETRICS; i++ {
		appendFiller(original, true)
	}
	for original.Len() < g.p.UMETRICSRows {
		appendFiller(original, false)
	}
	for extra.Len() < g.p.ExtraRows {
		appendFiller(extra, false)
	}
	if original.Len() != g.p.UMETRICSRows || extra.Len() != g.p.ExtraRows {
		return nil, nil, fmt.Errorf("umetrics: award table sizes %d/%d exceed targets %d/%d",
			original.Len(), extra.Len(), g.p.UMETRICSRows, g.p.ExtraRows)
	}
	return original, extra, nil
}
