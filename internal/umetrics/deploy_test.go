package umetrics

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"emgo/internal/drift"

	"emgo/internal/block"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/tokenize"
	"emgo/internal/workflow"
)

// trainForDeploy builds projected tables, labels a sample with the truth
// oracle, and trains a decision tree — the development half of the
// deployment story.
func trainForDeploy(t *testing.T) (*Dataset, *Projected, *feature.Set, *feature.Imputer, ml.Matcher) {
	t.Helper()
	ds, err := Generate(TestParams(0.25))
	if err != nil {
		t.Fatal(err)
	}
	proj, _, err := Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := AddProjectNumber(proj, ds.USDA); err != nil {
		t.Fatal(err)
	}
	oracle, err := NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := block.UnionBlock(proj.UMETRICS, proj.USDA,
		block.Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []block.Pair
	var y []int
	for _, p := range cand.Pairs() {
		if oracle.IsHard(p) {
			continue
		}
		pairs = append(pairs, p)
		if oracle.IsMatch(p) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	corr := map[string]string{"AwardNumber": "AwardNumber", "AwardTitle": "AwardTitle", "EmployeeName": "EmployeeName"}
	fs, err := feature.Generate(proj.UMETRICS, proj.USDA, corr, []string{"AwardNumber", "AwardTitle", "EmployeeName"})
	if err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(fs, proj.UMETRICS, corr, []string{"AwardTitle", "EmployeeName"}); err != nil {
		t.Fatal(err)
	}
	x, err := fs.Vectorize(proj.UMETRICS, proj.USDA, pairs)
	if err != nil {
		t.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	if x, err = im.Transform(x); err != nil {
		t.Fatal(err)
	}
	dset, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	tree := &ml.DecisionTree{}
	if err := tree.Fit(dset); err != nil {
		t.Fatal(err)
	}
	return ds, proj, fs, im, tree
}

func TestDeploymentSpecRoundTrip(t *testing.T) {
	_, proj, fs, im, matcher := trainForDeploy(t)
	spec, err := BuildDeploymentSpec(fs, im, matcher)
	if err != nil {
		t.Fatal(err)
	}

	// Serialize, parse, build against the same slice; the deployed
	// workflow must behave like the directly-constructed one.
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := workflow.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	deployed, err := parsed.Build(proj.UMETRICS, proj.USDA, DeployTransforms())
	if err != nil {
		t.Fatal(err)
	}
	got, err := deployed.Run(proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}

	// Direct construction of the same workflow.
	sure, err := SureMatchEngine(proj.UMETRICS, proj.USDA, true)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := NegativeRules(proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	direct := &workflow.Workflow{
		Name: "direct", SureRules: sure, NegativeRules: neg,
		Blockers: []block.Blocker{
			block.AttrEquiv{LeftCol: "AwardNumber", RightCol: "AwardNumber",
				LeftTransform: SuffixNormalize, RightTransform: NormalizeNumber},
			block.Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle",
				Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true},
			block.OverlapCoefficient{LeftCol: "AwardTitle", RightCol: "AwardTitle",
				Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true},
		},
		Features: fs, Imputer: im, Matcher: matcher,
	}
	want, err := direct.Run(proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	if got.Final.Len() != want.Final.Len() {
		t.Fatalf("deployed %d matches, direct %d", got.Final.Len(), want.Final.Len())
	}
	for _, p := range want.Final.Pairs() {
		if !got.Final.Contains(p) {
			t.Fatalf("deployed workflow missing pair %v", p)
		}
	}
}

func TestDeploymentOnNewSlice(t *testing.T) {
	// Train on one world, deploy on a fresh slice (different seed) — the
	// "matching for other data slices" scenario, with monitoring.
	_, _, fs, im, matcher := trainForDeploy(t)
	spec, err := BuildDeploymentSpec(fs, im, matcher)
	if err != nil {
		t.Fatal(err)
	}

	params := TestParams(0.25)
	params.Seed = 99
	newDS, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	newProj, _, err := Preprocess(newDS.AwardAgg, newDS.Employees, newDS.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := AddProjectNumber(newProj, newDS.USDA); err != nil {
		t.Fatal(err)
	}
	deployed, err := spec.Build(newProj.UMETRICS, newProj.USDA, DeployTransforms())
	if err != nil {
		t.Fatal(err)
	}
	res, err := deployed.Run(newProj.UMETRICS, newProj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() == 0 {
		t.Fatal("deployed workflow found nothing on the new slice")
	}

	// Footnote 11: monitor the production batch's precision by sampling
	// and labeling.
	oracle, err := NewTruthOracle(newDS.Truth, newProj.UMETRICS, newProj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	mon := &workflow.Monitor{SampleSize: 100, MinPrecision: 0.8, Rng: rand.New(rand.NewSource(1))}
	check, err := mon.Check("new-slice", res.Final, func(p block.Pair) label.Label {
		switch {
		case oracle.IsHard(p):
			return label.Unsure
		case oracle.IsMatch(p):
			return label.Yes
		default:
			return label.No
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if check.Alarm {
		t.Fatalf("deployed workflow precision collapsed on the new slice: %+v", check)
	}
	if check.Precision.Point < 0.8 {
		t.Fatalf("production precision %v too low", check.Precision.Point)
	}
}

func TestBuildDeploymentSpecValidation(t *testing.T) {
	if _, err := BuildDeploymentSpec(nil, nil, nil); err == nil {
		t.Fatal("nil inputs should error")
	}
	// An unserializable matcher kind is rejected.
	_, _, fs, im, _ := trainForDeploy(t)
	if _, err := BuildDeploymentSpec(fs, im, &ml.LogisticRegression{}); err == nil {
		t.Fatal("unserializable matcher should error")
	}
}

func TestCaptureDeployBaselineAndMonitoredSlice(t *testing.T) {
	// Train, capture the baseline over the training slice, then check a
	// fresh slice from the same generator against it — the quality-
	// monitoring half of the "matching for other data slices" story.
	_, proj, fs, im, matcher := trainForDeploy(t)
	spec, err := BuildDeploymentSpec(fs, im, matcher)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	base, err := CaptureDeployBaseline(context.Background(), spec,
		proj.UMETRICS, proj.USDA, workflow.RunOptions{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || len(base.Features) == 0 {
		t.Fatalf("baseline missing feature distributions: %+v", base)
	}
	loaded, err := drift.LoadProfile(path)
	if err != nil {
		t.Fatalf("baseline not persisted: %v", err)
	}

	// A new slice from the same world distribution should not breach.
	params := TestParams(0.25)
	params.Seed = 99
	newDS, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	newProj, _, err := Preprocess(newDS.AwardAgg, newDS.Employees, newDS.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := AddProjectNumber(newProj, newDS.USDA); err != nil {
		t.Fatal(err)
	}
	res, err := RunDeployed(context.Background(), spec, newProj.UMETRICS, newProj.USDA,
		workflow.RunOptions{Drift: &workflow.DriftStage{Baseline: loaded}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality == nil {
		t.Fatal("monitored deployed run produced no assessment")
	}
	if res.Quality.Breached() {
		t.Fatalf("same-distribution slice breached: %+v", res.Quality.Signals)
	}
	if res.Report == nil || res.Report.Quality == nil {
		t.Fatal("monitored run report missing the quality section")
	}
}
