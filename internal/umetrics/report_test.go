package umetrics

import (
	"strings"
	"testing"
)

func TestReportWrite(t *testing.T) {
	rep := caseStudy(t)
	var b strings.Builder
	rep.Write(&b)
	out := b.String()
	for _, section := range []string{
		"Section 4 / Figure 2",
		"Section 6: pre-processing",
		"Section 7: blocking",
		"Section 8: sampling and labeling",
		"Section 9: matcher selection",
		"Figure 8: initial workflow",
		"Section 10 / Figure 9",
		"Section 10: match multiplicity",
		"Section 11: accuracy estimation",
		"Section 12 / Figure 10",
		"Gold accuracy",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	// The paper references render next to measured values.
	for _, ref := range []string{"2937", "68/200/32", "(65.1%, 71.8%)", "845"} {
		if !strings.Contains(out, ref) {
			t.Errorf("report missing paper reference %q", ref)
		}
	}
	// Every table appears in the Figure 2 block.
	for _, ts := range rep.TableStats {
		if !strings.Contains(out, ts.Name) {
			t.Errorf("report missing table %s", ts.Name)
		}
	}
	// The multiplicity analysis line renders.
	if !strings.Contains(out, "entity clusters") {
		t.Error("report missing multiplicity analysis")
	}
}

func TestReportDegreeAnalysisPopulated(t *testing.T) {
	rep := caseStudy(t)
	if rep.MatchDegrees.Total() != rep.FinalMatches-0 && rep.MatchDegrees.Total() == 0 {
		t.Fatalf("degree stats empty: %+v", rep.MatchDegrees)
	}
	// One-to-many structure must be present (the sub-award reality).
	if rep.MatchDegrees.OneToMany == 0 {
		t.Errorf("expected one-to-many matches: %+v", rep.MatchDegrees)
	}
	if rep.EntityClusters == 0 || rep.EntityClusters > rep.MatchDegrees.Total() {
		t.Errorf("entity clusters = %d out of range", rep.EntityClusters)
	}
}
