package umetrics

import (
	"strings"
	"testing"

	"emgo/internal/block"
)

// smallParams is a fast configuration for unit tests.
func smallParams() Params {
	p := TestParams(0.25)
	return p
}

func generateSmall(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateTableSizes(t *testing.T) {
	p := smallParams()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if ds.AwardAgg.Len() != p.UMETRICSRows {
		t.Errorf("AwardAgg rows = %d want %d", ds.AwardAgg.Len(), p.UMETRICSRows)
	}
	if ds.ExtraAwardAgg.Len() != p.ExtraRows {
		t.Errorf("Extra rows = %d want %d", ds.ExtraAwardAgg.Len(), p.ExtraRows)
	}
	if ds.USDA.Len() != p.USDARows {
		t.Errorf("USDA rows = %d want %d", ds.USDA.Len(), p.USDARows)
	}
	if got := ds.USDA.Schema().Len(); got != 78 {
		t.Errorf("USDA cols = %d want 78", got)
	}
	if got := ds.AwardAgg.Schema().Len(); got != 13 {
		t.Errorf("AwardAgg cols = %d want 13", got)
	}
	if got := ds.Employees.Schema().Len(); got != 13 {
		t.Errorf("Employees cols = %d want 13", got)
	}
	if got := ds.SubAward.Schema().Len(); got != 23 {
		t.Errorf("SubAward cols = %d want 23", got)
	}
	if got := ds.Vendor.Schema().Len(); got != 21 {
		t.Errorf("Vendor cols = %d want 21", got)
	}
	if got := ds.ObjectCodes.Schema().Len(); got != 3 {
		t.Errorf("ObjectCodes cols = %d want 3", got)
	}
	if got := ds.OrgUnits.Schema().Len(); got != 5 {
		t.Errorf("OrgUnits cols = %d want 5", got)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	p := smallParams()
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.AwardAgg.Len() != b.AwardAgg.Len() {
		t.Fatal("non-deterministic row counts")
	}
	for i := 0; i < a.AwardAgg.Len(); i++ {
		if a.AwardAgg.Get(i, "UniqueAwardNumber").Str() != b.AwardAgg.Get(i, "UniqueAwardNumber").Str() {
			t.Fatal("non-deterministic award numbers")
		}
		if a.AwardAgg.Get(i, "AwardTitle").Str() != b.AwardAgg.Get(i, "AwardTitle").Str() {
			t.Fatal("non-deterministic titles")
		}
	}
	if a.Truth.NumMatches() != b.Truth.NumMatches() {
		t.Fatal("non-deterministic truth")
	}
}

func TestGenerateKeysHold(t *testing.T) {
	ds := generateSmall(t)
	ok, err := ds.AwardAgg.IsKey("UniqueAwardNumber")
	if err != nil || !ok {
		t.Fatalf("UniqueAwardNumber should be a key: %v %v", ok, err)
	}
	ok, err = ds.USDA.IsKey("AccessionNumber")
	if err != nil || !ok {
		t.Fatalf("AccessionNumber should be a key: %v %v", ok, err)
	}
}

func TestGenerateTruthClasses(t *testing.T) {
	p := smallParams()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	byClass := ds.Truth.CountByClass()
	if byClass[ClassFederal] == 0 || byClass[ClassState] == 0 || byClass[ClassTitle] == 0 {
		t.Fatalf("missing match classes: %v", byClass)
	}
	if byClass[ClassTitleVeto] == 0 {
		t.Fatalf("expected some veto-prone title matches: %v", byClass)
	}
	if ds.Truth.NumTraps() == 0 {
		t.Fatal("expected trap pairs")
	}
	// Every grant contributes at least one match; totals exceed grant
	// count because of one-to-many annual reports.
	minMatches := p.FederalGrants + p.StateGrants + p.TitleGrants + p.ExtraFederal + p.ExtraState
	if ds.Truth.NumMatches() < minMatches {
		t.Fatalf("matches %d < grants %d", ds.Truth.NumMatches(), minMatches)
	}
}

func TestGenerateMatchStructure(t *testing.T) {
	ds := generateSmall(t)
	// Pick a federal match and check the award number really joins.
	accCol, _ := ds.USDA.Col("AccessionNumber")
	awCol, _ := ds.USDA.Col("AwardNumber")
	accToAward := map[string]string{}
	for i := 0; i < ds.USDA.Len(); i++ {
		accToAward[ds.USDA.Row(i)[accCol].Str()] = ds.USDA.Row(i)[awCol].Str()
	}
	checked := 0
	for _, key := range ds.Truth.Matches() {
		if ds.Truth.MatchClass(key.UAN, key.Accession) != ClassFederal {
			continue
		}
		suffix := SuffixNormalize(key.UAN)
		award := NormalizeNumber(accToAward[key.Accession])
		if suffix != award {
			t.Fatalf("federal match %v: suffix %q != award %q", key, suffix, award)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no federal matches checked")
	}
}

func TestGenerateNumberNoisePresent(t *testing.T) {
	ds := generateSmall(t)
	noisy := 0
	for i := 0; i < ds.AwardAgg.Len(); i++ {
		uan := ds.AwardAgg.Get(i, "UniqueAwardNumber").Str()
		raw := RawSuffix(uan)
		if raw != NormalizeNumber(raw) {
			noisy++
		}
	}
	if noisy == 0 {
		t.Fatal("expected formatting noise in some award numbers")
	}
}

func TestGenerateValidation(t *testing.T) {
	p := smallParams()
	p.UMETRICSRows = 1
	if _, err := Generate(p); err == nil {
		t.Fatal("impossible UMETRICSRows should error")
	}
	p = smallParams()
	p.ExtraRows = 0
	if _, err := Generate(p); err == nil {
		t.Fatal("impossible ExtraRows should error")
	}
	p = smallParams()
	p.TrapFamilies = p.FederalGrants + p.StateGrants + 1
	if _, err := Generate(p); err == nil {
		t.Fatal("too many trap families should error")
	}
	p = smallParams()
	p.USDARows = 5
	if _, err := Generate(p); err == nil {
		t.Fatal("impossible USDARows should error")
	}
}

func TestGenerateVendorNoOverlapWithUSDAOrg(t *testing.T) {
	// The Section 6 step-3 property: vendor OrgName/DUNS do not overlap
	// USDA RecipientOrganization/RecipientDUNS.
	ds := generateSmall(t)
	orgs := map[string]bool{}
	oj, _ := ds.Vendor.Col("OrgName")
	for i := 0; i < ds.Vendor.Len(); i++ {
		orgs[ds.Vendor.Row(i)[oj].Str()] = true
	}
	rj, _ := ds.USDA.Col("RecipientOrganization")
	for i := 0; i < ds.USDA.Len(); i++ {
		if orgs[ds.USDA.Row(i)[rj].Str()] {
			t.Fatal("vendor orgs must not overlap USDA recipient orgs")
		}
	}
}

func TestPreprocess(t *testing.T) {
	ds := generateSmall(t)
	proj, report, err := Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	if !report.UMETRICSKeyOK || !report.USDAKeyOK {
		t.Fatalf("keys should hold: %+v", report)
	}
	// The employees table covers extra-slice awards too — FK violations
	// against the original table foreshadow the missing records.
	if report.EmployeeFKViolations == 0 {
		t.Fatal("expected FK violations from extra-slice awards")
	}

	wantUM := []string{"RecordId", "AwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate", "EmployeeName"}
	if got := strings.Join(proj.UMETRICS.Schema().Names(), ","); got != strings.Join(wantUM, ",") {
		t.Fatalf("UMETRICSProjected schema = %s", got)
	}
	wantUS := []string{"RecordId", "AwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate", "AccessionNumber", "EmployeeName"}
	if got := strings.Join(proj.USDA.Schema().Names(), ","); got != strings.Join(wantUS, ",") {
		t.Fatalf("USDAProjected schema = %s", got)
	}
	if proj.UMETRICS.Len() != ds.AwardAgg.Len() || proj.USDA.Len() != ds.USDA.Len() {
		t.Fatal("projection changed row counts")
	}
	// Every UMETRICS record must have employee names (joined, |-separated
	// for multi-employee awards).
	withPipe := 0
	for i := 0; i < proj.UMETRICS.Len(); i++ {
		v := proj.UMETRICS.Get(i, "EmployeeName")
		if v.IsNull() {
			t.Fatalf("row %d missing EmployeeName", i)
		}
		if strings.Contains(v.Str(), "|") {
			withPipe++
		}
	}
	if withPipe == 0 {
		t.Fatal("expected multi-employee concatenations")
	}
	// RecordIds are prefixed and unique.
	if proj.UMETRICS.Get(0, "RecordId").Str() != "u0" {
		t.Fatalf("record id = %q", proj.UMETRICS.Get(0, "RecordId").Str())
	}
	ok, _ := proj.USDA.IsKey("RecordId")
	if !ok {
		t.Fatal("RecordId should be unique")
	}
}

func TestAddProjectNumber(t *testing.T) {
	ds := generateSmall(t)
	proj, _, err := Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := AddProjectNumber(proj, ds.USDA); err != nil {
		t.Fatal(err)
	}
	if !proj.USDA.Schema().Has("ProjectNumber") {
		t.Fatal("ProjectNumber not added")
	}
	if err := AddProjectNumber(proj, ds.USDA); err == nil {
		t.Fatal("double add should error")
	}
	// Some project numbers should be WIS-style.
	found := false
	for i := 0; i < proj.USDA.Len() && !found; i++ {
		v := proj.USDA.Get(i, "ProjectNumber")
		if !v.IsNull() && strings.HasPrefix(v.Str(), "WIS") {
			found = true
		}
	}
	if !found {
		t.Fatal("no WIS project numbers present")
	}
}

func TestSuffixHelpers(t *testing.T) {
	if got := SuffixNormalize("10.200 2008-34103-19449"); got != "2008-34103-19449" {
		t.Fatalf("suffix = %q", got)
	}
	if got := SuffixNormalize("10.203 wis01040"); got != "WIS01040" {
		t.Fatalf("noisy lower = %q", got)
	}
	if got := SuffixNormalize("10.203 WIS 01040"); got != "WIS01040" {
		t.Fatalf("noisy space = %q", got)
	}
	if got := SuffixNormalize("nosuffix"); got != "" {
		t.Fatalf("no-suffix = %q", got)
	}
	if got := RawSuffix("10.203 WIS 01040"); got != "WIS 01040" {
		t.Fatalf("raw = %q", got)
	}
	if got := RawSuffix("nosuffix"); got != "" {
		t.Fatalf("raw no-suffix = %q", got)
	}
}

func TestTruthOracle(t *testing.T) {
	ds := generateSmall(t)
	proj, _, err := Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	// Find one true pair by scanning.
	found := false
	for a := 0; a < proj.UMETRICS.Len() && !found; a++ {
		for b := 0; b < proj.USDA.Len() && !found; b++ {
			p := block.Pair{A: a, B: b}
			if oracle.IsMatch(p) {
				found = true
				if oracle.Class(p) == ClassNone {
					t.Fatal("match must have a class")
				}
				key := oracle.Key(p)
				if !ds.Truth.IsMatch(key.UAN, key.Accession) {
					t.Fatal("oracle key inconsistent with truth")
				}
			}
		}
	}
	if !found {
		t.Fatal("no true matches visible through the oracle")
	}
	if _, err := NewTruthOracle(ds.Truth, ds.Employees, proj.USDA); err == nil {
		t.Fatal("table without AwardNumber should error")
	}
}

func TestPatternCoverage(t *testing.T) {
	// Generated identifiers must match the published pattern set so the
	// negative rule fires where intended.
	ps := KnownPatterns()
	ds := generateSmall(t)
	fedSeen, wisSeen := false, false
	aj, _ := ds.USDA.Col("AwardNumber")
	pj, _ := ds.USDA.Col("ProjectNumber")
	for i := 0; i < ds.USDA.Len(); i++ {
		if v := ds.USDA.Row(i)[aj]; !v.IsNull() {
			if _, ok := ps.Find(v.Str()); !ok {
				t.Fatalf("federal number %q matches no known pattern", v.Str())
			}
			fedSeen = true
		}
		if v := ds.USDA.Row(i)[pj]; !v.IsNull() {
			if _, ok := ps.Find(v.Str()); !ok {
				t.Fatalf("project number %q matches no known pattern", v.Str())
			}
			wisSeen = true
		}
	}
	if !fedSeen || !wisSeen {
		t.Fatal("expected both number kinds")
	}
	// Internal account numbers must NOT match any known pattern (so the
	// negative rule never vetoes title-class matches).
	if _, ok := ps.Find("144-AB12"); ok {
		t.Fatal("account shape must not match known patterns")
	}
}
