package umetrics

import "testing"

// TestCaseStudyDeterminism runs the whole pipeline twice at a small scale
// and asserts every headline number agrees — the property DESIGN.md
// promises ("the case study is fully reproducible run to run").
func TestCaseStudyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive; skipped with -short")
	}
	cfg := TestConfig(0.15)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type nums struct {
		c, labels, fig8, fig9, final, vetoed int
		bestInitial, bestFinal               string
		estP, goldP                          float64
	}
	of := func(r *Report) nums {
		return nums{
			c:           r.ConsolidatedC,
			labels:      r.FinalLabels.Total(),
			fig8:        r.TotalFig8,
			fig9:        r.TotalFig9,
			final:       r.FinalMatches,
			vetoed:      r.VetoedOriginal,
			bestInitial: r.BestInitial,
			bestFinal:   r.BestFinal,
			estP:        r.EstFinal.Precision.Point,
			goldP:       r.GoldFinal.Precision(),
		}
	}
	if of(a) != of(b) {
		t.Fatalf("case study is not deterministic:\n%+v\n%+v", of(a), of(b))
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatal("match lists differ")
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			t.Fatal("match IDs differ")
		}
	}
}
