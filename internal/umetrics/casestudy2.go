package umetrics

import (
	"fmt"
	"math/rand"

	"emgo/internal/block"
	"emgo/internal/cluster"
	"emgo/internal/estimate"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/rules"
	"emgo/internal/workflow"
)

// studyState2 fields live on study (casestudy.go); this file implements
// Sections 9-12.

// factoryFor returns a fresh-matcher factory by CV-result name.
func (s *study) factoryFor(name string) (ml.Factory, error) {
	for _, f := range ml.DefaultFactories(s.cfg.Seed) {
		if f.Name == name {
			return f, nil
		}
	}
	return ml.Factory{}, fmt.Errorf("umetrics: unknown matcher %q", name)
}

// fitImputerAndTrain fits the imputer and a fresh matcher of the given
// kind on the dataset.
func (s *study) fitImputerAndTrain(name string, ds *ml.Dataset) (ml.Matcher, error) {
	f, err := s.factoryFor(name)
	if err != nil {
		return nil, err
	}
	m := f.New()
	if err := m.Fit(ds); err != nil {
		return nil, err
	}
	return m, nil
}

// matching reproduces Section 9: matcher selection, debugging that leads
// to the case-insensitive features, re-selection, and the Figure 8
// workflow totals.
func (s *study) matching() error {
	// Initial selection on the auto-generated features.
	ds, _, err := s.trainingSet()
	if err != nil {
		return err
	}
	cv, err := ml.SelectMatcher(ml.DefaultFactories(s.cfg.Seed), ds, 5, s.cfg.Seed)
	if err != nil {
		return err
	}
	s.report.CVInitial = cv
	s.report.BestInitial = cv[0].Name

	// Debug the selected matcher with the split-half procedure; the
	// mismatches motivate the case-insensitive feature extension
	// ("many mismatches occurred due to award titles having different
	// letter cases").
	bestFactory, err := s.factoryFor(cv[0].Name)
	if err != nil {
		return err
	}
	if _, err := ml.SplitDebug(bestFactory, ds, rand.New(rand.NewSource(s.cfg.Seed+2))); err != nil {
		return err
	}
	corr, _ := s.corrOrder()
	if err := feature.AddCaseInsensitive(s.features, s.proj.UMETRICS, corr,
		[]string{"AwardTitle", "EmployeeName"}); err != nil {
		return err
	}

	// Re-select with the extended feature set.
	ds, _, err = s.trainingSet()
	if err != nil {
		return err
	}
	cv, err = ml.SelectMatcher(ml.DefaultFactories(s.cfg.Seed), ds, 5, s.cfg.Seed)
	if err != nil {
		return err
	}
	s.report.CVWithCase = cv
	s.report.BestFinal = cv[0].Name

	// Figure 8: train the selected matcher on all decided non-sure
	// labels, remove the M1 pairs from C, and predict the rest.
	matcher, err := s.fitImputerAndTrain(cv[0].Name, ds)
	if err != nil {
		return err
	}
	s.matcher = matcher

	m1, err := M1Rule(s.proj.UMETRICS, s.proj.USDA)
	if err != nil {
		return err
	}
	w := &workflow.Workflow{
		Name:      "figure8",
		SureRules: rules.NewEngine(m1),
		Blockers:  s.blockers(),
		Features:  s.features,
		Imputer:   s.imputer,
		Matcher:   matcher,
	}
	res, err := w.Run(s.proj.UMETRICS, s.proj.USDA)
	if err != nil {
		return err
	}
	// The paper counts the M1 pairs inside C (210) rather than all M1
	// pairs; with the M1 rule doubling as the C1 blocker they coincide.
	inC, err := s.cand.Intersect(res.Sure)
	if err != nil {
		return err
	}
	s.report.M1InC = inC.Len()
	s.report.LearnedFig8 = res.Learned.Len()
	s.report.TotalFig8 = res.Final.Len()
	s.fig8 = res
	return nil
}

// updating reproduces Section 10: the discovered positive rule, its
// interaction with blocking and the matcher, and the Figure 9 patched
// workflow over the original and extra slices.
func (s *study) updating() error {
	// How much does the new rule matter?
	rule2, err := ProjectNumberRule(s.proj.UMETRICS, s.proj.USDA)
	if err != nil {
		return err
	}
	rule2Pairs := rules.NewEngine(rule2).SureMatches(s.proj.UMETRICS, s.proj.USDA)
	s.report.Rule2Cartesian = rule2Pairs.Len()
	inC, err := s.cand.Intersect(rule2Pairs)
	if err != nil {
		return err
	}
	s.report.Rule2InC = inC.Len()
	pred, err := s.fig8.Final.Intersect(rule2Pairs)
	if err != nil {
		return err
	}
	s.report.Rule2Predicted = pred.Len()

	// Retrain the matcher on labels with BOTH positive rules' sure pairs
	// removed ("we removed the sure matches from the labeled set and
	// selected the best matcher").
	ds, _, err := s.trainingSetExcludingRule2()
	if err != nil {
		return err
	}
	s.lastTrain = ds
	cv, err := ml.SelectMatcher(ml.DefaultFactories(s.cfg.Seed), ds, 5, s.cfg.Seed)
	if err != nil {
		return err
	}
	s.winner = cv[0].Name
	matcher, err := s.fitImputerAndTrain(cv[0].Name, ds)
	if err != nil {
		return err
	}
	s.matcher = matcher

	runSlice := func(um *Projected) (*workflow.Result, error) {
		sure, err := SureMatchEngine(um.UMETRICS, um.USDA, true)
		if err != nil {
			return nil, err
		}
		w := &workflow.Workflow{
			Name:      "figure9",
			SureRules: sure,
			Blockers:  s.blockers(),
			Features:  s.features,
			Imputer:   s.imputer,
			Matcher:   matcher,
		}
		return w.Run(um.UMETRICS, um.USDA)
	}
	if s.res1, err = runSlice(s.proj); err != nil {
		return err
	}
	if s.res2, err = runSlice(s.extra); err != nil {
		return err
	}
	s.report.SureOriginal = s.res1.Sure.Len()
	s.report.SureExtra = s.res2.Sure.Len()
	s.report.CandOriginal = s.res1.Candidates.Len()
	s.report.CandExtra = s.res2.Candidates.Len()
	s.report.LearnedOriginal = s.res1.Learned.Len()
	s.report.LearnedExtra = s.res2.Learned.Len()
	s.report.TotalFig9 = s.res1.Final.Len() + s.res2.Final.Len()
	return nil
}

// trainingSetExcludingRule2 is trainingSet with both positive rules'
// pairs removed.
func (s *study) trainingSetExcludingRule2() (*ml.Dataset, []block.Pair, error) {
	sure, err := SureMatchEngine(s.proj.UMETRICS, s.proj.USDA, true)
	if err != nil {
		return nil, nil, err
	}
	decidedPairs, y := s.labels.Decided()
	var pairs []block.Pair
	var labels []int
	for i, p := range decidedPairs {
		if sure.Judge(s.proj.UMETRICS.Row(p.A), s.proj.USDA.Row(p.B)) == rules.Match {
			continue
		}
		pairs = append(pairs, p)
		labels = append(labels, y[i])
	}
	if len(pairs) == 0 {
		return nil, nil, fmt.Errorf("umetrics: no non-sure decided labels to train on")
	}
	return s.vectorize(pairs, labels)
}

// evalItem is one element of the consolidated estimation universe E.
type evalItem struct {
	slice int // 0 = original, 1 = extra
	pair  block.Pair
	label label.Label
}

// estimating reproduces Section 11: Corleone estimation of the Figure 9
// workflow and the IRIS baseline over a labeled random sample of E.
func (s *study) estimating() error {
	// Universe E = sure ∪ candidates of both slices.
	var universe []evalItem
	addAll := func(slice int, sets ...*block.CandidateSet) {
		seen := make(map[block.Pair]struct{})
		for _, set := range sets {
			for _, p := range set.Pairs() {
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				universe = append(universe, evalItem{slice: slice, pair: p})
			}
		}
	}
	addAll(0, s.res1.Sure, s.res1.Candidates)
	addAll(1, s.res2.Sure, s.res2.Candidates)

	// IRIS over both slices; check it stays inside E (Section 11 step 1).
	iris1, err := NewIRIS(s.proj.UMETRICS, s.proj.USDA)
	if err != nil {
		return err
	}
	s.iris1 = iris1.Match(s.proj.UMETRICS, s.proj.USDA)
	iris2, err := NewIRIS(s.extra.UMETRICS, s.extra.USDA)
	if err != nil {
		return err
	}
	s.iris2 = iris2.Match(s.extra.UMETRICS, s.extra.USDA)
	inE := make(map[evalItem]struct{}, len(universe))
	for _, it := range universe {
		inE[evalItem{slice: it.slice, pair: it.pair}] = struct{}{}
	}
	for _, p := range s.iris1.Pairs() {
		if _, ok := inE[evalItem{slice: 0, pair: p}]; !ok {
			s.report.IRISOutsideE++
		}
	}
	for _, p := range s.iris2.Pairs() {
		if _, ok := inE[evalItem{slice: 1, pair: p}]; !ok {
			s.report.IRISOutsideE++
		}
	}

	// Experts label cumulative random samples of E.
	perm := s.rng.Perm(len(universe))
	expertFor := func(slice int) *TruthOracle {
		if slice == 0 {
			return s.oracle
		}
		return s.extOra
	}
	next := 0
	sampleMore := func(n int) {
		for n > 0 && next < len(perm) {
			it := &universe[perm[next]]
			o := expertFor(it.slice)
			switch {
			case o.IsHard(it.pair):
				it.label = label.Unsure
			case o.IsMatch(it.pair):
				it.label = label.Yes
			default:
				it.label = label.No
			}
			s.eval = append(s.eval, *it)
			next++
			n--
		}
	}

	estimateSet := func(pred1, pred2 *block.CandidateSet) (estimate.Estimate, error) {
		predicted := make([]bool, len(s.eval))
		labels := make([]label.Label, len(s.eval))
		for i, it := range s.eval {
			if it.slice == 0 {
				predicted[i] = pred1.Contains(it.pair)
			} else {
				predicted[i] = pred2.Contains(it.pair)
			}
			labels[i] = it.label
		}
		return estimate.FromLabels(predicted, labels)
	}

	for round, n := range s.cfg.EstimateRounds {
		sampleMore(n)
		ours, err := estimateSet(s.res1.Final, s.res2.Final)
		if err != nil {
			return err
		}
		irisEst, err := estimateSet(s.iris1, s.iris2)
		if err != nil {
			return err
		}
		if round == 0 {
			s.report.EstOursFirst = ours
			s.report.EstIRISFirst = irisEst
		}
		s.report.EstOursAll = ours
		s.report.EstIRISAll = irisEst
	}
	var counts label.Counts
	for _, it := range s.eval {
		switch it.label {
		case label.Yes:
			counts.Yes++
		case label.No:
			counts.No++
		case label.Unsure:
			counts.Unsure++
		}
	}
	s.report.EvalLabels = counts
	return nil
}

// refining reproduces Section 12: the negative pattern rule applied to
// the learner's predictions, the final Figure 10 workflow, and its
// estimated accuracy.
func (s *study) refining() error {
	filterSlice := func(um *Projected, res *workflow.Result) (*block.CandidateSet, int, error) {
		neg, err := NegativeRules(um.UMETRICS, um.USDA)
		if err != nil {
			return nil, 0, err
		}
		kept, vetoed := neg.FilterMatches(res.Learned)
		final, err := res.Sure.Union(kept)
		if err != nil {
			return nil, 0, err
		}
		return final, vetoed, nil
	}
	final1, vetoed1, err := filterSlice(s.proj, s.res1)
	if err != nil {
		return err
	}
	final2, vetoed2, err := filterSlice(s.extra, s.res2)
	if err != nil {
		return err
	}
	s.report.VetoedOriginal = vetoed1
	s.report.VetoedExtra = vetoed2
	s.report.FinalMatches = final1.Len() + final2.Len()

	// The Section 10 multiplicity analysis: most matches should be
	// one-to-one; the one-to-many tail is the multi-year sub-award
	// structure the teams decided to live with.
	s.report.MatchDegrees = cluster.Degrees(final1)
	s.report.EntityClusters = len(cluster.ConnectedComponents(final1))

	// Same candidate universe, same labeled sample, new matcher: reuse
	// the evaluation sample (Section 12: "we can reuse the labeled set").
	predicted := make([]bool, len(s.eval))
	labels := make([]label.Label, len(s.eval))
	for i, it := range s.eval {
		if it.slice == 0 {
			predicted[i] = final1.Contains(it.pair)
		} else {
			predicted[i] = final2.Contains(it.pair)
		}
		labels[i] = it.label
	}
	s.report.EstFinal, err = estimate.FromLabels(predicted, labels)
	if err != nil {
		return err
	}

	// Deliverable: (UniqueAwardNumber, AccessionNumber) ID pairs.
	ids1, err := matchIDs(final1)
	if err != nil {
		return err
	}
	ids2, err := matchIDs(final2)
	if err != nil {
		return err
	}
	s.report.Matches = workflow.MergeIDs(ids1, ids2)

	// Package the deployed workflow (Section 12 "Next Steps"). When the
	// CV winner is not a tree-based matcher (only those serialize), a
	// decision tree is fitted for deployment — the matcher the paper
	// itself shipped.
	deployMatcher := s.matcher
	if _, err := ml.ExportMatcher(deployMatcher); err != nil {
		tree := &ml.DecisionTree{}
		if err := tree.Fit(s.lastTrain); err != nil {
			return err
		}
		deployMatcher = tree
	}
	if s.report.Deployment, err = BuildDeploymentSpec(s.features, s.imputer, deployMatcher); err != nil {
		return err
	}

	// Release the labeled data (training labels keyed by business IDs,
	// plus the evaluation sample) — the paper's data contribution.
	for _, p := range s.labels.Pairs() {
		key := s.oracle.Key(p)
		s.report.LabeledPairs = append(s.report.LabeledPairs, LabeledPair{
			UAN: key.UAN, Accession: key.Accession,
			Label: s.labels.Get(p), Phase: "training",
		})
	}
	for _, it := range s.eval {
		o := s.oracle
		if it.slice == 1 {
			o = s.extOra
		}
		key := o.Key(it.pair)
		s.report.LabeledPairs = append(s.report.LabeledPairs, LabeledPair{
			UAN: key.UAN, Accession: key.Accession,
			Label: it.label, Phase: "evaluation",
		})
	}

	// Gold accuracy against the generator's ground truth (unavailable to
	// the paper's authors, invaluable for validating the reproduction).
	s.report.GoldIRIS = s.goldConfusion(s.iris1, s.iris2)
	fig8Extra := block.NewCandidateSet(s.extra.UMETRICS, s.extra.USDA)
	s.report.GoldFig8 = s.goldConfusion(s.fig8.Final, fig8Extra)
	s.report.GoldFig9 = s.goldConfusion(s.res1.Final, s.res2.Final)
	s.report.GoldFinal = s.goldConfusion(final1, final2)
	return nil
}

// matchIDs renders a final candidate set as ID pairs.
func matchIDs(final *block.CandidateSet) ([]workflow.IDPair, error) {
	res := &workflow.Result{Final: final}
	return res.MatchIDs("AwardNumber", "AccessionNumber")
}

// goldConfusion scores predicted match sets for both slices against the
// ground truth. Hard (undecidable) pairs are excluded, mirroring how the
// estimation procedure ignores Unsure labels.
func (s *study) goldConfusion(pred1, pred2 *block.CandidateSet) ml.Confusion {
	var c ml.Confusion
	count := func(o *TruthOracle, pred *block.CandidateSet) {
		for _, p := range pred.Pairs() {
			if o.IsHard(p) {
				continue
			}
			if o.IsMatch(p) {
				c.TP++
			} else {
				c.FP++
			}
		}
	}
	count(s.oracle, pred1)
	count(s.extOra, pred2)
	c.FN = s.ds.Truth.NumMatches() - c.TP
	return c
}
