package umetrics

import (
	"strings"
	"testing"
)

// FuzzSuffixNormalize checks the award-number transforms never panic and
// preserve their invariants on arbitrary input.
func FuzzSuffixNormalize(f *testing.F) {
	f.Add("10.200 2008-34103-19449")
	f.Add("10.203 wis01040")
	f.Add("10.203 WIS 01040")
	f.Add("nosuffix")
	f.Add("")
	f.Add("  leading spaces")
	f.Fuzz(func(t *testing.T, s string) {
		out := SuffixNormalize(s)
		if strings.ContainsRune(out, ' ') {
			t.Fatalf("normalized suffix %q contains a space", out)
		}
		if out != strings.ToUpper(out) {
			t.Fatalf("normalized suffix %q not uppercased", out)
		}
		// Idempotence of the number normalizer.
		n := NormalizeNumber(s)
		if NormalizeNumber(n) != n {
			t.Fatalf("NormalizeNumber not idempotent on %q", s)
		}
		// Raw suffix is always a suffix of the input.
		raw := RawSuffix(s)
		if raw != "" && !strings.HasSuffix(s, raw) {
			t.Fatalf("RawSuffix(%q) = %q is not a suffix", s, raw)
		}
	})
}
