package umetrics

import (
	"fmt"
	"math/rand"

	"emgo/internal/block"
	"emgo/internal/ckpt"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/obs"
	"emgo/internal/table"
	"emgo/internal/workflow"
)

// This file makes the case study resumable. Each expensive section
// (blocking through estimating) persists a checkpoint artifact to an
// optional ckpt.Store; a later run over the same Config restores the
// section's outputs — after bounds and consistency validation — instead
// of recomputing them. generate and preprocess are always replayed
// (they are pure functions of Params and Seed, and every restored
// artifact is expressed as row indices into the tables they rebuild);
// refining is always replayed because it produces the final report and
// deliverables from restored state.
//
// The one piece of state a checkpoint cannot serialize is the position
// of the shared random streams: labeling consumes the study rng (the
// per-round samples) and the simulated expert's rng, and estimating
// consumes the study rng again (the evaluation permutation). Each
// artifact therefore records the cumulative draw counts at the moment
// the section finished, and a restored run fast-forwards the streams by
// replaying draws. A checkpoint whose counts cannot be replayed exactly
// (draws interleaved across source methods, or a stream already past
// the recorded position) is rejected and the section recomputed — the
// fallback is always "do the work again", never "use a stream in the
// wrong position".

// Checkpoint artifact names inside the study's run store.
const (
	ckptBlocking   = "study.blocking.json"
	ckptLabeling   = "study.labeling.json"
	ckptMatching   = "study.matching.json"
	ckptUpdating   = "study.updating.json"
	ckptEstimating = "study.estimating.json"
)

// sectionCkpt maps a step name to its artifact name ("" = not
// checkpointed).
func sectionCkpt(step string) string {
	switch step {
	case "blocking":
		return ckptBlocking
	case "labeling":
		return ckptLabeling
	case "matching":
		return ckptMatching
	case "updating":
		return ckptUpdating
	case "estimating":
		return ckptEstimating
	}
	return ""
}

// countedSource wraps a rand.Source64 and counts draws per method, so a
// stream's position can be recorded in a checkpoint and replayed on
// resume. math/rand advances source state differently per method (a
// Uint64 is not two Int63s on every source), so the counts are kept
// separate and a mixed stream refuses to fast-forward.
type countedSource struct {
	src    rand.Source64
	counts rngCounts
}

// rngCounts is a stream position: cumulative draws per source method.
type rngCounts struct {
	Int63  uint64 `json:"int63"`
	Uint64 uint64 `json:"uint64"`
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countedSource) Int63() int64 {
	c.counts.Int63++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.counts.Uint64++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.counts = rngCounts{}
}

// canReach reports whether the stream can be fast-forwarded from its
// current position to target by replaying draws. It requires target to
// be ahead (or equal) on both counters and at most one method to have
// pending draws — with both pending, the original interleaving order is
// unknown and replay would desynchronize the stream.
func (c *countedSource) canReach(target rngCounts) bool {
	if target.Int63 < c.counts.Int63 || target.Uint64 < c.counts.Uint64 {
		return false
	}
	return target.Int63 == c.counts.Int63 || target.Uint64 == c.counts.Uint64
}

// ffwd replays draws until the stream reaches target. Callers must have
// checked canReach first.
func (c *countedSource) ffwd(target rngCounts) {
	for c.counts.Int63 < target.Int63 {
		c.Int63()
	}
	for c.counts.Uint64 < target.Uint64 {
		c.Uint64()
	}
}

// studyRng records both stream positions at a section boundary.
type studyRng struct {
	Main   rngCounts `json:"main"`
	Expert rngCounts `json:"expert"`
}

// labelArt is one labeled pair in labeling order (the store's insertion
// order is semantically significant: training sets are built in it).
type labelArt struct {
	Pair  [2]int `json:"pair"`
	Label int    `json:"label"`
}

// resultArt serializes the candidate sets of one workflow result as row
// index pairs.
type resultArt struct {
	Sure       [][2]int `json:"sure"`
	Candidates [][2]int `json:"candidates"`
	Learned    [][2]int `json:"learned"`
	Final      [][2]int `json:"final"`
}

// evalArt is one element of the labeled estimation sample.
type evalArt struct {
	Slice int    `json:"slice"`
	Pair  [2]int `json:"pair"`
	Label int    `json:"label"`
}

// sectionArt is the on-disk form of one section checkpoint: the report
// accumulated so far, the section's live state, and the random-stream
// positions at the section boundary.
type sectionArt struct {
	Section string   `json:"section"`
	Rng     studyRng `json:"rng"`
	Report  *Report  `json:"report"`

	// blocking
	Cand [][2]int `json:"cand,omitempty"`
	// labeling
	Labels []labelArt `json:"labels,omitempty"`
	// matching
	Fig8 *resultArt `json:"fig8,omitempty"`
	// updating
	Winner string     `json:"winner,omitempty"`
	Res1   *resultArt `json:"res1,omitempty"`
	Res2   *resultArt `json:"res2,omitempty"`
	// estimating
	Eval  []evalArt `json:"eval,omitempty"`
	Iris1 [][2]int  `json:"iris1,omitempty"`
	Iris2 [][2]int  `json:"iris2,omitempty"`
}

func pairsOf(cs *block.CandidateSet) [][2]int {
	out := make([][2]int, 0, cs.Len())
	for _, p := range cs.Pairs() {
		out = append(out, [2]int{p.A, p.B})
	}
	return out
}

func setOf(pairs [][2]int, left, right *table.Table) *block.CandidateSet {
	cs := block.NewCandidateSet(left, right)
	for _, p := range pairs {
		cs.Add(block.Pair{A: p[0], B: p[1]})
	}
	return cs
}

func newResultArt(res *workflow.Result) *resultArt {
	return &resultArt{
		Sure:       pairsOf(res.Sure),
		Candidates: pairsOf(res.Candidates),
		Learned:    pairsOf(res.Learned),
		Final:      pairsOf(res.Final),
	}
}

func (a *resultArt) toResult(left, right *table.Table) *workflow.Result {
	return &workflow.Result{
		Sure:       setOf(a.Sure, left, right),
		Candidates: setOf(a.Candidates, left, right),
		Learned:    setOf(a.Learned, left, right),
		Final:      setOf(a.Final, left, right),
		Log:        &workflow.Log{},
	}
}

func checkPairs(what string, pairs [][2]int, left, right *table.Table) error {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= left.Len() || p[1] < 0 || p[1] >= right.Len() {
			return fmt.Errorf("%s pair (%d,%d) out of range for %dx%d tables",
				what, p[0], p[1], left.Len(), right.Len())
		}
	}
	return nil
}

func (a *resultArt) check(what string, left, right *table.Table) error {
	if a == nil {
		return fmt.Errorf("%s result missing", what)
	}
	for _, seg := range []struct {
		name  string
		pairs [][2]int
	}{
		{"sure", a.Sure}, {"candidates", a.Candidates},
		{"learned", a.Learned}, {"final", a.Final},
	} {
		if err := checkPairs(what+"."+seg.name, seg.pairs, left, right); err != nil {
			return err
		}
	}
	return nil
}

// rngState snapshots both stream positions.
func (s *study) rngState() studyRng {
	return studyRng{Main: s.mainSrc.counts, Expert: s.expertSrc.counts}
}

// saveSection persists the checkpoint for a completed section; write
// failures are recorded on the metrics registry but never fail the run.
func (s *study) saveSection(step string) {
	name := sectionCkpt(step)
	if name == "" || s.cfg.Checkpoints == nil {
		return
	}
	art := sectionArt{Section: step, Rng: s.rngState(), Report: s.report}
	switch step {
	case "blocking":
		art.Cand = pairsOf(s.cand)
	case "labeling":
		for _, p := range s.labels.Pairs() {
			art.Labels = append(art.Labels, labelArt{Pair: [2]int{p.A, p.B}, Label: int(s.labels.Get(p))})
		}
	case "matching":
		art.Fig8 = newResultArt(s.fig8)
	case "updating":
		art.Winner = s.winner
		art.Res1 = newResultArt(s.res1)
		art.Res2 = newResultArt(s.res2)
	case "estimating":
		art.Iris1 = pairsOf(s.iris1)
		art.Iris2 = pairsOf(s.iris2)
		for _, it := range s.eval {
			art.Eval = append(art.Eval, evalArt{Slice: it.slice, Pair: [2]int{it.pair.A, it.pair.B}, Label: int(it.label)})
		}
	}
	if err := s.cfg.Checkpoints.WriteJSON(name, art); err != nil {
		obs.C("umetrics.ckpt.write_failed").Inc()
		return
	}
	obs.C("umetrics.ckpt.saved").Inc()
}

// tryRestore attempts to satisfy one section from its checkpoint. It
// returns false — after quarantining an artifact that failed semantic
// validation — whenever the section must run live.
func (s *study) tryRestore(step string, sp *obs.Span) bool {
	name := sectionCkpt(step)
	store := s.cfg.Checkpoints
	if name == "" || store == nil || !store.Has(name) {
		return false
	}
	var art sectionArt
	if err := store.ReadJSON(name, &art); err != nil {
		// Corrupt artifacts are already quarantined by the store.
		sp.Event("ckpt", fmt.Sprintf("checkpoint %s unreadable, recomputing: %v", name, err))
		return false
	}
	if err := s.validateArt(step, &art); err != nil {
		store.Quarantine(name, err.Error())
		sp.Event("ckpt", fmt.Sprintf("checkpoint %s failed validation, quarantined; recomputing: %v", name, err))
		return false
	}
	if !s.mainSrc.canReach(art.Rng.Main) || !s.expertSrc.canReach(art.Rng.Expert) {
		// Not corruption — the artifact is internally consistent but the
		// run's random streams cannot be positioned to match it (e.g. an
		// earlier section was recomputed along a different path). Leave
		// the artifact in place and recompute.
		sp.Event("ckpt", fmt.Sprintf("checkpoint %s rng position unreachable, recomputing", name))
		return false
	}
	s.restoreArt(step, &art)
	s.mainSrc.ffwd(art.Rng.Main)
	s.expertSrc.ffwd(art.Rng.Expert)
	sp.Event("ckpt", "restored "+name)
	obs.C("umetrics.ckpt.resumed").Inc()
	return true
}

// validateArt bounds- and consistency-checks an artifact against the
// replayed base state before any of it is trusted.
func (s *study) validateArt(step string, art *sectionArt) error {
	if art.Section != step {
		return fmt.Errorf("artifact is for section %q, not %q", art.Section, step)
	}
	if art.Report == nil {
		return fmt.Errorf("artifact has no report")
	}
	um, us := s.proj.UMETRICS, s.proj.USDA
	switch step {
	case "blocking":
		return checkPairs("cand", art.Cand, um, us)
	case "labeling":
		for _, l := range art.Labels {
			if err := checkPairs("label", [][2]int{l.Pair}, um, us); err != nil {
				return err
			}
			switch label.Label(l.Label) {
			case label.Yes, label.No, label.Unsure:
			default:
				return fmt.Errorf("label %d out of range", l.Label)
			}
		}
		return nil
	case "matching":
		return art.Fig8.check("fig8", um, us)
	case "updating":
		if _, err := s.factoryFor(art.Winner); err != nil {
			return fmt.Errorf("winner: %w", err)
		}
		if err := art.Res1.check("res1", um, us); err != nil {
			return err
		}
		return art.Res2.check("res2", s.extra.UMETRICS, s.extra.USDA)
	case "estimating":
		if err := checkPairs("iris1", art.Iris1, um, us); err != nil {
			return err
		}
		if err := checkPairs("iris2", art.Iris2, s.extra.UMETRICS, s.extra.USDA); err != nil {
			return err
		}
		for _, it := range art.Eval {
			switch it.Slice {
			case 0:
				if err := checkPairs("eval", [][2]int{it.Pair}, um, us); err != nil {
					return err
				}
			case 1:
				if err := checkPairs("eval", [][2]int{it.Pair}, s.extra.UMETRICS, s.extra.USDA); err != nil {
					return err
				}
			default:
				return fmt.Errorf("eval slice %d out of range", it.Slice)
			}
			switch label.Label(it.Label) {
			case label.Yes, label.No, label.Unsure:
			default:
				return fmt.Errorf("eval label %d out of range", it.Label)
			}
		}
		return nil
	}
	return fmt.Errorf("section %q has no checkpoint", step)
}

// restoreArt installs a validated artifact as the section's live state.
// Derived state a checkpoint cannot carry (feature sets, imputers,
// fitted matchers) is rebuilt deterministically from what it can.
func (s *study) restoreArt(step string, art *sectionArt) {
	um, us := s.proj.UMETRICS, s.proj.USDA
	switch step {
	case "blocking":
		s.cand = setOf(art.Cand, um, us)
	case "labeling":
		s.labels = label.NewStore()
		for _, l := range art.Labels {
			// Set on a fresh store in artifact order reproduces the
			// original labeling order exactly; it cannot fail on a valid
			// artifact (bounds were checked above).
			_ = s.labels.Set(block.Pair{A: l.Pair[0], B: l.Pair[1]}, label.Label(l.Label))
		}
	case "matching":
		s.fig8 = art.Fig8.toResult(um, us)
	case "updating":
		s.winner = art.Winner
		s.res1 = art.Res1.toResult(um, us)
		s.res2 = art.Res2.toResult(s.extra.UMETRICS, s.extra.USDA)
	case "estimating":
		s.iris1 = setOf(art.Iris1, um, us)
		s.iris2 = setOf(art.Iris2, s.extra.UMETRICS, s.extra.USDA)
		s.eval = nil
		for _, it := range art.Eval {
			s.eval = append(s.eval, evalItem{
				slice: it.Slice,
				pair:  block.Pair{A: it.Pair[0], B: it.Pair[1]},
				label: label.Label(it.Label),
			})
		}
	}
	*s.report = *art.Report
}

// rebuildDerived reconstructs the unserializable state later sections
// need, after the last restored section. Everything here is a
// deterministic function of restored state, so a rebuilt object is
// byte-equivalent to the one the original run held.
func (s *study) rebuildDerived(lastRestored string) error {
	switch lastRestored {
	case "matching", "updating", "estimating":
		// The case-insensitive feature extension of Section 9 must be
		// present before any further training or deployment packaging.
		corr, order := s.corrOrder()
		fs, err := feature.Generate(s.proj.UMETRICS, s.proj.USDA, corr, order)
		if err != nil {
			return err
		}
		if err := feature.AddCaseInsensitive(fs, s.proj.UMETRICS, corr,
			[]string{"AwardTitle", "EmployeeName"}); err != nil {
			return err
		}
		s.features = fs
	}
	switch lastRestored {
	case "updating", "estimating":
		// Refit the Section 10 winner on the deterministic training set;
		// this also restores s.imputer (vectorize fits it) and
		// s.lastTrain, which refining's deployment packaging needs.
		ds, _, err := s.trainingSetExcludingRule2()
		if err != nil {
			return err
		}
		s.lastTrain = ds
		matcher, err := s.fitImputerAndTrain(s.winner, ds)
		if err != nil {
			return err
		}
		s.matcher = matcher
	}
	return nil
}

// Fingerprint returns the checkpoint-store fingerprint for this
// configuration: any change to the generator parameters, seed, round
// plan, or expert noise invalidates every checkpoint.
func (c Config) Fingerprint() string {
	return ckpt.Fingerprint(
		"umetrics.casestudy",
		fmt.Sprintf("%+v", c.Params),
		fmt.Sprintf("seed=%d rounds=%v est=%v hes=%g mis=%g",
			c.Seed, c.SampleRounds, c.EstimateRounds, c.HesitateRate, c.MistakeRate),
	)
}
