package umetrics

import (
	"context"
	"strings"
	"testing"
	"time"

	"emgo/internal/fault"
	"emgo/internal/retry"
	"emgo/internal/workflow"
)

func TestRunDeployedMatchesPlainDeployment(t *testing.T) {
	_, proj, fs, im, matcher := trainForDeploy(t)
	spec, err := BuildDeploymentSpec(fs, im, matcher)
	if err != nil {
		t.Fatal(err)
	}
	deployed, err := spec.Build(proj.UMETRICS, proj.USDA, DeployTransforms())
	if err != nil {
		t.Fatal(err)
	}
	want, err := deployed.Run(proj.UMETRICS, proj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDeployed(context.Background(), spec, proj.UMETRICS, proj.USDA, workflow.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Final.Len() != want.Final.Len() {
		t.Fatalf("hardened deployment %d matches, plain %d", got.Final.Len(), want.Final.Len())
	}
	for _, p := range want.Final.Pairs() {
		if !got.Final.Contains(p) {
			t.Fatalf("hardened deployment missing pair %v", p)
		}
	}
	if got.Log == nil || len(got.Log.Entries()) == 0 {
		t.Fatal("deployed run produced no provenance log")
	}
}

func TestRunDeployedRetriesTransformLookup(t *testing.T) {
	defer fault.Reset()
	_, proj, fs, im, matcher := trainForDeploy(t)
	spec, err := BuildDeploymentSpec(fs, im, matcher)
	if err != nil {
		t.Fatal(err)
	}
	// The registry's first lookup fails transiently; the run's retry
	// policy covers the build too.
	fault.Enable("workflow.spec.transform", fault.Plan{FailFirst: 1})
	res, err := RunDeployed(context.Background(), spec, proj.UMETRICS, proj.USDA, workflow.RunOptions{
		Retry: retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("transient lookup fault should be retried: %v", err)
	}
	if res.Final.Len() == 0 {
		t.Fatal("deployed run found nothing")
	}
	// Without a retry policy the same fault kills the build before any
	// stage runs.
	fault.Enable("workflow.spec.transform", fault.Plan{FailFirst: 1})
	res, err = RunDeployed(context.Background(), spec, proj.UMETRICS, proj.USDA, workflow.RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "build deployed workflow") {
		t.Fatalf("err: %v", err)
	}
	if res != nil {
		t.Fatal("build failure must not fabricate a result")
	}
}

func TestRunDeployedGuards(t *testing.T) {
	if _, err := RunDeployed(context.Background(), nil, nil, nil, workflow.RunOptions{}); err == nil {
		t.Fatal("nil spec must error")
	}
}
