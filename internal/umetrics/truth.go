package umetrics

// PairClass explains why a ground-truth pair relates the way it does; it
// drives the simulated expert and the per-experiment analyses.
type PairClass int

const (
	// ClassNone marks an unrelated pair.
	ClassNone PairClass = iota
	// ClassFederal is a true match joined by a federal award number (the
	// M1 rule, Figure 5).
	ClassFederal
	// ClassState is a true match joined by a WIS project number (the
	// later-discovered positive rule).
	ClassState
	// ClassTitle is a true match discoverable only through title/director
	// similarity (the M2/M3 signal, Figure 6).
	ClassTitle
	// ClassTitleVeto is a true match whose identifiers are comparable but
	// different (renumbered projects); the negative rule wrongly vetoes
	// these — the small recall cost of Figure 10.
	ClassTitleVeto
	// ClassTrap is a non-match with a near-identical title and a
	// comparable-but-different identifier (sibling projects in a series);
	// the learner tends to accept these and the negative rule vetoes them.
	ClassTrap
	// ClassGeneric is an undecidable pair with a generic title ("Lab
	// Supplies") — labeled Unsure by the expert.
	ClassGeneric
	// ClassNCNRSP is a pair whose USDA title carries the multistate
	// "NC/NRSP" suffix — revised to Unsure during label debugging (D1).
	ClassNCNRSP
)

// String names the class.
func (c PairClass) String() string {
	switch c {
	case ClassFederal:
		return "federal"
	case ClassState:
		return "state"
	case ClassTitle:
		return "title"
	case ClassTitleVeto:
		return "title_veto"
	case ClassTrap:
		return "trap"
	case ClassGeneric:
		return "generic"
	case ClassNCNRSP:
		return "nc_nrsp"
	default:
		return "none"
	}
}

// IDKey identifies a record pair by its business keys: the UMETRICS
// UniqueAwardNumber and the USDA AccessionNumber — the format the final
// matches are delivered in.
type IDKey struct {
	UAN       string // UMETRICS UniqueAwardNumber
	Accession string // USDA AccessionNumber
}

// Truth is the generator's ground truth: which (UMETRICS, USDA) record
// pairs refer to the same grant, which pairs are inherently undecidable,
// and which non-matching pairs were built as traps.
type Truth struct {
	matches map[IDKey]PairClass
	hard    map[IDKey]PairClass // generic / NC-NRSP pairs: expert says Unsure
	traps   map[IDKey]PairClass // deliberate non-match lookalikes
}

// NewTruth returns an empty truth.
func NewTruth() *Truth {
	return &Truth{
		matches: make(map[IDKey]PairClass),
		hard:    make(map[IDKey]PairClass),
		traps:   make(map[IDKey]PairClass),
	}
}

// AddMatch records a true match of the given class.
func (t *Truth) AddMatch(uan, accession string, class PairClass) {
	t.matches[IDKey{uan, accession}] = class
}

// AddHard records an undecidable pair.
func (t *Truth) AddHard(uan, accession string, class PairClass) {
	t.hard[IDKey{uan, accession}] = class
}

// AddTrap records a deliberate lookalike non-match.
func (t *Truth) AddTrap(uan, accession string, class PairClass) {
	t.traps[IDKey{uan, accession}] = class
}

// IsMatch reports whether the pair is a true match.
func (t *Truth) IsMatch(uan, accession string) bool {
	_, ok := t.matches[IDKey{uan, accession}]
	return ok
}

// IsHard reports whether even the domain expert cannot decide the pair.
func (t *Truth) IsHard(uan, accession string) bool {
	_, ok := t.hard[IDKey{uan, accession}]
	return ok
}

// IsTrap reports whether the pair is a deliberate lookalike non-match.
func (t *Truth) IsTrap(uan, accession string) bool {
	_, ok := t.traps[IDKey{uan, accession}]
	return ok
}

// MatchClass returns the class of a true match (ClassNone when not a
// match).
func (t *Truth) MatchClass(uan, accession string) PairClass {
	return t.matches[IDKey{uan, accession}]
}

// NumMatches returns the number of true matching pairs.
func (t *Truth) NumMatches() int { return len(t.matches) }

// NumTraps returns the number of trap pairs.
func (t *Truth) NumTraps() int { return len(t.traps) }

// CountByClass tallies true matches per class.
func (t *Truth) CountByClass() map[PairClass]int {
	out := make(map[PairClass]int)
	for _, c := range t.matches {
		out[c]++
	}
	return out
}

// Matches returns all true-match keys (order unspecified).
func (t *Truth) Matches() []IDKey {
	out := make([]IDKey, 0, len(t.matches))
	for k := range t.matches {
		out = append(out, k)
	}
	return out
}
