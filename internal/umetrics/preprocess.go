package umetrics

import (
	"fmt"
	"strconv"

	"emgo/internal/table"
)

// Projected holds the two matching-ready tables produced by the Section 6
// pre-processing: UMETRICSProjected and USDAProjected.
type Projected struct {
	UMETRICS *table.Table
	USDA     *table.Table
}

// PreprocessReport records the validation results of Section 6 step 2.
type PreprocessReport struct {
	// UMETRICSKeyOK / USDAKeyOK report whether the claimed keys held.
	UMETRICSKeyOK bool
	USDAKeyOK     bool
	// EmployeeFKViolations counts employee rows whose award is not in the
	// award table (nonzero here foreshadows the missing-records episode).
	EmployeeFKViolations int
}

// Preprocess executes the Section 6 pipeline on the three relevant tables:
// validate keys, project the matching-relevant columns, align column
// names, join in the concatenated employee names, and add RecordId
// columns. usdaPrefix distinguishes record IDs of different slices
// (original vs extra) — pass "u"/"s" style prefixes.
func Preprocess(awardAgg, employees, usda *table.Table, umPrefix, usdaPrefix string) (*Projected, *PreprocessReport, error) {
	report := &PreprocessReport{}

	// Step 2: key and foreign-key validation.
	ok, err := awardAgg.IsKey("UniqueAwardNumber")
	if err != nil {
		return nil, nil, fmt.Errorf("umetrics: preprocess: %w", err)
	}
	report.UMETRICSKeyOK = ok
	ok, err = usda.IsKey("AccessionNumber")
	if err != nil {
		return nil, nil, fmt.Errorf("umetrics: preprocess: %w", err)
	}
	report.USDAKeyOK = ok
	report.EmployeeFKViolations, err = employees.ForeignKeyViolations("UniqueAwardNumber", awardAgg, "UniqueAwardNumber")
	if err != nil {
		return nil, nil, fmt.Errorf("umetrics: preprocess: %w", err)
	}

	// Step 4.a: project the matching-relevant columns.
	um, err := awardAgg.Project("UMETRICSProjected",
		"UniqueAwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate")
	if err != nil {
		return nil, nil, err
	}
	us, err := usda.Project("USDAProjected",
		"AwardNumber", "ProjectTitle", "ProjectStartDate", "ProjectEndDate",
		"AccessionNumber", "ProjectDirector")
	if err != nil {
		return nil, nil, err
	}

	// Step 4.b: align column names.
	um, err = um.Rename(map[string]string{"UniqueAwardNumber": "AwardNumber"})
	if err != nil {
		return nil, nil, err
	}
	us, err = us.Rename(map[string]string{
		"ProjectTitle":     "AwardTitle",
		"ProjectStartDate": "FirstTransDate",
		"ProjectEndDate":   "LastTransDate",
		"ProjectDirector":  "EmployeeName",
	})
	if err != nil {
		return nil, nil, err
	}

	// Step 4.b (continued): join the concatenated employee names onto the
	// UMETRICS side ("for each award, these employee names were
	// concatenated ... separated by the | character").
	grouped, err := employees.GroupConcat("emp", "UniqueAwardNumber", "FullName", "|")
	if err != nil {
		return nil, nil, err
	}
	um, err = um.Join("UMETRICSProjected", grouped, "AwardNumber", "UniqueAwardNumber", table.LeftJoin)
	if err != nil {
		return nil, nil, err
	}
	um, err = um.DropColumn("UniqueAwardNumber")
	if err != nil {
		return nil, nil, err
	}
	um, err = um.Rename(map[string]string{"FullName": "EmployeeName"})
	if err != nil {
		return nil, nil, err
	}

	// Step 4.c: add RecordId columns.
	um, err = addRecordID(um, umPrefix)
	if err != nil {
		return nil, nil, err
	}
	us, err = addRecordID(us, usdaPrefix)
	if err != nil {
		return nil, nil, err
	}
	um.SetName("UMETRICSProjected")
	us.SetName("USDAProjected")
	return &Projected{UMETRICS: um, USDA: us}, report, nil
}

// addRecordID prepends a RecordId column valued prefix+rowIndex.
func addRecordID(t *table.Table, prefix string) (*table.Table, error) {
	i := 0
	withID, err := t.AddColumn(table.Field{Name: "RecordId", Kind: table.String}, func(table.Row) table.Value {
		v := table.S(prefix + strconv.Itoa(i))
		i++
		return v
	})
	if err != nil {
		return nil, err
	}
	cols := append([]string{"RecordId"}, t.Schema().Names()...)
	return withID.Project(t.Name(), cols...)
}

// AddProjectNumber appends the USDA ProjectNumber column to a projected
// USDA table — the Section 10 revision (footnote 9: "ProjectNumber is not
// in table USDAProjected. However, it is in USDAAwardMatching and thus can
// be easily added").
func AddProjectNumber(projected *Projected, usda *table.Table) error {
	if projected.USDA.Schema().Has("ProjectNumber") {
		return fmt.Errorf("umetrics: ProjectNumber already added")
	}
	pn, err := usda.Project("pn", "AccessionNumber", "ProjectNumber")
	if err != nil {
		return err
	}
	joined, err := projected.USDA.Join("USDAProjected", pn, "AccessionNumber", "AccessionNumber", table.LeftJoin)
	if err != nil {
		return err
	}
	joined, err = joined.DropColumn("pn.AccessionNumber")
	if err != nil {
		return err
	}
	joined.SetName("USDAProjected")
	projected.USDA = joined
	return nil
}
