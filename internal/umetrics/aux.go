package umetrics

import (
	"fmt"

	"emgo/internal/table"
)

// buildEmployees builds UMETRICSEmployeesMatching. With EmployeeRows == 0
// it emits one row per (award, employee) pair — all the pre-processing
// join needs. With a positive target it pads with additional pay-period
// rows, cycling over awards and employees, to hit the exact Figure 2 row
// count.
func (g *generator) buildEmployees() *table.Table {
	t := table.New("UMETRICSEmployeesMatching", EmployeesSchema())
	empSeq := 0
	appendRow := func(uan, name string, period int) {
		empSeq++
		year := 1997 + (period/26)%14
		month := 1 + (period*2)%12
		t.MustAppend(table.Row{
			table.S(uan),
			date(year, month, 1),
			date(year, month, 14),
			table.S(fmt.Sprintf("144-%06d", empSeq%1000000)),
			table.S(fmt.Sprintf("E%07d", hashName(name)%10000000)),
			table.S(name),
			table.S(occupationalClasses[empSeq%len(occupationalClasses)]),
			table.S(jobTitles[empSeq%len(jobTitles)]),
			table.S(fmt.Sprintf("%03d", 100+empSeq%12)),
			table.S(fmt.Sprintf("%02d-%04d", 11+empSeq%8, 1000+empSeq%9000)),
			table.S([]string{"Full Time", "Part Time"}[empSeq%2]),
			table.F(float64(empSeq%100) / 100),
			table.I(int64(year)),
		})
	}

	for _, ae := range g.awardEmps {
		for _, name := range ae.names {
			appendRow(ae.uan, name, empSeq)
		}
	}
	if g.p.EmployeeRows > 0 {
		if t.Len() > g.p.EmployeeRows {
			// More distinct pairs than the target allows; accept the
			// larger table rather than dropping join rows.
			return t
		}
		for i := 0; t.Len() < g.p.EmployeeRows; i++ {
			ae := g.awardEmps[i%len(g.awardEmps)]
			appendRow(ae.uan, ae.names[i%len(ae.names)], i)
		}
	}
	return t
}

// hashName gives a stable pseudo-ID for an employee name.
func hashName(s string) int {
	h := 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ int(s[i])) * 16777619
		h &= 0x7fffffff
	}
	return h
}

// buildVendor builds UMETRICSVendorMatching. Its OrgName/DUNS values
// deliberately do NOT overlap the USDA RecipientOrganization/DUNS values —
// the Section 6 check that ruled the table out for matching.
func (g *generator) buildVendor() *table.Table {
	t := table.New("UMETRICSVendorMatching", VendorSchema())
	for i := 0; i < g.p.VendorRows; i++ {
		ae := g.awardEmps[g.rng.Intn(len(g.awardEmps))]
		year := 1997 + g.rng.Intn(14)
		t.MustAppend(table.Row{
			table.S(ae.uan),
			date(year, 1+g.rng.Intn(12), 1),
			date(year, 1+g.rng.Intn(12), 28),
			table.S(fmt.Sprintf("144-%06d", g.rng.Intn(1000000))),
			table.S(fmt.Sprintf("%03d", 100+g.rng.Intn(12))),
			table.S(fmt.Sprintf("ORG%05d", g.rng.Intn(100000))),
			table.S(fmt.Sprintf("%02d-%07d", 10+g.rng.Intn(80), g.rng.Intn(10000000))),
			table.S(fmt.Sprintf("%09d", 500000000+g.rng.Intn(400000000))),
			table.F(float64(50 + g.rng.Intn(50000))),
			table.S(vendorNames[g.rng.Intn(len(vendorNames))]),
			table.Null(table.String),
			table.S(fmt.Sprintf("%d", 1+g.rng.Intn(9999))),
			table.S(fmt.Sprintf("%d", 1+g.rng.Intn(9999))),
			table.S("University Ave"),
			table.S("Madison WI"),
			table.S("Madison"),
			table.S("WI"),
			table.S(fmt.Sprintf("537%02d", g.rng.Intn(100))),
			table.Null(table.String),
			table.S("USA"),
			table.I(int64(year)),
		})
	}
	return t
}

// buildSubAward builds UMETRICSSubAwardMatching.
func (g *generator) buildSubAward() *table.Table {
	t := table.New("UMETRICSSubAwardMatching", SubAwardSchema())
	for i := 0; i < g.p.SubAwardRows; i++ {
		ae := g.awardEmps[g.rng.Intn(len(g.awardEmps))]
		year := 1997 + g.rng.Intn(14)
		t.MustAppend(table.Row{
			table.S(ae.uan),
			table.S("1450 Linden Dr"),
			table.Null(table.String),
			table.S("Madison"),
			table.S("USA"),
			table.S(fmt.Sprintf("%09d", 600000000+g.rng.Intn(300000000))),
			table.S(fmt.Sprintf("537%02d", g.rng.Intn(100))),
			table.S(fmt.Sprintf("%02d-%07d", 10+g.rng.Intn(80), g.rng.Intn(10000000))),
			table.Null(table.String),
			table.S(fmt.Sprintf("%03d", 100+g.rng.Intn(12))),
			table.S(vendorNames[g.rng.Intn(len(vendorNames))]),
			table.S(fmt.Sprintf("ORG%05d", g.rng.Intn(100000))),
			table.Null(table.String),
			date(year, 12, 28),
			date(year, 1, 1),
			table.S(fmt.Sprintf("144-%06d", g.rng.Intn(1000000))),
			table.Null(table.String),
			table.Null(table.String),
			table.S("WI"),
			table.S("Observatory Dr"),
			table.S(fmt.Sprintf("%d", 1+g.rng.Intn(9999))),
			table.F(float64(1000 + g.rng.Intn(250000))),
			table.I(int64(year)),
		})
	}
	return t
}

// buildObjectCodes builds UMETRICSObjectCodesMatching.
func (g *generator) buildObjectCodes() *table.Table {
	t := table.New("UMETRICSObjectCodesMatching", ObjectCodesSchema())
	for i := 0; i < g.p.ObjectCodeRows; i++ {
		t.MustAppend(table.Row{
			table.S(fmt.Sprintf("%03d", 100+i%400)),
			table.S(objectCodeTexts[i%len(objectCodeTexts)]),
			table.I(int64(1997 + i%14)),
		})
	}
	return t
}

// buildOrgUnits builds UMETRICSOrgUnitsMatching.
func (g *generator) buildOrgUnits() *table.Table {
	t := table.New("UMETRICSOrgUnitsMatching", OrgUnitsSchema())
	for i := 0; i < g.p.OrgUnitRows; i++ {
		unit := orgUnitNames[i%len(orgUnitNames)]
		t.MustAppend(table.Row{
			table.S("UWMSN"),
			table.S(unit),
			table.S("University of Wisconsin-Madison"),
			table.S("Department of " + unit),
			table.I(int64(1997 + i%14)),
		})
	}
	return t
}
