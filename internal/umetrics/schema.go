package umetrics

import "emgo/internal/table"

// The seven raw table schemas, exactly as Section 4 of the paper lists
// them. Column kinds follow the data the paper shows in Figures 3-4.

// AwardAggSchema is UMETRICSAwardAggMatching (13 columns).
func AwardAggSchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "UniqueAwardNumber", Kind: table.String},
		table.Field{Name: "AwardTitle", Kind: table.String},
		table.Field{Name: "FundingSource", Kind: table.String},
		table.Field{Name: "FirstTransDate", Kind: table.Date},
		table.Field{Name: "LastTransDate", Kind: table.Date},
		table.Field{Name: "RecipientAccountNumber", Kind: table.String},
		table.Field{Name: "TotalOverheadCharged", Kind: table.Float},
		table.Field{Name: "TotalExpenditures", Kind: table.Float},
		table.Field{Name: "NumberOfTransactions", Kind: table.Int},
		table.Field{Name: "DataFileYearEarliest", Kind: table.Int},
		table.Field{Name: "DataFileYearLatest", Kind: table.Int},
		table.Field{Name: "SubOrgUnit", Kind: table.String},
		table.Field{Name: "CampusID", Kind: table.String},
	)
}

// EmployeesSchema is UMETRICSEmployeesMatching (13 columns).
func EmployeesSchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "UniqueAwardNumber", Kind: table.String},
		table.Field{Name: "PeriodStartDate", Kind: table.Date},
		table.Field{Name: "PeriodEndDate", Kind: table.Date},
		table.Field{Name: "RecipientAccountNumber", Kind: table.String},
		table.Field{Name: "DeidentifiedEmployeeIdNumber", Kind: table.String},
		table.Field{Name: "FullName", Kind: table.String},
		table.Field{Name: "OccupationalClassification", Kind: table.String},
		table.Field{Name: "JobTitle", Kind: table.String},
		table.Field{Name: "ObjectCode", Kind: table.String},
		table.Field{Name: "SOCCode", Kind: table.String},
		table.Field{Name: "FteStatus", Kind: table.String},
		table.Field{Name: "ProportionOfEarningsAllocated", Kind: table.Float},
		table.Field{Name: "DataFileYear", Kind: table.Int},
	)
}

// ObjectCodesSchema is UMETRICSObjectCodesMatching (3 columns).
func ObjectCodesSchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "ObjectCode", Kind: table.String},
		table.Field{Name: "ObjectCodeText", Kind: table.String},
		table.Field{Name: "DataFileYear", Kind: table.Int},
	)
}

// OrgUnitsSchema is UMETRICSOrgUnitsMatching (5 columns).
func OrgUnitsSchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "CampusId", Kind: table.String},
		table.Field{Name: "SubOrgUnit", Kind: table.String},
		table.Field{Name: "CampusName", Kind: table.String},
		table.Field{Name: "SubOrgUnitName", Kind: table.String},
		table.Field{Name: "DataFileYear", Kind: table.Int},
	)
}

// SubAwardSchema is UMETRICSSubAwardMatching (23 columns).
func SubAwardSchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "UniqueAwardNumber", Kind: table.String},
		table.Field{Name: "Address", Kind: table.String},
		table.Field{Name: "BldgName", Kind: table.String},
		table.Field{Name: "City", Kind: table.String},
		table.Field{Name: "Country", Kind: table.String},
		table.Field{Name: "DUNS", Kind: table.String},
		table.Field{Name: "DomesticZipCode", Kind: table.String},
		table.Field{Name: "EIN", Kind: table.String},
		table.Field{Name: "ForeignZipCode", Kind: table.String},
		table.Field{Name: "ObjectCode", Kind: table.String},
		table.Field{Name: "OrgName", Kind: table.String},
		table.Field{Name: "OrganizationID", Kind: table.String},
		table.Field{Name: "POBox", Kind: table.String},
		table.Field{Name: "PeriodEndDate", Kind: table.Date},
		table.Field{Name: "PeriodStartDate", Kind: table.Date},
		table.Field{Name: "RecipientAccountNumber", Kind: table.String},
		table.Field{Name: "SrtName", Kind: table.String},
		table.Field{Name: "SrtNumber", Kind: table.String},
		table.Field{Name: "State", Kind: table.String},
		table.Field{Name: "StrName", Kind: table.String},
		table.Field{Name: "StrNumber", Kind: table.String},
		table.Field{Name: "SubAwardPaymentAmount", Kind: table.Float},
		table.Field{Name: "DataFileYear", Kind: table.Int},
	)
}

// VendorSchema is UMETRICSVendorMatching (21 columns).
func VendorSchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "UniqueAwardNumber", Kind: table.String},
		table.Field{Name: "PeriodStartDate", Kind: table.Date},
		table.Field{Name: "PeriodEndDate", Kind: table.Date},
		table.Field{Name: "RecipientAccountNumber", Kind: table.String},
		table.Field{Name: "ObjectCode", Kind: table.String},
		table.Field{Name: "OrganizationID", Kind: table.String},
		table.Field{Name: "EIN", Kind: table.String},
		table.Field{Name: "DUNS", Kind: table.String},
		table.Field{Name: "VendorPaymentAmount", Kind: table.Float},
		table.Field{Name: "OrgName", Kind: table.String},
		table.Field{Name: "POBox", Kind: table.String},
		table.Field{Name: "BldgNum", Kind: table.String},
		table.Field{Name: "StrNumber", Kind: table.String},
		table.Field{Name: "StrName", Kind: table.String},
		table.Field{Name: "Address", Kind: table.String},
		table.Field{Name: "City", Kind: table.String},
		table.Field{Name: "State", Kind: table.String},
		table.Field{Name: "DomesticZipCode", Kind: table.String},
		table.Field{Name: "ForeignZipCode", Kind: table.String},
		table.Field{Name: "Country", Kind: table.String},
		table.Field{Name: "DataFileYear", Kind: table.Int},
	)
}

// usdaCoreColumns are the named USDA columns the paper shows (Figure 4);
// the remainder of the 78 are CRIS-style administrative fields.
var usdaCoreColumns = []table.Field{
	{Name: "AccessionNumber", Kind: table.String},
	{Name: "ProjectTitle", Kind: table.String},
	{Name: "SponsoringAgency", Kind: table.String},
	{Name: "FundingMechanism", Kind: table.String},
	{Name: "AwardNumber", Kind: table.String},
	{Name: "InitialAwardFiscalYear", Kind: table.Int},
	{Name: "RecipientOrganization", Kind: table.String},
	{Name: "RecipientDUNS", Kind: table.String},
	{Name: "ProjectDirector", Kind: table.String},
	{Name: "MultistateProjectNumber", Kind: table.String},
	{Name: "ProjectNumber", Kind: table.String},
	{Name: "ProjectStartDate", Kind: table.Date},
	{Name: "ProjectEndDate", Kind: table.Date},
	{Name: "ProjectStartFiscalYear", Kind: table.Int},
}

// usdaExtraColumns pad the USDA schema to the 78 columns of Figure 2.
var usdaExtraColumns = []table.Field{
	{Name: "PerformingOrganization", Kind: table.String},
	{Name: "PerformingDepartment", Kind: table.String},
	{Name: "PerformingState", Kind: table.String},
	{Name: "CongressionalDistrict", Kind: table.String},
	{Name: "CRISNumber", Kind: table.String},
	{Name: "StatusCode", Kind: table.String},
	{Name: "ProjectType", Kind: table.String},
	{Name: "ActivityCode", Kind: table.String},
	{Name: "KnowledgeArea1", Kind: table.String},
	{Name: "KnowledgeArea2", Kind: table.String},
	{Name: "KnowledgeArea3", Kind: table.String},
	{Name: "SubjectOfInvestigation1", Kind: table.String},
	{Name: "SubjectOfInvestigation2", Kind: table.String},
	{Name: "SubjectOfInvestigation3", Kind: table.String},
	{Name: "FieldOfScience1", Kind: table.String},
	{Name: "FieldOfScience2", Kind: table.String},
	{Name: "FieldOfScience3", Kind: table.String},
	{Name: "Objectives", Kind: table.String},
	{Name: "Approach", Kind: table.String},
	{Name: "Keywords", Kind: table.String},
	{Name: "NonTechnicalSummary", Kind: table.String},
	{Name: "ProjectContactName", Kind: table.String},
	{Name: "ProjectContactEmail", Kind: table.String},
	{Name: "ProjectContactPhone", Kind: table.String},
	{Name: "TerminationDate", Kind: table.Date},
	{Name: "LastUpdated", Kind: table.Date},
	{Name: "ScientistYears", Kind: table.Float},
	{Name: "ProfessionalYears", Kind: table.Float},
	{Name: "TechnicianYears", Kind: table.Float},
	{Name: "FY1997Funds", Kind: table.Float},
	{Name: "FY1998Funds", Kind: table.Float},
	{Name: "FY1999Funds", Kind: table.Float},
	{Name: "FY2000Funds", Kind: table.Float},
	{Name: "FY2001Funds", Kind: table.Float},
	{Name: "FY2002Funds", Kind: table.Float},
	{Name: "FY2003Funds", Kind: table.Float},
	{Name: "FY2004Funds", Kind: table.Float},
	{Name: "FY2005Funds", Kind: table.Float},
	{Name: "FY2006Funds", Kind: table.Float},
	{Name: "FY2007Funds", Kind: table.Float},
	{Name: "FY2008Funds", Kind: table.Float},
	{Name: "FY2009Funds", Kind: table.Float},
	{Name: "FY2010Funds", Kind: table.Float},
	{Name: "FY2011Funds", Kind: table.Float},
	{Name: "FY2012Funds", Kind: table.Float},
	{Name: "TotalAwarded", Kind: table.Float},
	{Name: "IndirectCosts", Kind: table.Float},
	{Name: "CostShare", Kind: table.Float},
	{Name: "AnimalHealthFunds", Kind: table.Float},
	{Name: "FormulaFunds", Kind: table.Float},
	{Name: "GrantYear", Kind: table.Int},
	{Name: "AwardAmendmentNumber", Kind: table.String},
	{Name: "ProposalNumber", Kind: table.String},
	{Name: "ProgramCode", Kind: table.String},
	{Name: "ProgramName", Kind: table.String},
	{Name: "RegionalAssociation", Kind: table.String},
	{Name: "CommodityCode", Kind: table.String},
	{Name: "CommodityName", Kind: table.String},
	{Name: "AnimalUseFlag", Kind: table.String},
	{Name: "HumanUseFlag", Kind: table.String},
	{Name: "PatentFlag", Kind: table.String},
	{Name: "PublicationCount", Kind: table.Int},
	{Name: "StudentCountBS", Kind: table.Int},
	// "Financial: USDA Contracts, Grants, Coop Agmt" is the last column
	// the paper names (Figure 4).
	{Name: "Financial: USDA Contracts, Grants, Coop Agmt", Kind: table.Float},
}

// USDASchema is USDAAwardMatching (78 columns).
func USDASchema() *table.Schema {
	fields := make([]table.Field, 0, len(usdaCoreColumns)+len(usdaExtraColumns))
	fields = append(fields, usdaCoreColumns...)
	fields = append(fields, usdaExtraColumns...)
	return table.MustSchema(fields...)
}
