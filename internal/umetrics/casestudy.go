package umetrics

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"emgo/internal/block"
	"emgo/internal/ckpt"
	"emgo/internal/cluster"
	"emgo/internal/estimate"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/obs"
	"emgo/internal/profile"
	"emgo/internal/rules"
	"emgo/internal/table"
	"emgo/internal/tokenize"
	"emgo/internal/workflow"
)

// Config drives an end-to-end case-study run.
type Config struct {
	// Params configures the synthetic data generator.
	Params Params
	// Seed drives every downstream random choice (sampling, CV folds,
	// the simulated expert).
	Seed int64
	// SampleRounds are the per-iteration labeling sample sizes of Section
	// 8 (the paper used three rounds of 100).
	SampleRounds []int
	// EstimateRounds are the Section 11 evaluation sample sizes (the
	// paper used two rounds of 200).
	EstimateRounds []int
	// HesitateRate / MistakeRate configure the simulated expert's
	// first-pass labeling noise.
	HesitateRate float64
	MistakeRate  float64
	// Checkpoints, when set, makes the run crash-safe: each section
	// writes its outputs to the store, and a later run over the same
	// Config (open the store with Config.Fingerprint) resumes from the
	// last durable section instead of starting over. Nil disables
	// checkpointing entirely.
	Checkpoints *ckpt.Store `json:"-"`
	// haltAfter stops the run with errHalted right after the named
	// section checkpoints — the test hook simulating a crash at a
	// section boundary without killing the process.
	haltAfter string
}

// errHalted is returned when the haltAfter test hook stops a run.
var errHalted = errors.New("umetrics: run halted by test hook")

// DefaultConfig returns the full-scale configuration mirroring the paper.
// The matching tables (AwardAgg, USDA, the extra slice) are at the exact
// Figure 2 sizes; the auxiliary tables are kept compact because the
// pipeline only reads the distinct award/employee pairs out of them — use
// PaperParams directly when the full 1.45M-row employees table itself is
// the object of study (the Figure 2 experiment).
func DefaultConfig() Config {
	p := PaperParams()
	p.EmployeeRows = 0 // one row per award-employee pair
	p.VendorRows = 2000
	p.SubAwardRows = 2000
	return Config{
		Params:         p,
		Seed:           7,
		SampleRounds:   []int{100, 100, 100},
		EstimateRounds: []int{200, 200},
		HesitateRate:   0.3,
		MistakeRate:    0.04,
	}
}

// TestConfig returns a scaled-down configuration for tests.
func TestConfig(scale float64) Config {
	c := DefaultConfig()
	c.Params = TestParams(scale)
	round := int(100 * scale)
	if round < 20 {
		round = 20
	}
	c.SampleRounds = []int{round, round, round}
	est := int(200 * scale)
	if est < 40 {
		est = 40
	}
	c.EstimateRounds = []int{est, est}
	return c
}

// TableStat is one Figure 2 row.
type TableStat struct {
	Name string
	Rows int
	Cols int
}

// Report collects every number the paper walks through, section by
// section.
type Report struct {
	// Section 4 (Figure 2).
	TableStats []TableStat

	// Section 6.
	Preprocess *PreprocessReport
	// VendorOrgOverlap is the Section 6 step-3 check: the number of
	// distinct vendor OrgName values shared with USDA's
	// RecipientOrganization (zero — which is why the vendor table was
	// ruled out for matching).
	VendorOrgOverlap  int
	VendorDUNSOverlap int

	// Section 7.
	CartesianPairs int
	C1, C2, C3     int
	C2AndC3        int
	C2MinusC3      int
	C3MinusC2      int
	ConsolidatedC  int
	OverlapSweep   map[int]int // overlap threshold K -> candidate count
	// DebuggerTop is how many excluded pairs the blocking debugger
	// returned; DebuggerMatchesTop10 counts true matches among the
	// highest-ranked ten (the pairs a user actually eyeballs — the paper
	// found none and concluded blocking was fine), and DebuggerMatches
	// counts true matches anywhere in the list (nonzero here is the
	// silent blocking loss that Section 10 later uncovers).
	DebuggerTop          int
	DebuggerMatchesTop10 int
	DebuggerMatches      int

	// Section 8.
	RoundCounts    []label.Counts // cumulative after each sampling round
	CrossMismatch  int            // labeler cross-check disagreements
	CrossFlipped   int            // labels revised after the meeting
	LOOCVFlagged   int            // pairs flagged by leave-one-out debug
	LabelRevisions int            // labels revised after D1-D3 discussion
	FinalLabels    label.Counts   // the 300-pair analog

	// Section 9.
	CVInitial   []ml.CVResult // before case-insensitive features
	CVWithCase  []ml.CVResult // after the debugging fix
	BestInitial string
	BestFinal   string
	M1InC       int // sure (M1) pairs inside C
	LearnedFig8 int // matcher predictions on C minus sure
	TotalFig8   int // Figure 8 total matches

	// Section 10 — the "Should We Match at the Cluster Level?" analysis
	// the EM team shared: how many predictions are one-to-one vs
	// one-to-many vs many-to-one, and how many entity clusters the final
	// match set forms.
	MatchDegrees   cluster.DegreeStats
	EntityClusters int

	Rule2Cartesian  int // pairs satisfying the project-number rule overall
	Rule2InC        int // ... of which blocking kept
	Rule2Predicted  int // ... of which the Fig-8 matcher already predicted
	SureOriginal    int // C1 of Figure 9
	SureExtra       int // D1
	CandOriginal    int // C of Figure 9
	CandExtra       int // D
	LearnedOriginal int // R1
	LearnedExtra    int // R2
	TotalFig9       int

	// Section 11.
	EstOursFirst estimate.Estimate // learning workflow, first round
	EstIRISFirst estimate.Estimate
	EstOursAll   estimate.Estimate // after all estimate rounds
	EstIRISAll   estimate.Estimate
	EvalLabels   label.Counts // composition of the evaluation sample
	IRISOutsideE int          // IRIS pairs outside the consolidated set

	// Section 12.
	VetoedOriginal int
	VetoedExtra    int
	FinalMatches   int
	EstFinal       estimate.Estimate

	// Gold (generator ground truth) confusions for validation; the paper
	// could not compute these, we can.
	GoldIRIS  ml.Confusion
	GoldFig8  ml.Confusion
	GoldFig9  ml.Confusion
	GoldFinal ml.Confusion

	// The final deliverable: matches as ID pairs.
	Matches []workflow.IDPair
	// Deployment is the packaged Figure 10 workflow (Section 12 "Next
	// Steps"): serialize it, ship it, and rebuild it on new data slices
	// with DeployTransforms.
	Deployment *workflow.Spec
	// LabeledPairs is the released labeled data — the paper's "we provide
	// all data underlying this case study, including all the labeled
	// tuple pairs" contribution. It contains the Section 8 training
	// labels and the Section 11 evaluation labels, at the business-key
	// level.
	LabeledPairs []LabeledPair
}

// LabeledPair is one released labeled record pair.
type LabeledPair struct {
	UAN       string // UMETRICS UniqueAwardNumber
	Accession string // USDA AccessionNumber
	Label     label.Label
	// Phase is "training" (Section 8) or "evaluation" (Section 11).
	Phase string
}

// study carries the mutable state of a run.
type study struct {
	cfg    Config
	rng    *rand.Rand
	ds     *Dataset
	proj   *Projected // original slice
	extra  *Projected // extra slice (shares the USDA table)
	oracle *TruthOracle
	extOra *TruthOracle
	expert *label.Expert
	report *Report

	// mainSrc / expertSrc count every draw of the two shared random
	// streams so checkpoints can record (and resumed runs replay) the
	// exact stream positions at each section boundary.
	mainSrc   *countedSource
	expertSrc *countedSource

	cand     *block.CandidateSet // consolidated C over the original slice
	labels   *label.Store
	features *feature.Set
	imputer  *feature.Imputer
	matcher  ml.Matcher
	winner   string // CV winner name behind the final matcher
	corr     map[string]string
	order    []string

	fig8         *workflow.Result
	res1, res2   *workflow.Result    // Figure 9 results per slice
	iris1, iris2 *block.CandidateSet // IRIS predictions per slice
	eval         []evalItem          // the labeled estimation sample
	lastTrain    *ml.Dataset         // the training set behind the final matcher
}

// Run executes the whole case study and returns the report.
func Run(cfg Config) (*Report, error) {
	return RunCtxStudy(context.Background(), cfg)
}

// RunCtxStudy is Run under a context: when ctx carries an obs trace
// (emcasestudy's -trace/-report flags open one), each case-study
// section runs inside a "casestudy.<section>" span, so a trace of the
// full end-to-end run shows where the wall time went; cancellation is
// checked between sections.
//
// With cfg.Checkpoints set, each section's outputs are persisted after
// it completes and restored — validated, with the random streams
// fast-forwarded to the recorded positions — on the next run, so a
// killed run resumes from its last durable section. Restored sections
// get span outcome "resumed"; any checkpoint that cannot be trusted is
// quarantined and the section recomputed.
func RunCtxStudy(ctx context.Context, cfg Config) (*Report, error) {
	s := &study{
		cfg:       cfg,
		mainSrc:   newCountedSource(cfg.Seed),
		expertSrc: newCountedSource(cfg.Seed + 1),
		report:    &Report{OverlapSweep: make(map[int]int)},
	}
	s.rng = rand.New(s.mainSrc)
	steps := []struct {
		name string
		fn   func() error
	}{
		{"generate", s.generate},     // Sections 3-4
		{"preprocess", s.preprocess}, // Sections 5-6
		{"blocking", s.blocking},     // Section 7
		{"labeling", s.labeling},     // Section 8
		{"matching", s.matching},     // Section 9 (Figure 8)
		{"updating", s.updating},     // Section 10 (Figure 9)
		{"estimating", s.estimating}, // Section 11
		{"refining", s.refining},     // Section 12 (Figure 10)
	}
	// pendingRebuild names the most recently restored section whose
	// derived state (feature sets, fitted matchers) has not been rebuilt
	// yet; it is rebuilt lazily right before the next live section.
	pendingRebuild := ""
	for _, step := range steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, sp := obs.StartSpan(ctx, "casestudy."+step.name)
		if s.tryRestore(step.name, sp) {
			pendingRebuild = step.name
			sp.SetOutcome(workflow.OutcomeResumed)
			sp.End()
			continue
		}
		if pendingRebuild != "" {
			if err := s.rebuildDerived(pendingRebuild); err != nil {
				sp.SetOutcome(workflow.OutcomeAborted)
				sp.End()
				return nil, err
			}
			pendingRebuild = ""
		}
		if err := step.fn(); err != nil {
			sp.SetOutcome(workflow.OutcomeAborted)
			sp.End()
			return nil, err
		}
		s.saveSection(step.name)
		sp.SetOutcome(workflow.OutcomeOK)
		sp.End()
		if s.cfg.haltAfter == step.name {
			return nil, errHalted
		}
	}
	return s.report, nil
}

// generate builds the raw data and the Figure 2 statistics.
func (s *study) generate() error {
	ds, err := Generate(s.cfg.Params)
	if err != nil {
		return err
	}
	s.ds = ds
	for _, t := range []*table.Table{
		ds.AwardAgg, ds.Employees, ds.ObjectCodes, ds.OrgUnits, ds.SubAward, ds.Vendor, ds.USDA,
	} {
		s.report.TableStats = append(s.report.TableStats, TableStat{
			Name: t.Name(), Rows: t.Len(), Cols: t.Schema().Len(),
		})
	}
	return nil
}

// preprocess runs the Section 6 pipeline on both slices. ProjectNumber is
// joined in up front (the paper discovered the need in Section 10; the
// chronology numbers are still reported there).
func (s *study) preprocess() error {
	// Section 6 step 3: do the remaining tables share information with
	// the USDA table? Vendor org names and DUNS do not overlap, so the
	// vendor table is ruled out for matching.
	shared, _, _, err := profile.ValueOverlap(s.ds.Vendor, "OrgName", s.ds.USDA, "RecipientOrganization")
	if err != nil {
		return err
	}
	s.report.VendorOrgOverlap = shared
	shared, _, _, err = profile.ValueOverlap(s.ds.Vendor, "DUNS", s.ds.USDA, "RecipientDUNS")
	if err != nil {
		return err
	}
	s.report.VendorDUNSOverlap = shared

	proj, rep, err := Preprocess(s.ds.AwardAgg, s.ds.Employees, s.ds.USDA, "u", "s")
	if err != nil {
		return err
	}
	if err := AddProjectNumber(proj, s.ds.USDA); err != nil {
		return err
	}
	s.proj = proj
	s.report.Preprocess = rep

	ext, _, err := Preprocess(s.ds.ExtraAwardAgg, s.ds.Employees, s.ds.USDA, "x", "s")
	if err != nil {
		return err
	}
	// Both slices must share the same USDA table object so candidate
	// sets remain comparable.
	ext.USDA = proj.USDA
	s.extra = ext

	if s.oracle, err = NewTruthOracle(s.ds.Truth, proj.UMETRICS, proj.USDA); err != nil {
		return err
	}
	if s.extOra, err = NewTruthOracle(s.ds.Truth, ext.UMETRICS, proj.USDA); err != nil {
		return err
	}
	s.expert = &label.Expert{
		Truth:        s.oracle.IsMatch,
		Hard:         s.oracle.IsHard,
		HesitateRate: s.cfg.HesitateRate,
		MistakeRate:  s.cfg.MistakeRate,
		// Lookalike (trap) pairs draw the Section 8 waffling: mostly
		// Unsure on first pass, resolved to the truth only after the
		// D2 discussion.
		Tricky:           s.oracle.IsTrap,
		TrickyUnsureRate: 0.7,
		TrickyWrongRate:  0.1,
		// The expert draws from a counted stream so checkpoints can
		// record how far labeling advanced it.
		Rng: rand.New(s.expertSrc),
	}
	return nil
}

// blockers returns the Section 7 blocking pipeline over projected tables.
func (s *study) blockers() []block.Blocker {
	return []block.Blocker{
		block.AttrEquiv{ // C1: the M1 rule as a blocker
			LeftCol: "AwardNumber", RightCol: "AwardNumber",
			LeftTransform:  SuffixNormalize,
			RightTransform: NormalizeNumber,
		},
		block.Overlap{ // C2
			LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true,
		},
		block.OverlapCoefficient{ // C3
			LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true,
		},
	}
}

// blocking reproduces the Section 7 numbers over the original slice.
func (s *study) blocking() error {
	um, us := s.proj.UMETRICS, s.proj.USDA
	s.report.CartesianPairs = um.Len() * us.Len()

	bs := s.blockers()
	c1, err := bs[0].Block(um, us)
	if err != nil {
		return err
	}
	c2, err := bs[1].Block(um, us)
	if err != nil {
		return err
	}
	c3, err := bs[2].Block(um, us)
	if err != nil {
		return err
	}
	s.report.C1, s.report.C2, s.report.C3 = c1.Len(), c2.Len(), c3.Len()
	inter, err := c2.Intersect(c3)
	if err != nil {
		return err
	}
	s.report.C2AndC3 = inter.Len()
	s.report.C2MinusC3 = c2.Len() - inter.Len()
	s.report.C3MinusC2 = c3.Len() - inter.Len()

	cand, err := block.UnionBlock(um, us, bs...)
	if err != nil {
		return err
	}
	s.cand = cand
	s.report.ConsolidatedC = cand.Len()

	// The threshold sweep of Section 7 step 2 ("the threshold of 1
	// resulted in 200K record pairs, and a threshold of 7 in a few
	// hundred").
	for _, k := range []int{1, 3, 7} {
		ck, err := (block.Overlap{
			LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: k, Normalize: true,
		}).Block(um, us)
		if err != nil {
			return err
		}
		s.report.OverlapSweep[k] = ck.Len()
	}

	// Blocking debugger: the top-ranked excluded pairs should contain no
	// true matches (the Section 7 stopping criterion).
	top, err := block.Debugger{
		Cols: map[string]string{"AwardTitle": "AwardTitle"},
		K:    100,
	}.Run(cand)
	if err != nil {
		return err
	}
	s.report.DebuggerTop = len(top)
	for i, dp := range top {
		if s.oracle.IsMatch(dp.Pair) {
			s.report.DebuggerMatches++
			if i < 10 {
				s.report.DebuggerMatchesTop10++
			}
		}
	}
	return nil
}

// labeling reproduces Section 8: iterative sampling, the cross-check
// episode, and leave-one-out label debugging.
func (s *study) labeling() error {
	s.labels = label.NewStore()
	tool := label.NewTool(s.labels)

	for round, n := range s.cfg.SampleRounds {
		if n > s.cand.Len() {
			n = s.cand.Len()
		}
		// Sample only pairs not yet labeled.
		fresh := s.cand.Filter(func(p block.Pair) bool { return !s.labels.Has(p) })
		if n > fresh.Len() {
			n = fresh.Len()
		}
		sample, err := fresh.Sample(n, s.rng)
		if err != nil {
			return err
		}
		tool.Upload(sample)
		if err := tool.OpenSession("umetrics-student"); err != nil {
			return err
		}
		if err := tool.LabelAll("umetrics-student", s.expert.Label); err != nil {
			return err
		}
		if err := tool.CloseSession("umetrics-student"); err != nil {
			return err
		}

		// Round 1: the EM team labels the same pairs independently and
		// the two label sets are cross-checked; disagreements are
		// discussed and some labels flipped (the 22-mismatch episode).
		if round == 0 {
			emTeam := label.NewStore()
			for _, p := range sample {
				var l label.Label
				if s.oracle.IsHard(p) || s.oracle.IsTrap(p) {
					// Lookalikes are ambiguous to the EM team too; they
					// stay Unsure until the D2 discussion much later.
					l = label.Unsure
				} else {
					l = s.expert.TruthLabel(p)
				}
				if err := emTeam.Set(p, l); err != nil {
					return err
				}
			}
			mismatches := label.CrossCheck(s.labels, emTeam)
			s.report.CrossMismatch = len(mismatches)
			for _, p := range mismatches {
				revised := s.expert.Revise(p)
				if revised != s.labels.Get(p) {
					s.report.CrossFlipped++
					if err := s.labels.Set(p, revised); err != nil {
						return err
					}
				}
			}
		}
		s.report.RoundCounts = append(s.report.RoundCounts, s.labels.Counts())
	}

	// Label debugging with leave-one-out cross-validation (minus unsure
	// and sure matches), then the D1-D3 revision meeting.
	ds, pairs, err := s.trainingSet()
	if err != nil {
		return err
	}
	if ds.Len() >= 2 {
		flagged, err := ml.LeaveOneOutDebug(ml.Factory{
			Name: "random_forest",
			New:  func() ml.Matcher { return &ml.RandomForest{Seed: s.cfg.Seed} },
		}, ds)
		if err != nil {
			return err
		}
		s.report.LOOCVFlagged = len(flagged)
		for _, m := range flagged {
			p := pairs[m.Index]
			revised := s.expert.Revise(p)
			if revised != s.labels.Get(p) {
				s.report.LabelRevisions++
				if err := s.labels.Set(p, revised); err != nil {
					return err
				}
			}
		}
	}
	s.report.FinalLabels = s.labels.Counts()
	return nil
}

// corrOrder returns the column correspondence and order used for feature
// generation over the projected tables.
func (s *study) corrOrder() (map[string]string, []string) {
	if s.corr == nil {
		s.corr = map[string]string{
			"AwardNumber":    "AwardNumber",
			"AwardTitle":     "AwardTitle",
			"FirstTransDate": "FirstTransDate",
			"LastTransDate":  "LastTransDate",
			"EmployeeName":   "EmployeeName",
		}
		s.order = []string{"AwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate", "EmployeeName"}
	}
	return s.corr, s.order
}

// trainingSet vectorizes the decided labeled pairs, excluding pairs the
// M1 rule already decides (Section 9: "we removed the pairs labeled
// Unsure and sure matches"). The returned pair slice aligns with dataset
// rows.
func (s *study) trainingSet() (*ml.Dataset, []block.Pair, error) {
	if s.features == nil {
		corr, order := s.corrOrder()
		fs, err := feature.Generate(s.proj.UMETRICS, s.proj.USDA, corr, order)
		if err != nil {
			return nil, nil, err
		}
		s.features = fs
	}
	m1, err := M1Rule(s.proj.UMETRICS, s.proj.USDA)
	if err != nil {
		return nil, nil, err
	}
	sure := rules.NewEngine(m1)

	decidedPairs, y := s.labels.Decided()
	var pairs []block.Pair
	var labels []int
	for i, p := range decidedPairs {
		if sure.Judge(s.proj.UMETRICS.Row(p.A), s.proj.USDA.Row(p.B)) == rules.Match {
			continue
		}
		pairs = append(pairs, p)
		labels = append(labels, y[i])
	}
	if len(pairs) == 0 {
		return nil, nil, fmt.Errorf("umetrics: no non-sure decided labels to train on")
	}
	return s.vectorize(pairs, labels)
}

// vectorize converts labeled pairs into an imputed ml dataset, storing the
// fitted imputer for prediction-time reuse.
func (s *study) vectorize(pairs []block.Pair, labels []int) (*ml.Dataset, []block.Pair, error) {
	x, err := s.features.Vectorize(s.proj.UMETRICS, s.proj.USDA, pairs)
	if err != nil {
		return nil, nil, err
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		return nil, nil, err
	}
	x, err = im.Transform(x)
	if err != nil {
		return nil, nil, err
	}
	s.imputer = im
	ds, err := ml.NewDataset(s.features.Names(), x, labels)
	if err != nil {
		return nil, nil, err
	}
	return ds, pairs, nil
}
