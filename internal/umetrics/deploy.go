package umetrics

import (
	"context"
	"fmt"

	"emgo/internal/drift"
	"emgo/internal/feature"
	"emgo/internal/ml"
	"emgo/internal/table"
	"emgo/internal/workflow"
)

// This file packages the final Figure 10 workflow for production — the
// Section 12 "Next Steps": "the UMETRICS team wanted us to package the
// matcher so that they could move it into the UMETRICS repository to do
// matching for other data slices". The packaged form is a
// workflow.Spec: blockers, both positive rules, the negative pattern
// rules, the feature descriptors, the fitted imputer means, and the
// trained matcher, all JSON-serializable. Production rebuilds the
// workflow against each new data slice with DeployTransforms.

// Transform registry keys referenced by the deployment spec.
const (
	TransformSuffixNormalize = "umetrics_suffix_normalize"
	TransformNormalizeNumber = "umetrics_normalize_number"
)

// DeployTransforms returns the transform registry production must supply
// when building the deployed spec.
func DeployTransforms() workflow.Transforms {
	return workflow.Transforms{
		TransformSuffixNormalize: SuffixNormalize,
		TransformNormalizeNumber: NormalizeNumber,
	}
}

// BuildDeploymentSpec packages a trained matcher, its feature set, and
// its imputer together with the case study's blocking pipeline and rule
// layers into a serializable workflow spec.
func BuildDeploymentSpec(fs *feature.Set, im *feature.Imputer, matcher ml.Matcher) (*workflow.Spec, error) {
	if fs == nil || im == nil || matcher == nil {
		return nil, fmt.Errorf("umetrics: deployment needs features, imputer, and matcher")
	}
	descs, err := fs.Descriptors()
	if err != nil {
		return nil, fmt.Errorf("umetrics: deployment features: %w", err)
	}
	matcherSpec, err := ml.ExportMatcher(matcher)
	if err != nil {
		return nil, fmt.Errorf("umetrics: deployment matcher: %w", err)
	}
	patterns := make([]string, 0, len(KnownPatterns()))
	for _, p := range KnownPatterns() {
		patterns = append(patterns, string(p))
	}
	return &workflow.Spec{
		Name: "umetrics-figure10",
		Blockers: []workflow.BlockerSpec{
			{Type: "attr_equiv", LeftCol: "AwardNumber", RightCol: "AwardNumber",
				LeftTransform: TransformSuffixNormalize, RightTransform: TransformNormalizeNumber},
			{Type: "overlap", LeftCol: "AwardTitle", RightCol: "AwardTitle",
				Tokenizer: "word", Threshold: 3, Normalize: true},
			{Type: "overlap_coeff", LeftCol: "AwardTitle", RightCol: "AwardTitle",
				Tokenizer: "word", Coefficient: 0.7, Normalize: true},
		},
		SureRules: []workflow.RuleSpec{
			{Type: "equal", Name: "M1", LeftCol: "AwardNumber", RightCol: "AwardNumber",
				LeftTransform: TransformSuffixNormalize, RightTransform: TransformNormalizeNumber,
				Verdict: "match"},
			{Type: "equal", Name: "award_eq_project", LeftCol: "AwardNumber", RightCol: "ProjectNumber",
				LeftTransform: TransformSuffixNormalize, RightTransform: TransformNormalizeNumber,
				Verdict: "match"},
		},
		NegativeRules: []workflow.RuleSpec{
			{Type: "comparable_mismatch", Name: "neg_award",
				LeftCol: "AwardNumber", RightCol: "AwardNumber",
				LeftTransform: TransformSuffixNormalize, RightTransform: TransformNormalizeNumber,
				Patterns: patterns},
			{Type: "comparable_mismatch", Name: "neg_project",
				LeftCol: "AwardNumber", RightCol: "ProjectNumber",
				LeftTransform: TransformSuffixNormalize, RightTransform: TransformNormalizeNumber,
				Patterns: patterns},
		},
		Features:     descs,
		ImputerMeans: im.Means(),
		Matcher:      matcherSpec,
	}, nil
}

// RunDeployed executes a packaged workflow spec against one data slice
// under the hardened runtime — the production entry point the UMETRICS
// repository calls per slice. The spec is rebuilt with the standard
// deployment transform registry (lookups retried on opts.Retry), then
// run with RunCtx so the slice gets per-stage deadlines, the error
// budget, and a provenance log even when it fails. On a build failure
// the returned Result is nil; on a run failure it carries the log.
//
// Every run emits a machine-readable report by default: RunCtx roots an
// obs trace when the caller's context has none, so Result.Report always
// carries per-stage spans, the provenance log, quarantine decisions,
// and (when the obs registry is enabled) the hot-path counters.
func RunDeployed(ctx context.Context, spec *workflow.Spec, left, right *table.Table, opts workflow.RunOptions) (*workflow.Result, error) {
	if spec == nil {
		return nil, fmt.Errorf("umetrics: deployment needs a workflow spec")
	}
	w, err := spec.BuildCtx(ctx, left, right, DeployTransforms(), opts.Retry)
	if err != nil {
		return nil, fmt.Errorf("umetrics: build deployed workflow: %w", err)
	}
	return w.RunCtx(ctx, left, right, opts)
}

// CaptureDeployBaseline runs the packaged workflow over its training
// slice in drift-capture mode and persists the resulting baseline
// profile to path (crash-safe atomic write) — the snapshot later
// deployed runs are checked against. Any drift options already on opts
// (sample cap, seed, estimated precision) are respected; Baseline and
// BaselinePath are overridden for capture.
func CaptureDeployBaseline(ctx context.Context, spec *workflow.Spec, left, right *table.Table, opts workflow.RunOptions, path string) (*drift.Profile, error) {
	d := workflow.DriftStage{}
	if opts.Drift != nil {
		d = *opts.Drift
	}
	d.Baseline = nil
	d.BaselinePath = path
	opts.Drift = &d
	res, err := RunDeployed(ctx, spec, left, right, opts)
	if err != nil {
		return nil, err
	}
	return res.DriftProfile, nil
}
