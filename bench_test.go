package emgo

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"emgo/internal/block"
	"emgo/internal/estimate"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/profile"
	"emgo/internal/rules"
	"emgo/internal/simfunc"
	"emgo/internal/table"
	"emgo/internal/tokenize"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

// benchWorld is the shared fixture for the per-experiment benchmarks: a
// half-scale UMETRICS world with projected tables, oracle labels, a
// feature set, and a trained matcher. Building it is excluded from every
// benchmark's timing.
type benchWorldT struct {
	ds      *umetrics.Dataset
	proj    *umetrics.Projected
	extra   *umetrics.Projected
	oracle  *umetrics.TruthOracle
	cand    *block.CandidateSet
	labels  *label.Store
	fs      *feature.Set
	im      *feature.Imputer
	matcher ml.Matcher
	dataset *ml.Dataset
	sure    *rules.Engine
	neg     *rules.Engine
}

var (
	benchOnce sync.Once
	benchW    *benchWorldT
	benchErr  error
)

func benchWorld(b *testing.B) *benchWorldT {
	b.Helper()
	benchOnce.Do(func() {
		benchW, benchErr = buildBenchWorld()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchW
}

var benchCorr = map[string]string{
	"AwardNumber": "AwardNumber", "AwardTitle": "AwardTitle",
	"FirstTransDate": "FirstTransDate", "LastTransDate": "LastTransDate",
	"EmployeeName": "EmployeeName",
}

var benchOrder = []string{"AwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate", "EmployeeName"}

func benchBlockers() []block.Blocker {
	return []block.Blocker{
		block.AttrEquiv{
			LeftCol: "AwardNumber", RightCol: "AwardNumber",
			LeftTransform:  umetrics.SuffixNormalize,
			RightTransform: umetrics.NormalizeNumber,
		},
		block.Overlap{
			LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true,
		},
		block.OverlapCoefficient{
			LeftCol: "AwardTitle", RightCol: "AwardTitle",
			Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true,
		},
	}
}

func buildBenchWorld() (*benchWorldT, error) {
	ds, err := umetrics.Generate(umetrics.TestParams(0.5))
	if err != nil {
		return nil, err
	}
	proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		return nil, err
	}
	if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
		return nil, err
	}
	extra, _, err := umetrics.Preprocess(ds.ExtraAwardAgg, ds.Employees, ds.USDA, "x", "s")
	if err != nil {
		return nil, err
	}
	extra.USDA = proj.USDA
	oracle, err := umetrics.NewTruthOracle(ds.Truth, proj.UMETRICS, proj.USDA)
	if err != nil {
		return nil, err
	}
	cand, err := block.UnionBlock(proj.UMETRICS, proj.USDA, benchBlockers()...)
	if err != nil {
		return nil, err
	}
	w := &benchWorldT{ds: ds, proj: proj, extra: extra, oracle: oracle, cand: cand}

	// Labels: a 300-pair oracle-labeled sample.
	w.labels = label.NewStore()
	rng := rand.New(rand.NewSource(17))
	n := 300
	if n > cand.Len() {
		n = cand.Len()
	}
	sample, err := cand.Sample(n, rng)
	if err != nil {
		return nil, err
	}
	for _, p := range sample {
		switch {
		case oracle.IsHard(p):
			w.labels.Set(p, label.Unsure)
		case oracle.IsMatch(p):
			w.labels.Set(p, label.Yes)
		default:
			w.labels.Set(p, label.No)
		}
	}

	// Features with the case-insensitive extension, imputer, dataset,
	// trained decision tree.
	w.fs, err = feature.Generate(proj.UMETRICS, proj.USDA, benchCorr, benchOrder)
	if err != nil {
		return nil, err
	}
	if err := feature.AddCaseInsensitive(w.fs, proj.UMETRICS, benchCorr,
		[]string{"AwardTitle", "EmployeeName"}); err != nil {
		return nil, err
	}
	pairs, y := w.labels.Decided()
	x, err := w.fs.Vectorize(proj.UMETRICS, proj.USDA, pairs)
	if err != nil {
		return nil, err
	}
	w.im, err = feature.FitImputer(x)
	if err != nil {
		return nil, err
	}
	if x, err = w.im.Transform(x); err != nil {
		return nil, err
	}
	w.dataset, err = ml.NewDataset(w.fs.Names(), x, y)
	if err != nil {
		return nil, err
	}
	tree := &ml.DecisionTree{}
	if err := tree.Fit(w.dataset); err != nil {
		return nil, err
	}
	w.matcher = tree

	w.sure, err = umetrics.SureMatchEngine(proj.UMETRICS, proj.USDA, true)
	if err != nil {
		return nil, err
	}
	w.neg, err = umetrics.NegativeRules(proj.UMETRICS, proj.USDA)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// BenchmarkE1_Figure2Generate regenerates the seven raw tables at the
// exact Figure 2 sizes (1.45M employee rows included).
func BenchmarkE1_Figure2Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := umetrics.Generate(umetrics.PaperParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ds.Employees.Len()), "employee_rows")
	}
}

// BenchmarkE1_Figure2Profile profiles the matching-relevant tables (the
// Section 4 exploration step).
func BenchmarkE1_Figure2Profile(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.Profile(w.ds.AwardAgg)
		profile.Profile(w.ds.USDA)
	}
}

// BenchmarkE2_Blocking runs the Section 7 three-blocker pipeline.
func BenchmarkE2_Blocking(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cand, err := block.UnionBlock(w.proj.UMETRICS, w.proj.USDA, benchBlockers()...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cand.Len()), "candidates")
	}
}

// BenchmarkE2_OverlapSweep runs the overlap blocker across the threshold
// sweep of Section 7 step 2.
func BenchmarkE2_OverlapSweep(b *testing.B) {
	w := benchWorld(b)
	for _, k := range []int{1, 3, 7} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := (block.Overlap{
					LeftCol: "AwardTitle", RightCol: "AwardTitle",
					Tokenizer: tokenize.Word{}, Threshold: k, Normalize: true,
				}).Block(w.proj.UMETRICS, w.proj.USDA)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2_BlockingDebugger runs the MatchCatcher-style debugger over
// the candidate set.
func BenchmarkE2_BlockingDebugger(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := block.Debugger{
			Cols: map[string]string{"AwardTitle": "AwardTitle"}, K: 100,
		}.Run(w.cand)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_SampleAndLabel samples candidate pairs and labels them
// through the single-writer tool with the simulated expert.
func BenchmarkE3_SampleAndLabel(b *testing.B) {
	w := benchWorld(b)
	expert := &label.Expert{Truth: w.oracle.IsMatch, Hard: w.oracle.IsHard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := label.NewStore()
		tool := label.NewTool(store)
		sample, err := w.cand.Sample(100, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		tool.Upload(sample)
		if err := tool.OpenSession("bench"); err != nil {
			b.Fatal(err)
		}
		if err := tool.LabelAll("bench", expert.Label); err != nil {
			b.Fatal(err)
		}
		if err := tool.CloseSession("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_LabelDebugLOOCV runs leave-one-out label debugging over the
// labeled sample (the Section 8 debugging step).
func BenchmarkE3_LabelDebugLOOCV(b *testing.B) {
	w := benchWorld(b)
	f := ml.Factory{Name: "random_forest", New: func() ml.Matcher { return &ml.RandomForest{Seed: 1} }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.LeaveOneOutDebug(f, w.dataset); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_MatcherSelection cross-validates the six-matcher suite
// (Section 9).
func BenchmarkE4_MatcherSelection(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.SelectMatcher(ml.DefaultFactories(1), w.dataset, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_TrainDebug runs the split-half matcher debugging procedure.
func BenchmarkE4_TrainDebug(b *testing.B) {
	w := benchWorld(b)
	f := ml.Factory{Name: "decision_tree", New: func() ml.Matcher { return &ml.DecisionTree{} }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.SplitDebug(f, w.dataset, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// workflowFor builds the Figure 8/9/10 workflow variants over the bench
// world.
func (w *benchWorldT) workflowFor(b *testing.B, name string, sure, neg *rules.Engine) *workflow.Workflow {
	b.Helper()
	return &workflow.Workflow{
		Name:      name,
		SureRules: sure,
		Blockers:  benchBlockers(),
		Features:  w.fs, Imputer: w.im, Matcher: w.matcher,
		NegativeRules: neg,
	}
}

// BenchmarkE5_Figure8Workflow runs the initial workflow (M1 + learner).
func BenchmarkE5_Figure8Workflow(b *testing.B) {
	w := benchWorld(b)
	m1, err := umetrics.M1Rule(w.proj.UMETRICS, w.proj.USDA)
	if err != nil {
		b.Fatal(err)
	}
	wf := w.workflowFor(b, "figure8", rules.NewEngine(m1), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wf.Run(w.proj.UMETRICS, w.proj.USDA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Final.Len()), "matches")
	}
}

// BenchmarkE6_Figure9Workflow runs the updated two-slice workflow (both
// positive rules, original + extra slices).
func BenchmarkE6_Figure9Workflow(b *testing.B) {
	w := benchWorld(b)
	sureExtra, err := umetrics.SureMatchEngine(w.extra.UMETRICS, w.extra.USDA, true)
	if err != nil {
		b.Fatal(err)
	}
	wf1 := w.workflowFor(b, "figure9", w.sure, nil)
	wf2 := w.workflowFor(b, "figure9-extra", sureExtra, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := wf1.Run(w.proj.UMETRICS, w.proj.USDA)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := wf2.Run(w.extra.UMETRICS, w.extra.USDA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r1.Final.Len()+r2.Final.Len()), "matches")
	}
}

// BenchmarkE7_AccuracyEstimation runs the Corleone estimation over a
// labeled evaluation sample.
func BenchmarkE7_AccuracyEstimation(b *testing.B) {
	w := benchWorld(b)
	wf := w.workflowFor(b, "est", w.sure, nil)
	res, err := wf.Run(w.proj.UMETRICS, w.proj.USDA)
	if err != nil {
		b.Fatal(err)
	}
	// Build a 400-pair labeled evaluation sample.
	universe, err := res.Sure.Union(res.Candidates)
	if err != nil {
		b.Fatal(err)
	}
	n := 400
	if n > universe.Len() {
		n = universe.Len()
	}
	sample, err := universe.Sample(n, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	store := label.NewStore()
	for _, p := range sample {
		switch {
		case w.oracle.IsHard(p):
			store.Set(p, label.Unsure)
		case w.oracle.IsMatch(p):
			store.Set(p, label.Yes)
		default:
			store.Set(p, label.No)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate.PrecisionRecall(res.Final, store); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_Figure10Workflow runs the final workflow with negative
// rules.
func BenchmarkE8_Figure10Workflow(b *testing.B) {
	w := benchWorld(b)
	wf := w.workflowFor(b, "figure10", w.sure, w.neg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wf.Run(w.proj.UMETRICS, w.proj.USDA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Vetoed), "vetoed")
	}
}

// BenchmarkE9_MatchDefinition applies the positive match-definition rules
// (M1, project-number) over the full Cartesian product.
func BenchmarkE9_MatchDefinition(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sure := w.sure.SureMatches(w.proj.UMETRICS, w.proj.USDA)
		b.ReportMetric(float64(sure.Len()), "sure_matches")
	}
}

// BenchmarkE10_Quickstart runs the Figure 1 toy example end to end.
func BenchmarkE10_Quickstart(b *testing.B) {
	schema := func() *table.Schema {
		return table.MustSchema(
			table.Field{Name: "Name", Kind: table.String},
			table.Field{Name: "City", Kind: table.String},
			table.Field{Name: "State", Kind: table.String},
		)
	}
	a := table.New("A", schema())
	a.MustAppend(table.Row{table.S("Dave Smith"), table.S("Madison"), table.S("WI")})
	a.MustAppend(table.Row{table.S("Joe Wilson"), table.S("San Jose"), table.S("CA")})
	a.MustAppend(table.Row{table.S("Dan Smith"), table.S("Middleton"), table.S("WI")})
	bb := table.New("B", schema())
	bb.MustAppend(table.Row{table.S("David D. Smith"), table.S("Madison"), table.S("WI")})
	bb.MustAppend(table.Row{table.S("Daniel W. Smith"), table.S("Middleton"), table.S("WI")})
	nameCol, _ := a.Col("Name")
	cityCol, _ := a.Col("City")
	rule := rules.Func{Label: "name", Verdict: rules.Match, Fire: func(l, r table.Row) bool {
		if !l[cityCol].Equal(r[cityCol]) {
			return false
		}
		tok := tokenize.Word{}
		return simfunc.MongeElkan(tok.Tokens(l[nameCol].Str()), tok.Tokens(r[nameCol].Str())) > 0.8
	}}
	wf := &workflow.Workflow{
		Name:      "quickstart",
		SureRules: rules.NewEngine(rule),
		Blockers:  []block.Blocker{block.AttrEquiv{LeftCol: "State", RightCol: "State"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wf.Run(a, bb)
		if err != nil {
			b.Fatal(err)
		}
		if res.Final.Len() != 2 {
			b.Fatalf("expected the two Figure 1 matches, got %d", res.Final.Len())
		}
	}
}

// BenchmarkA1_CaseFeatureAblation vectorizes and cross-validates with and
// without the case-insensitive features.
func BenchmarkA1_CaseFeatureAblation(b *testing.B) {
	w := benchWorld(b)
	pairs, y := w.labels.Decided()
	run := func(b *testing.B, fs *feature.Set) {
		for i := 0; i < b.N; i++ {
			x, err := fs.Vectorize(w.proj.UMETRICS, w.proj.USDA, pairs)
			if err != nil {
				b.Fatal(err)
			}
			im, err := feature.FitImputer(x)
			if err != nil {
				b.Fatal(err)
			}
			if x, err = im.Transform(x); err != nil {
				b.Fatal(err)
			}
			ds, err := ml.NewDataset(fs.Names(), x, y)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ml.CrossValidate(ml.Factory{
				Name: "decision_tree", New: func() ml.Matcher { return &ml.DecisionTree{} },
			}, ds, 5, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
		}
	}
	plain, err := feature.Generate(w.proj.UMETRICS, w.proj.USDA, benchCorr, benchOrder)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("without_case", func(b *testing.B) { run(b, plain) })
	b.Run("with_case", func(b *testing.B) { run(b, w.fs) })
}

// BenchmarkA2_BlockerUnionAblation times each title blocker alone and the
// union.
func BenchmarkA2_BlockerUnionAblation(b *testing.B) {
	w := benchWorld(b)
	c2 := block.Overlap{LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 3, Normalize: true}
	c3 := block.OverlapCoefficient{LeftCol: "AwardTitle", RightCol: "AwardTitle",
		Tokenizer: tokenize.Word{}, Threshold: 0.7, Normalize: true}
	b.Run("C2_only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c2.Block(w.proj.UMETRICS, w.proj.USDA); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("C3_only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c3.Block(w.proj.UMETRICS, w.proj.USDA); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := block.UnionBlock(w.proj.UMETRICS, w.proj.USDA, c2, c3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA3_UnsureHandling times training under the three
// unsure-handling policies.
func BenchmarkA3_UnsureHandling(b *testing.B) {
	w := benchWorld(b)
	decided, y := w.labels.Decided()
	var unsure []block.Pair
	for _, p := range w.labels.Pairs() {
		if w.labels.Get(p) == label.Unsure {
			unsure = append(unsure, p)
		}
	}
	run := func(b *testing.B, extraLabel int) {
		pairs := decided
		labels := y
		if extraLabel >= 0 {
			pairs = append(append([]block.Pair{}, decided...), unsure...)
			labels = append(append([]int{}, y...), make([]int, len(unsure))...)
			for i := len(y); i < len(labels); i++ {
				labels[i] = extraLabel
			}
		}
		for i := 0; i < b.N; i++ {
			x, err := w.fs.Vectorize(w.proj.UMETRICS, w.proj.USDA, pairs)
			if err != nil {
				b.Fatal(err)
			}
			im, err := feature.FitImputer(x)
			if err != nil {
				b.Fatal(err)
			}
			if x, err = im.Transform(x); err != nil {
				b.Fatal(err)
			}
			ds, err := ml.NewDataset(w.fs.Names(), x, labels)
			if err != nil {
				b.Fatal(err)
			}
			tree := &ml.DecisionTree{}
			if err := tree.Fit(ds); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("dropped", func(b *testing.B) { run(b, -1) })
	b.Run("as_no", func(b *testing.B) { run(b, 0) })
	b.Run("as_yes", func(b *testing.B) { run(b, 1) })
}
