package emgo

import (
	"math/rand"
	"testing"

	"emgo/internal/block"
	"emgo/internal/cluster"
	"emgo/internal/feature"
	"emgo/internal/label"
	"emgo/internal/ml"
	"emgo/internal/umetrics"
	"emgo/internal/workflow"
)

// TestE11_DeployAndMonitor exercises the Section 12 "Next Steps": package
// the trained workflow as a JSON spec, rebuild it against a fresh data
// slice, and monitor production accuracy by sampling and labeling
// (footnote 11). A dirty slice must trip the alarm; a clean slice must
// not.
func TestE11_DeployAndMonitor(t *testing.T) {
	w := ablationWorld(t)

	// Train a deployable tree on the ablation world's labels.
	fs, err := feature.Generate(w.proj.UMETRICS, w.proj.USDA, ablCorr, ablOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := feature.AddCaseInsensitive(fs, w.proj.UMETRICS, ablCorr,
		[]string{"AwardTitle", "EmployeeName"}); err != nil {
		t.Fatal(err)
	}
	var pairs []block.Pair
	var y []int
	for i, p := range w.pairs {
		switch w.labels[i] {
		case label.Yes:
			pairs = append(pairs, p)
			y = append(y, 1)
		case label.No:
			pairs = append(pairs, p)
			y = append(y, 0)
		}
	}
	x, err := fs.Vectorize(w.proj.UMETRICS, w.proj.USDA, pairs)
	if err != nil {
		t.Fatal(err)
	}
	im, err := feature.FitImputer(x)
	if err != nil {
		t.Fatal(err)
	}
	if x, err = im.Transform(x); err != nil {
		t.Fatal(err)
	}
	ds, err := ml.NewDataset(fs.Names(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	tree := &ml.DecisionTree{}
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}

	// Package, serialize, parse.
	spec, err := umetrics.BuildDeploymentSpec(fs, im, tree)
	if err != nil {
		t.Fatal(err)
	}
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := workflow.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E11: packaged workflow spec is %d bytes of JSON", len(data))

	// A fresh production slice (different generator seed).
	params := umetrics.TestParams(0.3)
	params.Seed = 77
	newDS, err := umetrics.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	newProj, _, err := umetrics.Preprocess(newDS.AwardAgg, newDS.Employees, newDS.USDA, "u", "s")
	if err != nil {
		t.Fatal(err)
	}
	if err := umetrics.AddProjectNumber(newProj, newDS.USDA); err != nil {
		t.Fatal(err)
	}
	deployed, err := parsed.Build(newProj.UMETRICS, newProj.USDA, umetrics.DeployTransforms())
	if err != nil {
		t.Fatal(err)
	}
	res, err := deployed.Run(newProj.UMETRICS, newProj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Len() == 0 {
		t.Fatal("deployed workflow found no matches on the new slice")
	}

	oracle, err := umetrics.NewTruthOracle(newDS.Truth, newProj.UMETRICS, newProj.USDA)
	if err != nil {
		t.Fatal(err)
	}
	mon := &workflow.Monitor{SampleSize: 100, MinPrecision: 0.8, Rng: rand.New(rand.NewSource(9))}

	clean, err := mon.Check("clean-slice", res.Final, func(p block.Pair) label.Label {
		switch {
		case oracle.IsHard(p):
			return label.Unsure
		case oracle.IsMatch(p):
			return label.Yes
		default:
			return label.No
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E11: clean slice precision %s (alarm=%v)", clean.Precision, clean.Alarm)
	if clean.Alarm {
		t.Errorf("clean production slice should not alarm: %+v", clean)
	}

	// A drifted batch (reviewers reject half the matches) must alarm.
	noise := rand.New(rand.NewSource(10))
	dirty, err := mon.Check("dirty-slice", res.Final, func(p block.Pair) label.Label {
		if noise.Float64() < 0.5 {
			return label.No
		}
		return label.Yes
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E11: dirty slice precision %s (alarm=%v)", dirty.Precision, dirty.Alarm)
	if !dirty.Alarm {
		t.Errorf("drifted batch should alarm: %+v", dirty)
	}
	if len(mon.History()) != 2 || len(mon.Alarms()) != 1 {
		t.Error("monitor history bookkeeping wrong")
	}
}

// TestA4_OneToOneAblation quantifies the Section 10 decision: the
// UMETRICS team initially wanted one-to-one matches, but enforcing that
// at the record level destroys the legitimate one-to-many sub-award
// matches — which is why they kept record-level many-to-many matching.
func TestA4_OneToOneAblation(t *testing.T) {
	w := ablationWorld(t)
	// The true match set over the candidate pairs.
	truth := block.NewCandidateSet(w.proj.UMETRICS, w.proj.USDA)
	for _, p := range w.cand.Pairs() {
		if w.oracle.IsMatch(p) {
			truth.Add(p)
		}
	}
	stats := cluster.Degrees(truth)
	t.Logf("A4: true matches are %s", stats)
	if stats.OneToMany == 0 {
		t.Fatal("the generated world should contain one-to-many sub-award matches")
	}

	reduced := cluster.OneToOne(truth, nil)
	lost := truth.Len() - reduced.Len()
	t.Logf("A4: one-to-one enforcement keeps %d of %d true matches (loses %d)",
		reduced.Len(), truth.Len(), lost)
	if lost == 0 {
		t.Error("one-to-one enforcement should lose the one-to-many matches")
	}
	// Everything kept must still be a true match, and the constraint must
	// hold.
	seenL := map[int]bool{}
	seenR := map[int]bool{}
	for _, p := range reduced.Pairs() {
		if !truth.Contains(p) {
			t.Fatal("one-to-one invented a pair")
		}
		if seenL[p.A] || seenR[p.B] {
			t.Fatal("one-to-one constraint violated")
		}
		seenL[p.A] = true
		seenR[p.B] = true
	}
	// Cluster-level matching recovers the grouping the team had in mind.
	clusters := cluster.ConnectedComponents(truth)
	t.Logf("A4: %d true matches form %d entity clusters", truth.Len(), len(clusters))
	if len(clusters) == 0 || len(clusters) >= truth.Len() {
		t.Errorf("cluster count %d out of range", len(clusters))
	}
}
