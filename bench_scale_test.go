package emgo

import (
	"fmt"
	"sync"
	"testing"

	"emgo/internal/block"
	"emgo/internal/umetrics"
)

// Scalability sweep: blocking and rule application across generator
// scales (0.25x to 2x the paper's table sizes), with candidate counts
// reported per run. Fixtures are built once per scale, outside the
// timers.
type scaleFixture struct {
	proj *umetrics.Projected
}

var (
	scaleMu       sync.Mutex
	scaleFixtures = map[float64]*scaleFixture{}
)

func fixtureAtScale(b *testing.B, scale float64) *scaleFixture {
	b.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	if f, ok := scaleFixtures[scale]; ok {
		return f
	}
	ds, err := umetrics.Generate(umetrics.TestParams(scale))
	if err != nil {
		b.Fatal(err)
	}
	proj, _, err := umetrics.Preprocess(ds.AwardAgg, ds.Employees, ds.USDA, "u", "s")
	if err != nil {
		b.Fatal(err)
	}
	if err := umetrics.AddProjectNumber(proj, ds.USDA); err != nil {
		b.Fatal(err)
	}
	f := &scaleFixture{proj: proj}
	scaleFixtures[scale] = f
	return f
}

var sweepScales = []float64{0.25, 0.5, 1.0, 2.0}

// BenchmarkScale_Blocking sweeps the Section 7 blocking pipeline across
// data scales.
func BenchmarkScale_Blocking(b *testing.B) {
	for _, scale := range sweepScales {
		b.Run(fmt.Sprintf("scale=%.2g", scale), func(b *testing.B) {
			f := fixtureAtScale(b, scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cand, err := block.UnionBlock(f.proj.UMETRICS, f.proj.USDA, benchBlockers()...)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cand.Len()), "candidates")
				b.ReportMetric(float64(f.proj.UMETRICS.Len()*f.proj.USDA.Len()), "cartesian")
			}
		})
	}
}

// BenchmarkScale_SureRules sweeps the positive-rule Cartesian scan (the
// Figure 9 sure-match step) across data scales.
func BenchmarkScale_SureRules(b *testing.B) {
	for _, scale := range sweepScales {
		b.Run(fmt.Sprintf("scale=%.2g", scale), func(b *testing.B) {
			f := fixtureAtScale(b, scale)
			engine, err := umetrics.SureMatchEngine(f.proj.UMETRICS, f.proj.USDA, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sure := engine.SureMatches(f.proj.UMETRICS, f.proj.USDA)
				b.ReportMetric(float64(sure.Len()), "sure_matches")
			}
		})
	}
}
