GO ?= go

.PHONY: all tier1 build test vet fmt-check race tier2 ci bench bench-baseline chaos monitor-smoke serve-smoke job-smoke obs-smoke load-smoke prof-smoke stream-smoke perf-gate

all: tier1

# Tier 1 — the gate every change must pass.
tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any tracked Go file is not
# gofmt-clean; it never rewrites files, so it is safe in CI.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# chaos kills the case-study pipeline (built with -race) at every
# checkpoint boundary and once mid-write, resumes each run, and asserts
# byte-identical results plus corruption quarantine — see
# scripts/chaos_run.sh and docs/RELIABILITY.md.
chaos:
	./scripts/chaos_run.sh

# monitor-smoke exercises the quality-monitoring loop end to end: a
# drift-capture run persists a baseline, an identical slice passes
# `emmonitor check` (exit 0), and a perturbed slice fails it (exit 1) —
# see scripts/monitor_smoke.sh and docs/OBSERVABILITY.md.
monitor-smoke:
	./scripts/monitor_smoke.sh

# serve-smoke runs the online matching service under injected matcher
# faults and latency with a race-built emserve: the burst must shed
# (429 + Retry-After), matcher failures must degrade to rule-only
# responses, hot reload must not drop in-flight requests, a corrupt
# artifact must roll back, and SIGTERM must drain with zero leaked
# goroutines — see scripts/serve_smoke.sh and docs/SERVING.md.
serve-smoke:
	./scripts/serve_smoke.sh

# job-smoke exercises the async batch-job tier's crash/resume contract
# with a race-built emserve: a reference job runs clean, then two chaos
# rounds kill the server at a shard-commit boundary and mid-write; each
# restart must recover the job, resume the durable shards without
# recomputing them, and produce byte-identical results — see
# scripts/job_smoke.sh and docs/SERVING.md.
job-smoke:
	./scripts/job_smoke.sh

# obs-smoke exercises the serving-observability stack end to end with a
# race-built emserve: request IDs must echo on every response, each
# request must emit exactly one parseable JSON wide event, an injected
# 300ms latency outlier must be retained (span tree included) in
# /debug/tail and the drain-time -tail-dump, and `emmonitor slo` must
# exit 0 against a healthy server and 1 against one burning its error
# budget — see scripts/obs_smoke.sh and docs/OBSERVABILITY.md.
obs-smoke:
	./scripts/obs_smoke.sh

# load-smoke exercises the open-loop load generator and soak harness
# with a race-built emserve: a clean soak must pass its gate (exit 0),
# a short capacity search must find a non-zero sustainable rate, a
# deliberately undersized server must trip the gate (exit exactly 1),
# and a chaos-soak must trip and re-close the breaker, SIGKILL the
# server at a shard boundary mid-load, and resume byte-identically —
# see scripts/load_smoke.sh and docs/SERVING.md.
load-smoke:
	./scripts/load_smoke.sh

# prof-smoke exercises continuous profiling end to end with a race-built
# emserve: interval captures must land in the /debug/contprof ring,
# manual triggers must schedule (and immediate repeats deduplicate),
# fetched profiles must be valid gzip, the ring must prune to -prof-max
# on disk, an SLO burn under -prof-on-breach must capture the fire, the
# drain must write a final capture, and `emmonitor perf` must exit
# exactly 1 on a deliberate 20% regression — see scripts/prof_smoke.sh
# and docs/OBSERVABILITY.md.
prof-smoke:
	./scripts/prof_smoke.sh

# stream-smoke exercises the resumable streaming result transport with a
# race-built emserve: a cursor-persisted fetch is SIGKILL'd mid-stream
# and resumed byte-identically after a restart over the same job dir, a
# drain cuts another stream at a flush boundary and the access logs of
# the cut and the resume must chain (stream_from = stream_end), every
# stream outlives a hostile global -write-timeout via per-chunk
# deadlines, and the stalled-reader/memory-bound harnesses run as go
# tests — see scripts/stream_smoke.sh and docs/SERVING.md.
stream-smoke:
	./scripts/stream_smoke.sh

# perf-gate diffs the two newest committed BENCH_pr*.json snapshots with
# the noise-aware regression gate: exit 1 means the latest snapshot
# regressed past the fail thresholds against its predecessor — see
# docs/OBSERVABILITY.md, "Continuous profiling & perf gating".
perf-gate:
	@set -e; \
	snaps="$$(ls BENCH_pr*.json 2>/dev/null | sort -t r -k 2 -n | tail -2)"; \
	count="$$(echo "$$snaps" | wc -w)"; \
	if [ "$$count" -lt 2 ]; then \
		echo "perf-gate: need two BENCH_pr*.json snapshots, have $$count; skipping"; \
	else \
		old="$$(echo $$snaps | cut -d' ' -f1)"; new="$$(echo $$snaps | cut -d' ' -f2)"; \
		echo "perf-gate: $$old -> $$new"; \
		$(GO) run ./cmd/emmonitor perf "$$old" "$$new"; \
	fi

# Tier 2 — the hardened-runtime gate: formatting and static analysis plus
# the full test suite under the race detector (the parallel fan-out,
# cancellation, fault-injection, and observability paths are only
# trustworthy race-clean), the kill/resume chaos harness, and the
# quality-monitoring and serving smoke loops, and the perf-regression
# gate over the committed BENCH trajectory.
tier2: fmt-check vet race chaos monitor-smoke serve-smoke job-smoke obs-smoke load-smoke prof-smoke stream-smoke perf-gate

ci: tier1 tier2

# bench runs every benchmark (no unit tests) with allocation counts.
# BENCHTIME shortens or lengthens each measurement (e.g. BENCHTIME=10x
# for a quick smoke run).
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./...

# bench-baseline snapshots the current benchmark numbers into
# BENCH_baseline.json so future perf work has something to diff against.
bench-baseline:
	BENCHTIME=$(BENCHTIME) ./scripts/bench_snapshot.sh BENCH_baseline.json
