GO ?= go

.PHONY: all tier1 build test vet race tier2 ci

all: tier1

# Tier 1 — the gate every change must pass.
tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier 2 — the hardened-runtime gate: static analysis plus the full test
# suite under the race detector (the parallel fan-out, cancellation, and
# fault-injection paths are only trustworthy race-clean).
tier2: vet race

ci: tier1 tier2
