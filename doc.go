// Package emgo is a from-scratch Go reproduction of "Executing Entity
// Matching End to End: A Case Study" (Konda et al., EDBT 2019): a
// complete PyMatcher/Magellan-style entity-matching system — tables,
// profiling, blocking, labeling, feature generation, learned matchers,
// rule layers, workflow composition, accuracy estimation, deployment and
// monitoring — plus the UMETRICS/USDA case study the paper narrates,
// regenerated end to end on a calibrated synthetic dataset.
//
// The root package holds no code of its own; it carries the experiment
// harness (experiments*_test.go — one test per table/figure of the
// paper) and the benchmark suite (bench*_test.go). Start with:
//
//   - internal/core: the public Project API (the how-to-guide stages)
//   - docs/HOWTO.md: the guide itself
//   - DESIGN.md / EXPERIMENTS.md: system inventory and paper-vs-measured
//   - cmd/emcasestudy: the whole case study with paper references
package emgo
