module emgo

go 1.22
